//! Side-by-side demo of the two execution engines — the workspace's
//! "Live Systems" comparison in miniature.
//!
//! Loads the same account table into two databases, pushes an identical
//! mix of multi-partition transfer transactions through the conventional
//! engine and through DORA, then prints what the paper measures: commit
//! counts, centralized lock-manager critical sections, and the
//! thread-to-data access pattern.
//!
//! Run with `cargo run --release --example ab_demo`.

use std::sync::Arc;

use dora_repro::dora_core::action::{ActionSpec, FlowGraph};
use dora_repro::dora_core::executor::{DoraEngine, DoraEngineConfig, DORA_POLICY};
use dora_repro::dora_core::routing::{RoutingRule, RoutingTable};
use dora_repro::dora_engine_conv::{ConvEngine, ConvEngineConfig, TxnRequest, CONV_POLICY};
use dora_repro::dora_storage::db::Database;
use dora_repro::dora_storage::error::StorageError;
use dora_repro::dora_storage::schema::{ColumnDef, TableSchema};
use dora_repro::dora_storage::trace::workers_per_key_bucket;
use dora_repro::dora_storage::types::{DataType, TableId, Value};

const ACCOUNTS: i64 = 64;
const WORKERS: usize = 4;
const TRANSFERS: i64 = 400;

fn load(db: &Database) -> TableId {
    let t = db
        .create_table(TableSchema::new(
            "accounts",
            vec![
                ColumnDef::new("id", DataType::BigInt),
                ColumnDef::new("balance", DataType::BigInt),
            ],
            vec![0],
        ))
        .expect("create accounts table");
    let txn = db.begin();
    for i in 0..ACCOUNTS {
        db.insert(
            txn,
            t,
            vec![Value::BigInt(i), Value::BigInt(1000)],
            CONV_POLICY,
        )
        .expect("load row");
    }
    db.commit(txn).expect("commit loader");
    t
}

fn transfer_pairs() -> impl Iterator<Item = (i64, i64)> {
    (0..TRANSFERS).map(|i| {
        let from = (i * 7) % ACCOUNTS;
        let to = (from + 1 + (i % 13)) % ACCOUNTS;
        (from, to)
    })
}

fn conv_transfer(t: TableId, from: i64, to: i64) -> TxnRequest {
    TxnRequest::new("Transfer", move |db, txn, ctx| {
        ctx.record(t, from, true);
        let f = db
            .get(txn, t, &[Value::BigInt(from)], CONV_POLICY)?
            .ok_or(StorageError::NotFound)?;
        ctx.record(t, to, true);
        let g = db
            .get(txn, t, &[Value::BigInt(to)], CONV_POLICY)?
            .ok_or(StorageError::NotFound)?;
        let (fb, tb) = (f[1].as_i64().unwrap(), g[1].as_i64().unwrap());
        db.update(
            txn,
            t,
            &[Value::BigInt(from)],
            &[(1, Value::BigInt(fb - 1))],
            CONV_POLICY,
        )?;
        db.update(
            txn,
            t,
            &[Value::BigInt(to)],
            &[(1, Value::BigInt(tb + 1))],
            CONV_POLICY,
        )?;
        Ok(())
    })
}

fn dora_transfer(t: TableId, from: i64, to: i64) -> FlowGraph {
    FlowGraph::new(
        "Transfer",
        vec![
            ActionSpec::write(t, from, move |db, txn, ctx| {
                ctx.record(t, from, true);
                let row = db
                    .get(txn, t, &[Value::BigInt(from)], DORA_POLICY)?
                    .ok_or(StorageError::NotFound)?;
                Ok(vec![row[1].clone()])
            }),
            ActionSpec::write(t, to, move |db, txn, ctx| {
                ctx.record(t, to, true);
                let row = db
                    .get(txn, t, &[Value::BigInt(to)], DORA_POLICY)?
                    .ok_or(StorageError::NotFound)?;
                Ok(vec![row[1].clone()])
            }),
        ],
    )
    .then(move |outputs| {
        // Outputs arrive in action order: [0] = `from` read, [1] = `to`.
        let fb = outputs[0][0].as_i64().ok_or(StorageError::NotFound)?;
        let tb = outputs[1][0].as_i64().ok_or(StorageError::NotFound)?;
        Ok(vec![
            ActionSpec::write(t, from, move |db, txn, _| {
                db.update(
                    txn,
                    t,
                    &[Value::BigInt(from)],
                    &[(1, Value::BigInt(fb - 1))],
                    DORA_POLICY,
                )?;
                Ok(vec![])
            }),
            ActionSpec::write(t, to, move |db, txn, _| {
                db.update(
                    txn,
                    t,
                    &[Value::BigInt(to)],
                    &[(1, Value::BigInt(tb + 1))],
                    DORA_POLICY,
                )?;
                Ok(vec![])
            }),
        ])
    })
}

fn total(db: &Database, t: TableId) -> i64 {
    db.scan(t)
        .expect("scan")
        .iter()
        .map(|r| r[1].as_i64().unwrap())
        .sum()
}

fn main() {
    println!("=== conventional engine (thread-to-transaction) ===");
    let conv_db = Arc::new(Database::default());
    let conv_t = load(&conv_db);
    let cs_before = conv_db.lock_stats().critical_sections;
    let conv = ConvEngine::new(
        conv_db.clone(),
        ConvEngineConfig {
            workers: WORKERS,
            max_retries: 50,
        },
    );
    conv.trace().set_enabled(true);
    let pending: Vec<_> = transfer_pairs()
        .map(|(from, to)| conv.submit(conv_transfer(conv_t, from, to)))
        .collect();
    let conv_committed = pending
        .into_iter()
        .filter(|p| p.recv().map(|o| o.is_committed()).unwrap_or(false))
        .count();
    let conv_spread = workers_per_key_bucket(&conv.trace().snapshot(), ACCOUNTS / WORKERS as i64);
    let conv_stats = conv.stats();
    conv.shutdown();
    let cs_after = conv_db.lock_stats().critical_sections;
    println!(
        "  committed:                  {conv_committed}/{TRANSFERS} (retries: {})",
        conv_stats.retries
    );
    println!("  lock-mgr critical sections: {}", cs_after - cs_before);
    println!("  workers per key bucket:     {:.2}", conv_spread[0].1);
    println!(
        "  total balance:              {} (expected {})",
        total(&conv_db, conv_t),
        ACCOUNTS * 1000
    );

    println!("=== DORA engine (thread-to-data) ===");
    let dora_db = Arc::new(Database::default());
    let dora_t = load(&dora_db);
    let cs_before = dora_db.lock_stats().critical_sections;
    let mut routing = RoutingTable::new();
    routing.set_rule(RoutingRule::uniform(
        dora_t,
        0,
        0,
        ACCOUNTS - 1,
        WORKERS,
        WORKERS,
    ));
    let dora = DoraEngine::new(
        dora_db.clone(),
        routing,
        DoraEngineConfig {
            workers: WORKERS,
            ..Default::default()
        },
    );
    dora.trace().set_enabled(true);
    let pending: Vec<_> = transfer_pairs()
        .map(|(from, to)| dora.submit(dora_transfer(dora_t, from, to)))
        .collect();
    let dora_committed = pending
        .into_iter()
        .filter(|p| p.recv().map(|o| o.is_committed()).unwrap_or(false))
        .count();
    let dora_spread = workers_per_key_bucket(&dora.trace().snapshot(), ACCOUNTS / WORKERS as i64);
    let stats = dora.stats();
    dora.shutdown();
    let cs_after = dora_db.lock_stats().critical_sections;
    println!(
        "  committed:                  {dora_committed}/{TRANSFERS} (deferrals: {})",
        stats.deferrals
    );
    println!(
        "  actions executed:           {} across {} partitions",
        stats.actions,
        stats.workers.len()
    );
    println!("  lock-mgr critical sections: {}", cs_after - cs_before);
    println!("  workers per key bucket:     {:.2}", dora_spread[0].1);
    println!(
        "  total balance:              {} (expected {})",
        total(&dora_db, dora_t),
        ACCOUNTS * 1000
    );

    let per_worker: Vec<u64> = stats.workers.iter().map(|w| w.executed).collect();
    println!("  actions per partition:      {per_worker:?}");
}
