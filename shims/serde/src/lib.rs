//! Offline stand-in for the `serde` facade crate (see `shims/README.md`).
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derive macros so that
//! `use serde::{Deserialize, Serialize};` and
//! `#[derive(serde::Serialize, serde::Deserialize)]` compile unchanged.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};
