//! Offline stand-in for the `crossbeam-channel` crate (see
//! `shims/README.md`).
//!
//! Implements multi-producer **multi-consumer** channels — the property the
//! execution engines rely on for their shared worker input queues — on top
//! of a `Mutex<VecDeque>` plus two condition variables. Disconnection
//! semantics follow crossbeam: `recv` fails once every `Sender` is dropped
//! and the queue is drained; `send` fails once every `Receiver` is dropped.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    /// Signaled when a message is pushed or the last sender leaves.
    recv_ready: Condvar,
    /// Signaled when a message is popped or the last receiver leaves.
    send_ready: Condvar,
    capacity: Option<usize>,
}

/// Error returned by [`Sender::send`] when all receivers are gone; carries
/// the unsent message back to the caller.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty (senders may still exist).
    Empty,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed before a message arrived.
    Timeout,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

/// The sending half of a channel. Cloneable (multi-producer).
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half of a channel. Cloneable (multi-consumer).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

fn lock<T>(chan: &Chan<T>) -> std::sync::MutexGuard<'_, State<T>> {
    chan.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a bounded channel; `send` blocks while `capacity` messages are
/// in flight.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(capacity))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        recv_ready: Condvar::new(),
        send_ready: Condvar::new(),
        capacity,
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

impl<T> Sender<T> {
    /// Sends a message, blocking while a bounded channel is full. Fails only
    /// when every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = lock(&self.chan);
        if let Some(cap) = self.chan.capacity {
            while state.queue.len() >= cap.max(1) {
                if state.receivers == 0 {
                    return Err(SendError(msg));
                }
                state = self
                    .chan
                    .send_ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        if state.receivers == 0 {
            return Err(SendError(msg));
        }
        state.queue.push_back(msg);
        drop(state);
        self.chan.recv_ready.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        lock(&self.chan).queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock(&self.chan).senders += 1;
        Sender {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = lock(&self.chan);
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            // Wake receivers so they observe the disconnection.
            self.chan.recv_ready.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Sender { .. }")
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking until one is available. Fails only when
    /// the channel is empty and every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = lock(&self.chan);
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.chan.send_ready.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .chan
                .recv_ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Receives a message, giving up after `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = lock(&self.chan);
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.chan.send_ready.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .chan
                .recv_ready
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
        }
    }

    /// Receives a message if one is immediately available.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = lock(&self.chan);
        if let Some(msg) = state.queue.pop_front() {
            drop(state);
            self.chan.send_ready.notify_one();
            return Ok(msg);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        lock(&self.chan).queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        lock(&self.chan).receivers += 1;
        Receiver {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = lock(&self.chan);
        state.receivers -= 1;
        let last = state.receivers == 0;
        drop(state);
        if last {
            // Wake blocked senders so they observe the disconnection.
            self.chan.send_ready.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<i32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn disconnect_on_receiver_drop() {
        let (tx, rx) = bounded::<i32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_times_out_then_succeeds() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
    }

    #[test]
    fn multi_consumer_work_sharing() {
        let (tx, rx) = unbounded();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = 0u32;
                    while rx.recv().is_ok() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u32 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the first recv
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }
}
