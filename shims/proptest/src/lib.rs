//! Offline stand-in for the `proptest` crate (see `shims/README.md`).
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`], [`prop_assert!`] and [`prop_assert_eq!`] macros, integer
//! range strategies (`0i64..100`), [`strategy::any`]`::<bool>()`, tuple
//! strategies,
//! and [`collection::vec`]. Inputs are drawn from a fixed-seed xorshift
//! PRNG, so runs are deterministic: no failure persistence and no
//! shrinking, but the same generative coverage on every run.

#![warn(missing_docs)]

/// The deterministic random source driving input generation.
pub mod test_runner {
    /// A fixed-seed xorshift64* generator.
    #[derive(Debug, Clone)]
    pub struct Rng(u64);

    impl Rng {
        /// Creates a generator from a non-zero seed.
        pub fn new(seed: u64) -> Self {
            Rng(seed | 1)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

/// Strategies: descriptions of how to generate random values.
pub mod strategy {
    use crate::test_runner::Rng;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut Rng) -> Self::Value;

        /// Transforms every generated value with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter created by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut Rng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy that always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed strategies (built by [`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Creates a union over the given options (must be non-empty).
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut Rng) -> T {
            let idx = (rng.next_u64() as usize) % self.options.len();
            self.options[idx].sample(rng)
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut Rng) -> T {
            (**self).sample(rng)
        }
    }

    /// String strategy from a regex-like pattern. Supports the subset
    /// `[class]{min,max}` (character classes with ranges and literals,
    /// repeated a bounded number of times), which is what this workspace's
    /// tests use; anything else panics.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut Rng) -> String {
            let (chars, min, max) = parse_class_repeat(self)
                .unwrap_or_else(|| panic!("unsupported regex strategy in proptest shim: {self:?}"));
            let len = min + (rng.next_u64() as usize) % (max - min + 1);
            (0..len)
                .map(|_| chars[(rng.next_u64() as usize) % chars.len()])
                .collect()
        }
    }

    /// Parses `[a-z0-9 _]{min,max}` into (alphabet, min, max).
    fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let rest = rest.strip_prefix('{')?;
        let bounds = rest.strip_suffix('}')?;
        let (min, max) = match bounds.split_once(',') {
            Some((lo, hi)) => (lo.parse().ok()?, hi.parse().ok()?),
            None => {
                let n = bounds.parse().ok()?;
                (n, n)
            }
        };
        if max < min {
            return None;
        }
        let mut chars = Vec::new();
        let src: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < src.len() {
            if i + 2 < src.len() && src[i + 1] == '-' {
                let (lo, hi) = (src[i] as u32, src[i + 2] as u32);
                if hi < lo {
                    return None;
                }
                chars.extend((lo..=hi).filter_map(char::from_u32));
                i += 3;
            } else {
                chars.push(src[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return None;
        }
        Some((chars, min, max))
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let r = ((rng.next_u64() as u128) % span) as i128;
                    (self.start as i128 + r) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    /// Strategy for any value of a type with a canonical generator.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut Rng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut Rng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut Rng) -> f64 {
            // Mix finite values of varied magnitude with occasional
            // specials, mirroring proptest's any::<f64>() spirit.
            match rng.next_u64() % 8 {
                0 => 0.0,
                1 => -1.5,
                2 => f64::INFINITY,
                3 => f64::NEG_INFINITY,
                _ => {
                    let mantissa = (rng.next_u64() % 2_000_001) as f64 - 1_000_000.0;
                    let exp = (rng.next_u64() % 41) as i32 - 20;
                    mantissa * 10f64.powi(exp)
                }
            }
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut Rng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut Rng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::Rng;

    /// Strategy producing vectors of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut Rng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy producing ordered sets of values from an element strategy.
    /// Duplicates drawn from `element` collapse, so the final set can be
    /// smaller than the drawn size (matching proptest's behavior loosely).
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn sample(&self, rng: &mut Rng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates `BTreeSet`s whose size is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn btree_set<S: Strategy>(element: S, size: std::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Chooses uniformly among the listed strategies (all must produce the
/// same value type). Weighted arms (`n => strat`) are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($strat) as Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a test that runs the body 128 times with inputs drawn from the
/// strategies using a fixed-seed PRNG.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::Rng::new(0x9E37_79B9_7F4A_7C15);
                for case in 0..128u32 {
                    let _ = case;
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (panics on failure, like
/// `assert!`; this shim has no failure persistence to update).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::Rng::new(42);
        for _ in 0..1000 {
            let v = Strategy::sample(&(-50i64..50), &mut rng);
            assert!((-50..50).contains(&v));
            let u = Strategy::sample(&(1usize..16), &mut rng);
            assert!((1..16).contains(&u));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::test_runner::Rng::new(7);
        for _ in 0..100 {
            let v = Strategy::sample(&crate::collection::vec(0i32..10, 1..20), &mut rng);
            assert!((1..20).contains(&v.len()));
            assert!(v.iter().all(|x| (0..10).contains(x)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::Rng::new(1);
        let mut b = crate::test_runner::Rng::new(1);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        /// The macro itself works end to end.
        #[test]
        fn macro_roundtrip(x in 0i64..100, flip in any::<bool>()) {
            prop_assert!((0..100).contains(&x));
            prop_assert!(u8::from(flip) <= 1);
        }
    }
}
