//! Offline no-op stand-in for `serde_derive` (see `shims/README.md`).
//!
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` expand to nothing:
//! no code in the workspace serializes values yet, the derives only have
//! to compile. Swap back to the real serde when vendoring is available.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
