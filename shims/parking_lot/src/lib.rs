//! Offline stand-in for the `parking_lot` crate (see `shims/README.md`).
//!
//! Provides `Mutex`, `RwLock` and `Condvar` with parking_lot's
//! non-poisoning signatures, implemented on top of `std::sync`. Poisoned
//! locks are transparently recovered (`PoisonError::into_inner`), matching
//! parking_lot's behavior of not propagating panics through locks.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion primitive (non-poisoning facade over `std::sync::Mutex`).
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait_for` can temporarily take the std guard
    // out by value (std's wait API consumes the guard, parking_lot's does
    // not). Invariant: always `Some` outside `Condvar` internals.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner, f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock (non-poisoning facade over `std::sync::RwLock`).
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner, f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// A condition variable with parking_lot's `&mut guard` wait API.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guarded mutex while asleep.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, res) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
        // Guard is intact after the wait.
        assert!(!*g);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            let r = cv.wait_for(&mut g, Duration::from_secs(5));
            assert!(!r.timed_out(), "signal must arrive");
        }
        t.join().unwrap();
    }
}
