pub use dora_storage;
