//! # dora-repro
//!
//! Umbrella crate for the reproduction of *"A data-oriented transaction
//! execution engine and supporting tools"* (Pandis et al., SIGMOD 2011).
//! It re-exports every workspace crate under one name so examples, docs
//! and downstream experiments can depend on a single package:
//!
//! * [`dora_storage`] — the Shore-MT-like storage substrate (pages,
//!   buffer pool, heap files, B+-trees, centralized lock manager, WAL,
//!   recovery, transactions).
//! * [`dora_engine_conv`] — the conventional thread-to-transaction
//!   baseline engine.
//! * [`dora_core`] — the DORA thread-to-data engine: routing, actions,
//!   rendezvous points, per-partition local lock tables, and the
//!   partition executor.
//! * [`dora_workloads`] — TATP / TPC-C workload definitions (planned).
//! * [`dora_designer`] — partitioning designer and run-time load
//!   balancer (planned).
//!
//! See `docs/architecture.md` for the layered walkthrough and
//! `README.md` for how to build, test, and benchmark.

#![warn(missing_docs)]

pub use dora_core;
pub use dora_designer;
pub use dora_engine_conv;
pub use dora_storage;
pub use dora_workloads;
