//! Machine-readable bench output: the `BENCH_*.json` report format.
//!
//! The build environment has no `serde_json`, so this module emits the
//! JSON by hand — a deliberate, documented schema rather than an ad-hoc
//! dump. Every wired bench produces one [`BenchReport`] and writes it as
//! `BENCH_<name>.json` at the workspace root (plus a human-readable table
//! on stdout).
//!
//! # Schema (`schema_version` 6)
//!
//! ```json
//! {
//!   "bench": "throughput_vs_cores",
//!   "schema_version": 6,
//!   "workload": "transfer accounts=1024 ...",
//!   "physical_cores": 1,
//!   "quick": false,
//!   "runs": [
//!     {
//!       "engine": "dora",            // "dora" | "conventional"
//!       "scenario": "remote=50",      // scenario key ("" = the bench's
//!                                    // single default scenario)
//!       "workers": 4,                 // worker threads / partitions
//!       "clients": 8,                 // client threads offering load
//!       "committed": 4000,           // transactions committed
//!       "aborted": 12,               // terminal aborts (after retries)
//!       "secondary_reads": 2048,     // validated (versioned) record reads
//!       "secondary_retries": 3,      // validated-read attempts retried
//!       "log_waits": 7,              // contended WAL waits (group-commit
//!                                    // rides + wrap-around + stragglers)
//!       "txn_table_acquisitions": 16000, // txn-table stripe (per-slot
//!                                    // undo mutex) acquisitions
//!       "queue_peak": 37,            // peak per-partition mailbox depth
//!                                    // sampled during the run (DORA only)
//!       "busy_ns": 812345678,        // summed worker busy time (ns spent
//!                                    // executing actions, DORA only)
//!       "buffer_hits": 160000,       // buffer-pool pins served resident
//!       "buffer_misses": 2048,       // pins that read the page store
//!       "buffer_evictions": 1800,    // pages displaced from frames
//!       "buffer_table_waits": 0,     // contended page-table shard locks
//!       "buffer_latch_waits": 12,    // contended frame-latch acquisitions
//!       "elapsed_secs": 1.25,
//!       "throughput_tps": 3200.0,    // committed / elapsed_secs
//!       "critical_sections": 0,      // centralized lock-manager entries
//!       "extra": {"deferrals": 42.0} // engine-specific counters
//!     }
//!   ],
//!   "baseline": { ... }              // optional: an embedded previous
//!                                    // report (--compare), same schema
//! }
//! ```
//!
//! Version history: **v2** added `secondary_reads` / `secondary_retries`
//! (the validated-read counters of the secondary audit mix). **v3** added
//! `log_waits` / `txn_table_acquisitions` — the storage layer's last
//! global critical sections (WAL mutex, transaction-table mutex) were
//! replaced by a lock-free consolidation buffer and a striped atomic slot
//! table, and these counters prove the hot path stays lock-free
//! (`log_waits` per committed transaction ≤ group commit's single
//! contended wait; stripe acquisitions are slot-local). Readers stay
//! back-compatible with older documents by treating the absent fields as
//! 0 — `compare.rs` does exactly that, and only gates the v3 counters
//! when the baseline document is itself ≥ v3. **v4** added `scenario` —
//! a per-row key for benches that sweep a workload parameter (the TATP
//! access-pattern and skew sweeps label rows `remote=N` / `zipf=T`). A
//! `(workers, clients)` pair no longer identifies a row in those
//! benches; the scenario key completes it. Absent in ≤ v3 documents —
//! readers parse it as `""`, which is also what single-scenario benches
//! emit, so pre-v4 baselines keep gating unchanged. Because `--quick`
//! sweeps fewer scenario values than a full run, `compare.rs` treats a
//! scenario key that the other report lacks *entirely* as a warn-skip
//! (never a `--strict-coverage` failure): a quick candidate against a
//! full baseline is scenario naming, not grid drift. **v5** added
//! `queue_peak` / `busy_ns` — per-row load-balance telemetry for the
//! adaptive repartitioner (peak sampled mailbox depth across partitions,
//! and total worker busy time). Conventional-engine rows report 0 for
//! both; readers treat the absent fields as 0 so pre-v5 baselines keep
//! gating unchanged. **v6** added the buffer-pool counters
//! `buffer_hits` / `buffer_misses` / `buffer_evictions` /
//! `buffer_table_waits` / `buffer_latch_waits` — the global page-table
//! mutex and the always-exclusive frame latch were replaced by a sharded
//! table with reader/writer latches, and the wait counters prove the
//! buffer hit path stays uncontended (`compare.rs` gates them like the
//! v3 lock-free counters, only when both documents are ≥ v6). Readers
//! treat the absent fields as 0, so pre-v6 baselines keep gating
//! unchanged.
//!
//! `baseline` lets a bench run carry its own before/after story: pass
//! `--compare <path>` and the referenced report (typically a committed
//! file under `crates/bench/baselines/`) is embedded verbatim.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One engine × configuration measurement.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Engine identifier: `"dora"` or `"conventional"`.
    pub engine: &'static str,
    /// Scenario key for benches that sweep a workload parameter (e.g.
    /// `"remote=50"`, `"zipf=0.80"`). Empty for single-scenario benches;
    /// pre-v4 documents parse as empty too, so the two stay comparable.
    pub scenario: String,
    /// Worker threads (equals logical partitions for DORA).
    pub workers: usize,
    /// Client threads offering load.
    pub clients: usize,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions that terminally aborted (after any retries).
    pub aborted: u64,
    /// Record snapshots served by the validated (versioned) read path
    /// during the measured window (the secondary audit mix).
    pub secondary_reads: u64,
    /// Validated-read attempts retried or rejected (torn words,
    /// uncommitted stamps) during the measured window.
    pub secondary_retries: u64,
    /// Contended waits on the write-ahead log during the measured window:
    /// forces that waited for a concurrent group commit, appends stalled
    /// by ring wrap-around, and drain stalls on straggler appenders.
    /// Lock-free appends make this ≈ the group-commit contention alone —
    /// at most one wait per committed writer.
    pub log_waits: u64,
    /// Transaction-table stripe (per-slot undo mutex) acquisitions during
    /// the measured window. Slot-local and uncontended by design; state
    /// lookups (stamp checks) never count here because they are lock-free
    /// loads.
    pub txn_acquisitions: u64,
    /// Peak per-partition mailbox depth observed by the run's sampler
    /// (schema v5). 0 for conventional rows and for runs without a
    /// sampler; the imbalance story of the adaptive repartitioner needs
    /// queue build-up, not just cumulative executed counts.
    pub queue_peak: u64,
    /// Total worker busy time in nanoseconds (schema v5): the sum across
    /// partitions of time spent executing actions. 0 for conventional
    /// rows.
    pub busy_ns: u64,
    /// Buffer-pool pins served from a resident frame during the measured
    /// window (schema v6).
    pub buffer_hits: u64,
    /// Buffer-pool pins that had to read the page store (schema v6).
    pub buffer_misses: u64,
    /// Pages displaced from buffer frames during the window (schema v6).
    pub buffer_evictions: u64,
    /// Contended page-table shard acquisitions (schema v6) — the
    /// decentralized pool's analogue of a global-table critical section;
    /// ≈ 0 proves the buffer hit path takes no contended shared lock.
    pub buffer_table_waits: u64,
    /// Contended frame-latch acquisitions (schema v6): pin collisions on
    /// the same page, the workload-inherent residue.
    pub buffer_latch_waits: u64,
    /// Wall-clock seconds for the measured window.
    pub elapsed_secs: f64,
    /// Centralized lock-manager critical sections entered during the run.
    pub critical_sections: u64,
    /// Engine-specific counters worth keeping (deferrals, wakeups, …).
    pub extra: Vec<(&'static str, f64)>,
}

impl Scenario {
    /// Committed transactions per second.
    pub fn throughput_tps(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.committed as f64 / self.elapsed_secs
        } else {
            0.0
        }
    }
}

/// A complete bench report, serializable to the documented JSON schema.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Bench name (`throughput_vs_cores`, `critical_sections`, …).
    pub bench: &'static str,
    /// One-line description of the workload parameters.
    pub workload: String,
    /// Physical cores of the machine the report was produced on.
    pub physical_cores: usize,
    /// Whether this was a `--quick` smoke run (CI) rather than a full
    /// measurement.
    pub quick: bool,
    /// The measurements.
    pub runs: Vec<Scenario>,
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float with enough precision for a report without dragging
/// `NaN`/`inf` (not valid JSON) into the file.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.0".into()
    }
}

impl BenchReport {
    /// The report as a JSON document, optionally embedding a previous
    /// report (already-valid JSON text) under `"baseline"`.
    pub fn to_json(&self, baseline: Option<&str>) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"bench\": \"{}\",", escape_json(self.bench));
        let _ = writeln!(out, "  \"schema_version\": 6,");
        let _ = writeln!(out, "  \"workload\": \"{}\",", escape_json(&self.workload));
        let _ = writeln!(out, "  \"physical_cores\": {},", self.physical_cores);
        let _ = writeln!(out, "  \"quick\": {},", self.quick);
        out.push_str("  \"runs\": [\n");
        for (i, run) in self.runs.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"engine\": \"{}\",", escape_json(run.engine));
            let _ = writeln!(
                out,
                "      \"scenario\": \"{}\",",
                escape_json(&run.scenario)
            );
            let _ = writeln!(out, "      \"workers\": {},", run.workers);
            let _ = writeln!(out, "      \"clients\": {},", run.clients);
            let _ = writeln!(out, "      \"committed\": {},", run.committed);
            let _ = writeln!(out, "      \"aborted\": {},", run.aborted);
            let _ = writeln!(out, "      \"secondary_reads\": {},", run.secondary_reads);
            let _ = writeln!(
                out,
                "      \"secondary_retries\": {},",
                run.secondary_retries
            );
            let _ = writeln!(out, "      \"log_waits\": {},", run.log_waits);
            let _ = writeln!(
                out,
                "      \"txn_table_acquisitions\": {},",
                run.txn_acquisitions
            );
            let _ = writeln!(out, "      \"queue_peak\": {},", run.queue_peak);
            let _ = writeln!(out, "      \"busy_ns\": {},", run.busy_ns);
            let _ = writeln!(out, "      \"buffer_hits\": {},", run.buffer_hits);
            let _ = writeln!(out, "      \"buffer_misses\": {},", run.buffer_misses);
            let _ = writeln!(out, "      \"buffer_evictions\": {},", run.buffer_evictions);
            let _ = writeln!(
                out,
                "      \"buffer_table_waits\": {},",
                run.buffer_table_waits
            );
            let _ = writeln!(
                out,
                "      \"buffer_latch_waits\": {},",
                run.buffer_latch_waits
            );
            let _ = writeln!(
                out,
                "      \"elapsed_secs\": {},",
                json_f64(run.elapsed_secs)
            );
            let _ = writeln!(
                out,
                "      \"throughput_tps\": {},",
                json_f64(run.throughput_tps())
            );
            let _ = writeln!(
                out,
                "      \"critical_sections\": {},",
                run.critical_sections
            );
            out.push_str("      \"extra\": {");
            for (j, (k, v)) in run.extra.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{}\": {}", escape_json(k), json_f64(*v));
            }
            out.push_str("}\n");
            out.push_str("    }");
            out.push_str(if i + 1 < self.runs.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]");
        if let Some(baseline) = baseline {
            out.push_str(",\n  \"baseline\": ");
            // Indent the embedded report so the merged file stays readable.
            let trimmed = baseline.trim();
            for (i, line) in trimmed.lines().enumerate() {
                if i > 0 {
                    out.push_str("\n  ");
                }
                out.push_str(line);
            }
        }
        out.push_str("\n}\n");
        out
    }

    /// Renders the human-readable table printed alongside the JSON.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== {} ({}{} physical core(s)) ==",
            self.bench,
            if self.quick { "quick run, " } else { "" },
            self.physical_cores
        );
        let _ = writeln!(out, "workload: {}", self.workload);
        let _ = writeln!(
            out,
            "{:<14} {:<12} {:>7} {:>8} {:>10} {:>8} {:>12} {:>12}",
            "engine", "scenario", "workers", "clients", "committed", "aborted", "tps", "crit.sects"
        );
        for run in &self.runs {
            let _ = writeln!(
                out,
                "{:<14} {:<12} {:>7} {:>8} {:>10} {:>8} {:>12.1} {:>12}",
                run.engine,
                if run.scenario.is_empty() {
                    "-"
                } else {
                    &run.scenario
                },
                run.workers,
                run.clients,
                run.committed,
                run.aborted,
                run.throughput_tps(),
                run.critical_sections
            );
        }
        out
    }

    /// Writes the JSON document to `path`.
    pub fn write_json(&self, path: &Path, baseline: Option<&str>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json(baseline))
    }
}

/// The workspace root, resolved from this crate's manifest location so
/// bench binaries write `BENCH_*.json` to a stable place no matter what
/// cargo sets as their working directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench is two levels under the workspace root")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            bench: "throughput_vs_cores",
            workload: "transfer accounts=64".into(),
            physical_cores: 1,
            quick: true,
            runs: vec![
                Scenario {
                    engine: "dora",
                    scenario: "remote=50".into(),
                    workers: 2,
                    clients: 4,
                    committed: 100,
                    aborted: 1,
                    secondary_reads: 640,
                    secondary_retries: 2,
                    log_waits: 5,
                    txn_acquisitions: 420,
                    queue_peak: 37,
                    busy_ns: 812_345,
                    buffer_hits: 160_000,
                    buffer_misses: 2_048,
                    buffer_evictions: 1_800,
                    buffer_table_waits: 0,
                    buffer_latch_waits: 12,
                    elapsed_secs: 0.5,
                    critical_sections: 0,
                    extra: vec![("deferrals", 3.0)],
                },
                Scenario {
                    engine: "conventional",
                    scenario: String::new(),
                    workers: 2,
                    clients: 4,
                    committed: 80,
                    aborted: 2,
                    secondary_reads: 0,
                    secondary_retries: 0,
                    log_waits: 0,
                    txn_acquisitions: 0,
                    queue_peak: 0,
                    busy_ns: 0,
                    buffer_hits: 0,
                    buffer_misses: 0,
                    buffer_evictions: 0,
                    buffer_table_waits: 0,
                    buffer_latch_waits: 0,
                    elapsed_secs: 0.5,
                    critical_sections: 1234,
                    extra: vec![],
                },
            ],
        }
    }

    #[test]
    fn json_has_schema_fields_and_computed_throughput() {
        let json = sample().to_json(None);
        assert!(json.contains("\"bench\": \"throughput_vs_cores\""));
        assert!(json.contains("\"schema_version\": 6"));
        assert!(json.contains("\"scenario\": \"remote=50\""));
        assert!(json.contains("\"scenario\": \"\""));
        assert!(json.contains("\"secondary_reads\": 640"));
        assert!(json.contains("\"secondary_retries\": 2"));
        assert!(json.contains("\"log_waits\": 5"));
        assert!(json.contains("\"txn_table_acquisitions\": 420"));
        assert!(json.contains("\"queue_peak\": 37"));
        assert!(json.contains("\"busy_ns\": 812345"));
        assert!(json.contains("\"buffer_hits\": 160000"));
        assert!(json.contains("\"buffer_misses\": 2048"));
        assert!(json.contains("\"buffer_evictions\": 1800"));
        assert!(json.contains("\"buffer_table_waits\": 0"));
        assert!(json.contains("\"buffer_latch_waits\": 12"));
        assert!(json.contains("\"throughput_tps\": 200.000"));
        assert!(json.contains("\"critical_sections\": 1234"));
        assert!(json.contains("\"deferrals\": 3.000"));
        // Two runs → exactly one separating comma between run objects.
        assert_eq!(json.matches("\"engine\"").count(), 2);
    }

    #[test]
    fn baseline_is_embedded_verbatim() {
        let base = sample().to_json(None);
        let json = sample().to_json(Some(&base));
        assert!(json.contains("\"baseline\": {"));
        assert_eq!(json.matches("\"schema_version\": 6").count(), 2);
    }

    #[test]
    fn escaping_and_nonfinite_floats_stay_valid() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(f64::NAN), "0.0");
        assert_eq!(json_f64(f64::INFINITY), "0.0");
        let mut r = sample();
        r.runs[0].elapsed_secs = 0.0;
        assert_eq!(r.runs[0].throughput_tps(), 0.0);
    }

    #[test]
    fn table_lists_every_run() {
        let table = sample().to_table();
        assert!(table.contains("dora"));
        assert!(table.contains("conventional"));
        assert!(table.contains("crit.sects"));
        assert!(table.contains("remote=50"), "scenario key in the table");
    }

    #[test]
    fn workspace_root_contains_the_bench_crate() {
        let root = workspace_root();
        assert!(root.join("crates").join("bench").exists());
    }
}
