//! Shared measurement loop for the wired benches.
//!
//! Drives the [`dora_workloads::transfer`] workload through either engine
//! with a configurable number of client threads, checks the conserved
//! total balance afterwards (a bench that corrupts data must fail loudly,
//! not report a fast number), and returns a
//! [`Scenario`] row ready for the JSON report.
//!
//! Methodology: every client runs an untimed **warmup** slice first
//! (threads spawned, pages touched, engine queues primed), then all
//! clients release from a barrier together and only that window is timed.
//! Client request streams are deterministic per seed, so both engines see
//! byte-identical inputs, including the workload's configured
//! partition-**locality** (`locality_pct`% of transfers stay inside one
//! partition block — the TPC-C-style mix; the DORA side builds
//! routing-aware flows via `transfer_flow_routed`, which is exactly the
//! designer knowledge the conventional engine cannot exploit).

use std::sync::{Arc, Barrier};
use std::time::Instant;

use dora_core::executor::{DoraEngine, DoraEngineConfig};
use dora_engine_conv::{ConvEngine, ConvEngineConfig};
use dora_storage::db::Database;
use dora_workloads::transfer::{
    audit_flow, audit_request, transfer_flow_routed, transfer_request, TransferMix, TransferOp,
    TransferWorkload,
};

use crate::report::Scenario;

/// Which engine a scenario drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The DORA thread-to-data engine.
    Dora,
    /// The conventional thread-to-transaction baseline.
    Conventional,
}

/// One engine × worker-count measurement of the transfer workload.
#[derive(Debug, Clone, Copy)]
pub struct TransferRun {
    /// Engine under test.
    pub engine: EngineKind,
    /// Worker threads (and, for DORA, logical partitions).
    pub workers: usize,
    /// Client threads offering load.
    pub clients: usize,
    /// Transfers each client submits in the timed window.
    pub per_client: usize,
    /// Percentage of transfers whose destination stays in the source's
    /// partition block (TPC-C-style locality).
    pub locality_pct: u64,
    /// Percentage of operations that are secondary balance audits (a
    /// non-aligned validated scan of every account) instead of transfers.
    /// 0 keeps the historical transfer-only mix, so committed baselines
    /// stay comparable.
    pub audit_pct: u64,
    /// Retries a client grants a transfer that aborted for transient
    /// reasons (lock timeouts); matches the conventional engine's internal
    /// retry budget so both sides see comparable offered load.
    pub client_retries: u32,
}

impl TransferRun {
    /// Untimed per-client warmup slice run before the barrier.
    fn warmup(&self) -> usize {
        (self.per_client / 10).max(5)
    }
}

/// Executes one measurement and returns the report row.
///
/// Panics if the engines lose money: the conserved total balance is
/// re-checked after every run.
pub fn run_transfer(wl: &TransferWorkload, run: TransferRun) -> Scenario {
    match run.engine {
        EngineKind::Dora => run_dora(wl, run),
        EngineKind::Conventional => run_conv(wl, run),
    }
}

/// Runs the measurement `repeats` times and keeps the highest-throughput
/// sample. On shared/oversubscribed hosts interference only ever slows a
/// run down, so the fastest sample is the closest estimate of the
/// engine's true cost; inputs are deterministic, so every repeat does
/// identical work.
pub fn run_transfer_best_of(wl: &TransferWorkload, run: TransferRun, repeats: usize) -> Scenario {
    let mut best: Option<Scenario> = None;
    for _ in 0..repeats.max(1) {
        let sample = run_transfer(wl, run);
        let better = best
            .as_ref()
            .is_none_or(|b| sample.throughput_tps() > b.throughput_tps());
        if better {
            best = Some(sample);
        }
    }
    best.expect("at least one repeat")
}

fn run_dora(wl: &TransferWorkload, run: TransferRun) -> Scenario {
    let db = Arc::new(Database::default());
    let table = wl.load(&db);
    let engine = Arc::new(DoraEngine::new(
        db.clone(),
        wl.routing(table, run.workers),
        DoraEngineConfig {
            workers: run.workers,
            ..Default::default()
        },
    ));
    let routing = engine.routing();
    // Two barriers: after `ready` every client is blocked on `go`, so the
    // main thread's pre-measurement samples (clock, lock-stats) are taken
    // while nothing runs — no timed work can slip in before the samples.
    let ready = Arc::new(Barrier::new(run.clients + 1));
    let go = Arc::new(Barrier::new(run.clients + 1));

    let mut clients = Vec::new();
    for c in 0..run.clients {
        let engine = engine.clone();
        let routing = routing.clone();
        let ready = ready.clone();
        let go = go.clone();
        let accounts = wl.accounts;
        let initial_balance = wl.initial_balance;
        clients.push(std::thread::spawn(move || {
            let mut mix = TransferMix::with_ops(
                accounts,
                c as u64 + 1,
                run.workers,
                run.locality_pct,
                run.audit_pct,
            );
            let total = accounts * initial_balance;
            let attempt_once = |op: TransferOp| match op {
                TransferOp::Transfer { from, to, amount } => engine
                    .execute(transfer_flow_routed(&routing, table, from, to, amount))
                    .is_committed(),
                TransferOp::Audit => {
                    // A torn audit (inconsistent committed snapshot) is a
                    // correctness bug, not load: fail the bench.
                    match engine.execute(audit_flow(table, 0, accounts - 1, Some(total))) {
                        o if o.is_committed() => true,
                        dora_core::executor::TxnOutcome::Aborted { reason } => {
                            assert!(!reason.contains("torn"), "torn audit: {reason}");
                            false
                        }
                        _ => unreachable!(),
                    }
                }
            };
            // One draw per loop iteration; a transiently aborted operation
            // is retried AS-IS, so both engines consume identical streams.
            let operation = |mix: &mut TransferMix| {
                let op = mix.next_op();
                let mut attempts = 0;
                loop {
                    if attempt_once(op) {
                        return true;
                    }
                    attempts += 1;
                    if attempts > run.client_retries {
                        return false;
                    }
                }
            };
            for _ in 0..run.warmup() {
                operation(&mut mix);
            }
            ready.wait();
            go.wait();
            let (mut committed, mut aborted) = (0u64, 0u64);
            for _ in 0..run.per_client {
                if operation(&mut mix) {
                    committed += 1;
                } else {
                    aborted += 1;
                }
            }
            (committed, aborted)
        }));
    }
    ready.wait();
    let crit_before = db.lock_stats().critical_sections;
    let validated_before = db.counters();
    let log_before = db.log_stats();
    let txn_before = db.txn_stats();
    let started = Instant::now();
    go.wait();
    let (committed, aborted) = join_clients(clients);
    let elapsed = started.elapsed();

    let stats = engine.stats();
    let log_after = db.log_stats();
    let txn_after = db.txn_stats();
    let extra = vec![
        ("deferrals", stats.deferrals as f64),
        (
            "log_group_commits",
            (log_after.group_commits - log_before.group_commits) as f64,
        ),
        ("actions", stats.actions as f64),
        ("secondary_parked", stats.secondary_parked as f64),
        (
            "wakeups",
            stats.workers.iter().map(|w| w.wakeups).sum::<u64>() as f64,
        ),
        (
            "rescans_avoided",
            stats.workers.iter().map(|w| w.rescans_avoided).sum::<u64>() as f64,
        ),
        (
            "outbox_msgs",
            stats.workers.iter().map(|w| w.outbox_msgs).sum::<u64>() as f64,
        ),
        (
            "outbox_pushes",
            stats.workers.iter().map(|w| w.outbox_pushes).sum::<u64>() as f64,
        ),
    ];
    let crit = db.lock_stats().critical_sections - crit_before;
    let validated = db.counters();
    assert_eq!(
        wl.current_total(&db, table),
        wl.total_balance(),
        "DORA lost money — refusing to report a corrupt run"
    );
    Scenario {
        engine: "dora",
        workers: run.workers,
        clients: run.clients,
        committed,
        aborted,
        secondary_reads: validated.validated_reads - validated_before.validated_reads,
        secondary_retries: validated.validated_retries - validated_before.validated_retries,
        log_waits: log_after.waits() - log_before.waits(),
        txn_acquisitions: txn_after.stripe_acquisitions - txn_before.stripe_acquisitions,
        elapsed_secs: elapsed.as_secs_f64(),
        critical_sections: crit,
        extra,
    }
}

fn run_conv(wl: &TransferWorkload, run: TransferRun) -> Scenario {
    let db = Arc::new(Database::default());
    let table = wl.load(&db);
    let engine = Arc::new(ConvEngine::new(
        db.clone(),
        ConvEngineConfig {
            workers: run.workers,
            max_retries: run.client_retries,
        },
    ));
    // Two barriers: after `ready` every client is blocked on `go`, so the
    // main thread's pre-measurement samples (clock, lock-stats) are taken
    // while nothing runs — no timed work can slip in before the samples.
    let ready = Arc::new(Barrier::new(run.clients + 1));
    let go = Arc::new(Barrier::new(run.clients + 1));

    let mut clients = Vec::new();
    for c in 0..run.clients {
        let engine = engine.clone();
        let ready = ready.clone();
        let go = go.clone();
        let accounts = wl.accounts;
        let initial_balance = wl.initial_balance;
        clients.push(std::thread::spawn(move || {
            let mut mix = TransferMix::with_ops(
                accounts,
                c as u64 + 1,
                run.workers,
                run.locality_pct,
                run.audit_pct,
            );
            let total = accounts * initial_balance;
            let operation = |mix: &mut TransferMix| match mix.next_op() {
                TransferOp::Transfer { from, to, amount } => engine
                    .execute(transfer_request(table, from, to, amount))
                    .is_committed(),
                TransferOp::Audit => {
                    match engine.execute(audit_request(table, 0, accounts - 1, Some(total))) {
                        o if o.is_committed() => true,
                        dora_engine_conv::TxnOutcome::Aborted { reason } => {
                            assert!(!reason.contains("torn"), "torn audit: {reason}");
                            false
                        }
                        _ => unreachable!(),
                    }
                }
            };
            for _ in 0..run.warmup() {
                operation(&mut mix);
            }
            ready.wait();
            go.wait();
            let (mut committed, mut aborted) = (0u64, 0u64);
            for _ in 0..run.per_client {
                if operation(&mut mix) {
                    committed += 1;
                } else {
                    aborted += 1;
                }
            }
            (committed, aborted)
        }));
    }
    ready.wait();
    let crit_before = db.lock_stats().critical_sections;
    let validated_before = db.counters();
    let log_before = db.log_stats();
    let txn_before = db.txn_stats();
    let started = Instant::now();
    go.wait();
    let (committed, aborted) = join_clients(clients);
    let elapsed = started.elapsed();

    let stats = engine.stats();
    let log_after = db.log_stats();
    let txn_after = db.txn_stats();
    let extra = vec![
        ("retries", stats.retries as f64),
        (
            "log_group_commits",
            (log_after.group_commits - log_before.group_commits) as f64,
        ),
    ];
    let crit = db.lock_stats().critical_sections - crit_before;
    let validated = db.counters();
    assert_eq!(
        wl.current_total(&db, table),
        wl.total_balance(),
        "conventional engine lost money — refusing to report a corrupt run"
    );
    Scenario {
        engine: "conventional",
        workers: run.workers,
        clients: run.clients,
        committed,
        aborted,
        secondary_reads: validated.validated_reads - validated_before.validated_reads,
        secondary_retries: validated.validated_retries - validated_before.validated_retries,
        log_waits: log_after.waits() - log_before.waits(),
        txn_acquisitions: txn_after.stripe_acquisitions - txn_before.stripe_acquisitions,
        elapsed_secs: elapsed.as_secs_f64(),
        critical_sections: crit,
        extra,
    }
}

fn join_clients(clients: Vec<std::thread::JoinHandle<(u64, u64)>>) -> (u64, u64) {
    clients.into_iter().fold((0, 0), |(c, a), h| {
        let (hc, ha) = h.join().expect("bench client panicked");
        (c + hc, a + ha)
    })
}

/// Parses the common bench flags: `--quick`, `--compare <path>`,
/// `--out <path>`, `--accounts <n>`, `--total <n>`, `--repeats <n>`,
/// `--audit-pct <n>`.
#[derive(Debug, Default, Clone)]
pub struct BenchArgs {
    /// CI smoke mode: tiny configuration, marked `"quick"` in the JSON.
    pub quick: bool,
    /// Path of a previous report to embed as `"baseline"`.
    pub compare: Option<String>,
    /// Override for the JSON output path.
    pub out: Option<String>,
    /// Override for the account count (smaller = hotter contention).
    pub accounts: Option<i64>,
    /// Override for the per-scenario transaction total.
    pub total: Option<usize>,
    /// Override for the best-of-N repeat count (default 3 full, 1 quick).
    /// Committed baselines use `--repeats 6` to damp scheduler noise.
    pub repeats: Option<usize>,
    /// Percentage of operations run as secondary balance audits (default
    /// 0: the transfer-only mix the committed baselines were recorded
    /// with).
    pub audit_pct: Option<u64>,
}

impl BenchArgs {
    /// Parses from an iterator of raw arguments (program name excluded).
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut parsed = BenchArgs::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                // `cargo bench` appends `--bench` to the binary's args.
                "--bench" => {}
                "--quick" => parsed.quick = true,
                "--compare" => parsed.compare = args.next(),
                "--out" => parsed.out = args.next(),
                "--accounts" => parsed.accounts = args.next().and_then(|v| v.parse().ok()),
                "--total" => parsed.total = args.next().and_then(|v| v.parse().ok()),
                "--repeats" => parsed.repeats = args.next().and_then(|v| v.parse().ok()),
                "--audit-pct" => parsed.audit_pct = args.next().and_then(|v| v.parse().ok()),
                other => eprintln!("ignoring unknown bench argument: {other}"),
            }
        }
        parsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_args() {
        let a = BenchArgs::parse(
            [
                "--quick",
                "--compare",
                "x.json",
                "--out",
                "y.json",
                "--repeats",
                "6",
            ]
            .into_iter()
            .map(String::from),
        );
        assert!(a.quick);
        assert_eq!(a.compare.as_deref(), Some("x.json"));
        assert_eq!(a.out.as_deref(), Some("y.json"));
        assert_eq!(a.repeats, Some(6));
        let b = BenchArgs::parse(std::iter::empty());
        assert!(!b.quick && b.compare.is_none() && b.out.is_none() && b.repeats.is_none());
    }

    #[test]
    fn tiny_transfer_run_reports_sane_numbers_on_both_engines() {
        let wl = TransferWorkload {
            accounts: 32,
            initial_balance: 100,
        };
        for engine in [EngineKind::Dora, EngineKind::Conventional] {
            let s = run_transfer(
                &wl,
                TransferRun {
                    engine,
                    workers: 2,
                    clients: 2,
                    per_client: 10,
                    locality_pct: 50,
                    audit_pct: 0,
                    client_retries: 10,
                },
            );
            assert_eq!(s.committed + s.aborted, 20, "{engine:?}");
            assert!(s.elapsed_secs > 0.0);
            assert!(s.throughput_tps() > 0.0);
            assert_eq!(s.secondary_reads, 0, "no audits in a 0% mix");
            // Every transfer writes twice: stripe acquisitions (begin
            // clear + undo pushes + commit extraction) must register,
            // while contended log waits stay group-commit bounded.
            assert!(s.txn_acquisitions > 0, "{engine:?}: stripes uncounted");
            assert!(
                s.log_waits <= 2 * (s.committed + s.aborted),
                "{engine:?}: log waits {} exceed the contention bound",
                s.log_waits
            );
        }
    }

    #[test]
    fn audit_mix_exercises_validated_reads_on_both_engines() {
        let wl = TransferWorkload {
            accounts: 32,
            initial_balance: 100,
        };
        for engine in [EngineKind::Dora, EngineKind::Conventional] {
            let s = run_transfer(
                &wl,
                TransferRun {
                    engine,
                    workers: 2,
                    clients: 2,
                    per_client: 15,
                    locality_pct: 50,
                    audit_pct: 40,
                    client_retries: 10,
                },
            );
            assert_eq!(s.committed + s.aborted, 30, "{engine:?}");
            assert!(
                s.secondary_reads > 0,
                "{engine:?}: audits must ride the validated read path"
            );
        }
    }
}
