//! Shared measurement loop for the wired benches.
//!
//! Drives the [`dora_workloads::transfer`] or [`dora_workloads::tatp`]
//! workload through either engine with a configurable number of client
//! threads, checks the workload's conserved invariant afterwards (total
//! balance for transfers; referential integrity and the call-forwarding
//! ledger for TATP — a bench that corrupts data must fail loudly, not
//! report a fast number), and returns a [`Scenario`] row ready for the
//! JSON report.
//!
//! Methodology: every client runs an untimed **warmup** slice first
//! (threads spawned, pages touched, engine queues primed), then all
//! clients release from a barrier together and only that window is timed.
//! Client request streams are deterministic per seed, so both engines see
//! byte-identical inputs, including the workload's configured
//! partition-**locality** (`locality_pct`% of transfers stay inside one
//! partition block — the TPC-C-style mix; the DORA side builds
//! routing-aware flows via `transfer_flow_routed`, which is exactly the
//! designer knowledge the conventional engine cannot exploit).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use dora_core::executor::{DoraEngine, DoraEngineConfig};
use dora_engine_conv::{ConvEngine, ConvEngineConfig};
use dora_storage::buffer::FilePageStore;
use dora_storage::db::{Database, DatabaseConfig};
use dora_storage::io::StdFs;
use dora_workloads::tatp::{flow_of, request_of, TatpMix, TatpTables, TatpWorkload, MISS};
use dora_workloads::transfer::{
    audit_flow, audit_request, transfer_flow_routed, transfer_request, TransferMix, TransferOp,
    TransferWorkload,
};

use crate::report::Scenario;

/// Which engine a scenario drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The DORA thread-to-data engine.
    Dora,
    /// The conventional thread-to-transaction baseline.
    Conventional,
}

/// Where a scenario's pages live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageKind {
    /// Buffer pool over the in-memory page store, sized so the working
    /// set always fits — the historical configuration every committed
    /// pre-v6 baseline was recorded with.
    #[default]
    InMemory,
    /// Buffer pool over a file-backed page store with a bounded frame
    /// count. Sizing `frames` below the working set forces the run
    /// through the miss / eviction / background-writeback path — the
    /// `buffer_pool` sweep's knob.
    Disk {
        /// Buffer-pool capacity in frames.
        frames: usize,
    },
}

/// Deletes a disk run's scratch directory when the scenario finishes;
/// held alive for the duration of the measurement.
struct DiskDirGuard(PathBuf);

impl Drop for DiskDirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Scratch directories get a process-unique suffix so repeated disk
/// scenarios in one bench invocation never collide on a page file.
static DISK_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// Builds the database a scenario runs against. Disk runs get a
/// file-backed page store in a scratch directory (removed when the
/// returned guard drops) and a pool capped at `frames`.
fn build_db(storage: StorageKind) -> (Arc<Database>, Option<DiskDirGuard>) {
    match storage {
        StorageKind::InMemory => (Arc::new(Database::default()), None),
        StorageKind::Disk { frames } => {
            let dir = std::env::temp_dir().join(format!(
                "dora-bench-pages-{}-{}",
                std::process::id(),
                DISK_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let store = FilePageStore::open(&StdFs, &dir).expect("open bench page file");
            let db = Database::with_store(
                DatabaseConfig {
                    buffer_frames: frames,
                    ..Default::default()
                },
                Arc::new(store),
            );
            (Arc::new(db), Some(DiskDirGuard(dir)))
        }
    }
}

/// One engine × worker-count measurement of the transfer workload.
#[derive(Debug, Clone, Copy)]
pub struct TransferRun {
    /// Engine under test.
    pub engine: EngineKind,
    /// Worker threads (and, for DORA, logical partitions).
    pub workers: usize,
    /// Client threads offering load.
    pub clients: usize,
    /// Transfers each client submits in the timed window.
    pub per_client: usize,
    /// Percentage of transfers whose destination stays in the source's
    /// partition block (TPC-C-style locality).
    pub locality_pct: u64,
    /// Percentage of operations that are secondary balance audits (a
    /// non-aligned validated scan of every account) instead of transfers.
    /// 0 keeps the historical transfer-only mix, so committed baselines
    /// stay comparable.
    pub audit_pct: u64,
    /// Retries a client grants a transfer that aborted for transient
    /// reasons (lock timeouts); matches the conventional engine's internal
    /// retry budget so both sides see comparable offered load.
    pub client_retries: u32,
}

impl TransferRun {
    /// Untimed per-client warmup slice run before the barrier.
    fn warmup(&self) -> usize {
        (self.per_client / 10).max(5)
    }
}

/// Executes one measurement and returns the report row.
///
/// Panics if the engines lose money: the conserved total balance is
/// re-checked after every run.
pub fn run_transfer(wl: &TransferWorkload, run: TransferRun) -> Scenario {
    match run.engine {
        EngineKind::Dora => run_dora(wl, run),
        EngineKind::Conventional => run_conv(wl, run),
    }
}

/// Runs the measurement `repeats` times and keeps the highest-throughput
/// sample. On shared/oversubscribed hosts interference only ever slows a
/// run down, so the fastest sample is the closest estimate of the
/// engine's true cost; inputs are deterministic, so every repeat does
/// identical work.
pub fn run_transfer_best_of(wl: &TransferWorkload, run: TransferRun, repeats: usize) -> Scenario {
    let mut best: Option<Scenario> = None;
    for _ in 0..repeats.max(1) {
        let sample = run_transfer(wl, run);
        let better = best
            .as_ref()
            .is_none_or(|b| sample.throughput_tps() > b.throughput_tps());
        if better {
            best = Some(sample);
        }
    }
    best.expect("at least one repeat")
}

fn run_dora(wl: &TransferWorkload, run: TransferRun) -> Scenario {
    let db = Arc::new(Database::default());
    let table = wl.load(&db);
    let engine = Arc::new(DoraEngine::new(
        db.clone(),
        wl.routing(table, run.workers),
        DoraEngineConfig {
            workers: run.workers,
            ..Default::default()
        },
    ));
    let routing = engine.routing();
    // Two barriers: after `ready` every client is blocked on `go`, so the
    // main thread's pre-measurement samples (clock, lock-stats) are taken
    // while nothing runs — no timed work can slip in before the samples.
    let ready = Arc::new(Barrier::new(run.clients + 1));
    let go = Arc::new(Barrier::new(run.clients + 1));

    let mut clients = Vec::new();
    for c in 0..run.clients {
        let engine = engine.clone();
        let routing = routing.clone();
        let ready = ready.clone();
        let go = go.clone();
        let accounts = wl.accounts;
        let initial_balance = wl.initial_balance;
        clients.push(std::thread::spawn(move || {
            let mut mix = TransferMix::with_ops(
                accounts,
                c as u64 + 1,
                run.workers,
                run.locality_pct,
                run.audit_pct,
            );
            let total = accounts * initial_balance;
            let attempt_once = |op: TransferOp| match op {
                TransferOp::Transfer { from, to, amount } => engine
                    .execute(transfer_flow_routed(&routing, table, from, to, amount))
                    .is_committed(),
                TransferOp::Audit => {
                    // A torn audit (inconsistent committed snapshot) is a
                    // correctness bug, not load: fail the bench.
                    match engine.execute(audit_flow(table, 0, accounts - 1, Some(total))) {
                        o if o.is_committed() => true,
                        dora_core::executor::TxnOutcome::Aborted { reason } => {
                            assert!(!reason.contains("torn"), "torn audit: {reason}");
                            false
                        }
                        _ => unreachable!(),
                    }
                }
            };
            // One draw per loop iteration; a transiently aborted operation
            // is retried AS-IS, so both engines consume identical streams.
            let operation = |mix: &mut TransferMix| {
                let op = mix.next_op();
                let mut attempts = 0;
                loop {
                    if attempt_once(op) {
                        return true;
                    }
                    attempts += 1;
                    if attempts > run.client_retries {
                        return false;
                    }
                }
            };
            for _ in 0..run.warmup() {
                operation(&mut mix);
            }
            ready.wait();
            go.wait();
            let (mut committed, mut aborted) = (0u64, 0u64);
            for _ in 0..run.per_client {
                if operation(&mut mix) {
                    committed += 1;
                } else {
                    aborted += 1;
                }
            }
            (committed, aborted)
        }));
    }
    ready.wait();
    let crit_before = db.lock_stats().critical_sections;
    let validated_before = db.counters();
    let log_before = db.log_stats();
    let txn_before = db.txn_stats();
    let buf_before = db.buffer_stats();
    let busy_before: u64 = engine.stats().workers.iter().map(|w| w.busy_ns).sum();
    let started = Instant::now();
    go.wait();
    let (committed, aborted) = join_clients(clients);
    let elapsed = started.elapsed();

    let stats = engine.stats();
    let log_after = db.log_stats();
    let txn_after = db.txn_stats();
    let buf_after = db.buffer_stats();
    let extra = vec![
        ("deferrals", stats.deferrals as f64),
        (
            "log_group_commits",
            (log_after.group_commits - log_before.group_commits) as f64,
        ),
        ("actions", stats.actions as f64),
        ("secondary_parked", stats.secondary_parked as f64),
        (
            "wakeups",
            stats.workers.iter().map(|w| w.wakeups).sum::<u64>() as f64,
        ),
        (
            "rescans_avoided",
            stats.workers.iter().map(|w| w.rescans_avoided).sum::<u64>() as f64,
        ),
        (
            "outbox_msgs",
            stats.workers.iter().map(|w| w.outbox_msgs).sum::<u64>() as f64,
        ),
        (
            "outbox_pushes",
            stats.workers.iter().map(|w| w.outbox_pushes).sum::<u64>() as f64,
        ),
    ];
    let crit = db.lock_stats().critical_sections - crit_before;
    let validated = db.counters();
    assert_eq!(
        wl.current_total(&db, table),
        wl.total_balance(),
        "DORA lost money — refusing to report a corrupt run"
    );
    Scenario {
        engine: "dora",
        scenario: String::new(),
        workers: run.workers,
        clients: run.clients,
        committed,
        aborted,
        secondary_reads: validated.validated_reads - validated_before.validated_reads,
        secondary_retries: validated.validated_retries - validated_before.validated_retries,
        log_waits: log_after.waits() - log_before.waits(),
        txn_acquisitions: txn_after.stripe_acquisitions - txn_before.stripe_acquisitions,
        queue_peak: 0,
        busy_ns: stats
            .workers
            .iter()
            .map(|w| w.busy_ns)
            .sum::<u64>()
            .saturating_sub(busy_before),
        buffer_hits: buf_after.hits - buf_before.hits,
        buffer_misses: buf_after.misses - buf_before.misses,
        buffer_evictions: buf_after.evictions - buf_before.evictions,
        buffer_table_waits: buf_after.table_waits - buf_before.table_waits,
        buffer_latch_waits: buf_after.latch_waits - buf_before.latch_waits,
        elapsed_secs: elapsed.as_secs_f64(),
        critical_sections: crit,
        extra,
    }
}

fn run_conv(wl: &TransferWorkload, run: TransferRun) -> Scenario {
    let db = Arc::new(Database::default());
    let table = wl.load(&db);
    let engine = Arc::new(ConvEngine::new(
        db.clone(),
        ConvEngineConfig {
            workers: run.workers,
            max_retries: run.client_retries,
        },
    ));
    // Two barriers: after `ready` every client is blocked on `go`, so the
    // main thread's pre-measurement samples (clock, lock-stats) are taken
    // while nothing runs — no timed work can slip in before the samples.
    let ready = Arc::new(Barrier::new(run.clients + 1));
    let go = Arc::new(Barrier::new(run.clients + 1));

    let mut clients = Vec::new();
    for c in 0..run.clients {
        let engine = engine.clone();
        let ready = ready.clone();
        let go = go.clone();
        let accounts = wl.accounts;
        let initial_balance = wl.initial_balance;
        clients.push(std::thread::spawn(move || {
            let mut mix = TransferMix::with_ops(
                accounts,
                c as u64 + 1,
                run.workers,
                run.locality_pct,
                run.audit_pct,
            );
            let total = accounts * initial_balance;
            let operation = |mix: &mut TransferMix| match mix.next_op() {
                TransferOp::Transfer { from, to, amount } => engine
                    .execute(transfer_request(table, from, to, amount))
                    .is_committed(),
                TransferOp::Audit => {
                    match engine.execute(audit_request(table, 0, accounts - 1, Some(total))) {
                        o if o.is_committed() => true,
                        dora_engine_conv::TxnOutcome::Aborted { reason } => {
                            assert!(!reason.contains("torn"), "torn audit: {reason}");
                            false
                        }
                        _ => unreachable!(),
                    }
                }
            };
            for _ in 0..run.warmup() {
                operation(&mut mix);
            }
            ready.wait();
            go.wait();
            let (mut committed, mut aborted) = (0u64, 0u64);
            for _ in 0..run.per_client {
                if operation(&mut mix) {
                    committed += 1;
                } else {
                    aborted += 1;
                }
            }
            (committed, aborted)
        }));
    }
    ready.wait();
    let crit_before = db.lock_stats().critical_sections;
    let validated_before = db.counters();
    let log_before = db.log_stats();
    let txn_before = db.txn_stats();
    let buf_before = db.buffer_stats();
    let started = Instant::now();
    go.wait();
    let (committed, aborted) = join_clients(clients);
    let elapsed = started.elapsed();

    let stats = engine.stats();
    let log_after = db.log_stats();
    let txn_after = db.txn_stats();
    let buf_after = db.buffer_stats();
    let extra = vec![
        ("retries", stats.retries as f64),
        (
            "log_group_commits",
            (log_after.group_commits - log_before.group_commits) as f64,
        ),
    ];
    let crit = db.lock_stats().critical_sections - crit_before;
    let validated = db.counters();
    assert_eq!(
        wl.current_total(&db, table),
        wl.total_balance(),
        "conventional engine lost money — refusing to report a corrupt run"
    );
    Scenario {
        engine: "conventional",
        scenario: String::new(),
        workers: run.workers,
        clients: run.clients,
        committed,
        aborted,
        secondary_reads: validated.validated_reads - validated_before.validated_reads,
        secondary_retries: validated.validated_retries - validated_before.validated_retries,
        log_waits: log_after.waits() - log_before.waits(),
        txn_acquisitions: txn_after.stripe_acquisitions - txn_before.stripe_acquisitions,
        queue_peak: 0,
        busy_ns: 0,
        buffer_hits: buf_after.hits - buf_before.hits,
        buffer_misses: buf_after.misses - buf_before.misses,
        buffer_evictions: buf_after.evictions - buf_before.evictions,
        buffer_table_waits: buf_after.table_waits - buf_before.table_waits,
        buffer_latch_waits: buf_after.latch_waits - buf_before.latch_waits,
        elapsed_secs: elapsed.as_secs_f64(),
        critical_sections: crit,
        extra,
    }
}

fn join_clients(clients: Vec<std::thread::JoinHandle<(u64, u64)>>) -> (u64, u64) {
    clients.into_iter().fold((0, 0), |(c, a), h| {
        let (hc, ha) = h.join().expect("bench client panicked");
        (c + hc, a + ha)
    })
}

/// Which request mix a TATP scenario offers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TatpMixKind {
    /// The standard seven-transaction mix with Zipf-skewed subscriber
    /// choice; `theta` 0.0 is uniform (the spec's default). The
    /// load-balancing sweep's knob.
    Skewed {
        /// Zipf skew parameter (Gray et al.; 0.0 = uniform).
        theta: f64,
    },
    /// Pure `UpdateLocation` traffic where `remote_pct`% of requests are
    /// handoffs: the new VLR location lives in a *different* partition's
    /// key block, so the DORA flow pays a cross-partition phase. The
    /// access-pattern sweep's knob.
    Handoff {
        /// Percentage of updates whose location crosses partitions.
        remote_pct: u64,
    },
    /// The skewed mix whose hot set *moves* mid-run: after `shift_after`
    /// draws, each client's Zipf ranks rotate by half the subscriber
    /// span, so partitions that were cold suddenly own the hotspot. A
    /// static routing table cannot follow it — the adaptive
    /// repartitioning scenario's knob.
    SkewShift {
        /// Zipf skew parameter, before and after the shift.
        theta: f64,
        /// Per-client draw count (warmup included) after which the hot
        /// set rotates.
        shift_after: u64,
    },
}

impl TatpMixKind {
    /// The report's scenario key (`zipf=T` / `remote=N`): the swept value
    /// is part of a row's identity, not a separate report.
    pub fn scenario_label(&self) -> String {
        match self {
            TatpMixKind::Skewed { theta } => format!("zipf={theta:.2}"),
            TatpMixKind::Handoff { remote_pct } => format!("remote={remote_pct}"),
            // The shift point is sized to the run, not part of the
            // sweep's identity, so it stays out of the key.
            TatpMixKind::SkewShift { theta, .. } => format!("zipf={theta:.2}+shift"),
        }
    }

    fn build(&self, subscribers: i64, seed: u64, partitions: usize) -> TatpMix {
        match *self {
            TatpMixKind::Skewed { theta } => TatpMix::with_skew(subscribers, seed, theta),
            TatpMixKind::Handoff { remote_pct } => {
                TatpMix::update_location_handoff(subscribers, seed, partitions, remote_pct)
            }
            TatpMixKind::SkewShift { theta, shift_after } => {
                TatpMix::with_skew_shift(subscribers, seed, theta, shift_after)
            }
        }
    }
}

/// Mid-run worker-kill schedule for the availability scenario.
#[derive(Debug, Clone, Copy)]
pub struct KillSpec {
    /// Distinct worker kills injected over the measurement window.
    pub count: u32,
    /// Commits (measured from the quiet point) before the first kill;
    /// subsequent kills fire at the same spacing.
    pub after_committed: u64,
}

/// One engine × configuration measurement of the TATP workload.
#[derive(Debug, Clone, Copy)]
pub struct TatpRun {
    /// Engine under test.
    pub engine: EngineKind,
    /// Worker threads (and, for DORA, logical partitions).
    pub workers: usize,
    /// Client threads offering load.
    pub clients: usize,
    /// Transactions each client submits in the timed window.
    pub per_client: usize,
    /// The offered request mix.
    pub mix: TatpMixKind,
    /// Run the designer's adaptive load balancer next to the workload
    /// (DORA only — the conventional engine has no partitions to
    /// balance, so the flag is ignored there).
    pub balancer: bool,
    /// Retries granted a transiently aborted request (lock timeouts).
    /// TATP's spec misses (absent subscriber, absent call-forwarding row,
    /// duplicate insert) are *expected* outcomes, never retried.
    pub client_retries: u32,
    /// Where pages live: in-memory (the historical configuration) or a
    /// file-backed store with a bounded pool (the `buffer_pool` sweep).
    pub storage: StorageKind,
    /// Mid-run worker kills (DORA only — the conventional engine has no
    /// partition workers to kill, so it serves as the no-fault control
    /// under the same scenario key). `None` disables injection.
    pub kill: Option<KillSpec>,
}

impl TatpRun {
    fn warmup(&self) -> usize {
        (self.per_client / 10).max(5)
    }
}

/// Per-client tally of one TATP measurement window.
#[derive(Debug, Default, Clone, Copy)]
struct TatpTally {
    committed: u64,
    aborted: u64,
    /// Spec-expected misses (a subset of `aborted`).
    missed: u64,
    /// Retryable infrastructure aborts observed (a partition worker died
    /// mid-flight) — counted per attempt, including attempts that later
    /// retried to success, so recovery noise never books as workload
    /// contention.
    infra: u64,
    /// Net call-forwarding rows added by this client's *committed*
    /// inserts/deletes — the conservation check's ledger.
    cf_delta: i64,
}

/// Executes one TATP measurement and returns the report row.
///
/// Panics if the engines break TATP's referential integrity or the
/// call-forwarding row count stops matching the committed insert/delete
/// ledger: a bench that corrupts data must fail loudly, not report a
/// fast number.
pub fn run_tatp(wl: &TatpWorkload, run: TatpRun) -> Scenario {
    match run.engine {
        EngineKind::Dora => run_tatp_dora(wl, run),
        EngineKind::Conventional => run_tatp_conv(wl, run),
    }
}

/// Best-of-N sampling for TATP, same rationale as
/// [`run_transfer_best_of`].
pub fn run_tatp_best_of(wl: &TatpWorkload, run: TatpRun, repeats: usize) -> Scenario {
    let mut best: Option<Scenario> = None;
    for _ in 0..repeats.max(1) {
        let sample = run_tatp(wl, run);
        let better = best
            .as_ref()
            .is_none_or(|b| sample.throughput_tps() > b.throughput_tps());
        if better {
            best = Some(sample);
        }
    }
    best.expect("at least one repeat")
}

/// Static keys for per-partition action counts in `extra` (the report's
/// extra map wants `&'static str`; the swept benches run ≤ 8 workers).
const PARTITION_ACTION_KEYS: [&str; 8] = [
    "p0_actions",
    "p1_actions",
    "p2_actions",
    "p3_actions",
    "p4_actions",
    "p5_actions",
    "p6_actions",
    "p7_actions",
];

fn run_tatp_dora(wl: &TatpWorkload, run: TatpRun) -> Scenario {
    let (db, _disk) = build_db(run.storage);
    let tables = wl.load(&db);
    let engine = Arc::new(DoraEngine::new(
        db.clone(),
        wl.routing(tables, run.workers),
        DoraEngineConfig {
            workers: run.workers,
            ..Default::default()
        },
    ));
    let ready = Arc::new(Barrier::new(run.clients + 1));
    let go = Arc::new(Barrier::new(run.clients + 1));

    // The adaptive load balancer runs from engine start (warmup
    // included) so its sampling window is warm when measurement begins;
    // it keeps splitting hot ranges quiesce-free underneath the clients.
    let stop_balancer = Arc::new(AtomicBool::new(false));
    let balancer = run.balancer.then(|| {
        let engine = engine.clone();
        let stop = stop_balancer.clone();
        std::thread::spawn(move || {
            dora_designer::LoadBalancer::new(dora_designer::BalancerConfig {
                interval: Duration::from_millis(20),
                ..Default::default()
            })
            .run(&engine, &stop)
        })
    });

    let mut clients = Vec::new();
    for c in 0..run.clients {
        let engine = engine.clone();
        let ready = ready.clone();
        let go = go.clone();
        let subscribers = wl.subscribers;
        clients.push(std::thread::spawn(move || {
            let mut mix = run.mix.build(subscribers, c as u64 + 1, run.workers);
            // Commit / expected-miss / transient-retry triage; a retried
            // request is re-submitted AS-IS so both engines consume
            // identical streams.
            let operation = |mix: &mut TatpMix, tally: Option<&mut TatpTally>| {
                let op = mix.next_op();
                let mut attempts = 0;
                let mut infra_hits = 0u64;
                let outcome = loop {
                    match engine.execute(flow_of(tables, &op, None)) {
                        o if o.is_committed() => break Ok(()),
                        dora_core::executor::TxnOutcome::Aborted { reason } => {
                            if reason.contains(MISS) {
                                break Err(true);
                            }
                            // Infrastructure aborts (a partition worker
                            // died mid-flight) are retryable like lock
                            // timeouts, but tallied apart: the
                            // availability report must separate recovery
                            // noise from workload contention.
                            if reason.contains("partition worker unavailable") {
                                infra_hits += 1;
                            }
                            attempts += 1;
                            if attempts > run.client_retries {
                                break Err(false);
                            }
                        }
                        _ => unreachable!(),
                    }
                };
                if let Some(tally) = tally {
                    tally.infra += infra_hits;
                    match outcome {
                        Ok(()) => {
                            tally.committed += 1;
                            tally.cf_delta += op.cf_delta();
                        }
                        Err(missed) => {
                            tally.aborted += 1;
                            tally.missed += u64::from(missed);
                        }
                    }
                }
            };
            for _ in 0..run.warmup() {
                operation(&mut mix, None);
            }
            ready.wait();
            go.wait();
            let mut tally = TatpTally::default();
            for _ in 0..run.per_client {
                operation(&mut mix, Some(&mut tally));
            }
            tally
        }));
    }
    ready.wait();
    // Quiet point: warmup is done, nothing runs until `go` releases, so
    // these samples see no in-flight work.
    let crit_before = db.lock_stats().critical_sections;
    let validated_before = db.counters();
    let log_before = db.log_stats();
    let txn_before = db.txn_stats();
    let cf_before = db
        .row_count(tables.call_forwarding)
        .expect("call_forwarding count") as i64;
    let buf_before = db.buffer_stats();
    let stats_before = engine.stats();
    let busy_before: u64 = stats_before.workers.iter().map(|w| w.busy_ns).sum();
    let executed_before: Vec<u64> = stats_before.workers.iter().map(|w| w.executed).collect();
    // Sampler: peak per-partition mailbox depth (queue build-up that
    // cumulative action counts cannot show) plus periodic executed
    // snapshots, so the end-of-run imbalance can be window-diffed.
    let stop_sampler = Arc::new(AtomicBool::new(false));
    let sampler = {
        let engine = engine.clone();
        let stop = stop_sampler.clone();
        std::thread::spawn(move || {
            let mut peaks = vec![0u64; run.workers];
            let mut history: Vec<Vec<u64>> = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let stats = engine.stats();
                for (p, w) in peaks.iter_mut().zip(&stats.workers) {
                    *p = (*p).max(w.queue_depth);
                }
                history.push(stats.workers.iter().map(|w| w.executed).collect());
                std::thread::sleep(Duration::from_millis(10));
            }
            (peaks, history)
        })
    };
    // The availability scenario's fault injection: a killer thread that
    // polls the commit counter and fires `WorkerMsg::Die` at partition
    // workers once the run is warm, so the dip and the recovery land
    // inside the sampled window. Commit-count triggers (not wall-clock)
    // keep the kill point proportional under `--quick`.
    let stop_killer = Arc::new(AtomicBool::new(false));
    let committed_base = engine.stats().committed;
    let killer = run.kill.map(|spec| {
        let engine = engine.clone();
        let stop = stop_killer.clone();
        let workers = run.workers;
        std::thread::spawn(move || {
            let mut fired = 0u32;
            while !stop.load(Ordering::Relaxed) && fired < spec.count {
                let done = engine.stats().committed - committed_base;
                if done >= spec.after_committed * (u64::from(fired) + 1) {
                    let victim = (workers / 2 + fired as usize) % workers;
                    engine.kill_worker(victim);
                    fired += 1;
                } else {
                    // Fine-grained poll: the commit counter races the
                    // clients, and a `--quick` run can drain in a few
                    // milliseconds — a coarse sleep would miss the run.
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
            fired
        })
    });
    let started = Instant::now();
    go.wait();
    let tally = join_tatp_clients(clients);
    let elapsed = started.elapsed();
    stop_killer.store(true, Ordering::Relaxed);
    let kills_fired = killer.map(|h| h.join().expect("killer thread"));
    // Let every fired kill finish recovering before sampling final stats
    // and auditing integrity: MTTR must cover the whole schedule, and the
    // consistency gate must see salvage aborts rolled back.
    if let Some(fired) = kills_fired {
        let deadline = Instant::now() + Duration::from_secs(10);
        while engine.stats().worker_restarts < u64::from(fired) {
            assert!(
                Instant::now() < deadline,
                "worker kills not recovered: {:?}",
                engine.stats()
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    stop_sampler.store(true, Ordering::Relaxed);
    let (queue_peaks, executed_history) = sampler.join().expect("sampler thread");
    stop_balancer.store(true, Ordering::Relaxed);
    let balancer_report = balancer.map(|h| h.join().expect("balancer thread"));

    let stats = engine.stats();
    let log_after = db.log_stats();
    let txn_after = db.txn_stats();
    let buf_after = db.buffer_stats();
    let mut extra = vec![
        ("missed", tally.missed as f64),
        ("deferrals", stats.deferrals as f64),
        ("actions", stats.actions as f64),
        ("secondary_parked", stats.secondary_parked as f64),
        (
            "log_group_commits",
            (log_after.group_commits - log_before.group_commits) as f64,
        ),
        (
            "wakeups",
            stats.workers.iter().map(|w| w.wakeups).sum::<u64>() as f64,
        ),
        (
            "outbox_msgs",
            stats.workers.iter().map(|w| w.outbox_msgs).sum::<u64>() as f64,
        ),
    ];
    // Per-partition action counts are the load-balancing signal the skew
    // sweep exists to plot, window-diffed from the quiet point so warmup
    // traffic doesn't blur them. The imbalance ratio folds in each
    // partition's peak queue depth: a partition that was saturated but
    // starved shows up in backlog before it shows up in completions.
    let executed: Vec<u64> = stats
        .workers
        .iter()
        .zip(&executed_before)
        .map(|(w, before)| w.executed.saturating_sub(*before))
        .collect();
    for (i, &n) in executed
        .iter()
        .enumerate()
        .take(PARTITION_ACTION_KEYS.len())
    {
        extra.push((PARTITION_ACTION_KEYS[i], n as f64));
    }
    let weighted: Vec<f64> = executed
        .iter()
        .zip(&queue_peaks)
        .map(|(&e, &q)| (e + q) as f64)
        .collect();
    let mean = weighted.iter().sum::<f64>() / weighted.len().max(1) as f64;
    if mean > 0.0 {
        let max = weighted.iter().copied().fold(0.0f64, f64::max);
        extra.push(("partition_imbalance", max / mean));
    }
    // Imbalance over the second half of the sampled window: the "did the
    // balancer converge" number — a run-wide ratio hides a correction
    // that lands midway through.
    if !executed_history.is_empty() {
        let mid = &executed_history[executed_history.len() / 2];
        let tail: Vec<f64> = stats
            .workers
            .iter()
            .zip(mid)
            .map(|(w, m)| w.executed.saturating_sub(*m) as f64)
            .collect();
        let mean = tail.iter().sum::<f64>() / tail.len().max(1) as f64;
        if mean > 0.0 {
            let max = tail.iter().copied().fold(0.0f64, f64::max);
            extra.push(("imbalance_end", max / mean));
        }
    }
    extra.push(("migrations", stats.migrations as f64));
    extra.push(("forwarded", stats.forwarded as f64));
    if let Some(b) = &balancer_report {
        let max_us = b.pauses.iter().map(|d| d.as_micros()).max().unwrap_or(0);
        let mean_us = if b.pauses.is_empty() {
            0.0
        } else {
            b.pauses.iter().map(|d| d.as_secs_f64()).sum::<f64>() / b.pauses.len() as f64 * 1e6
        };
        extra.push(("rebalance_pause_max_us", max_us as f64));
        extra.push(("rebalance_pause_mean_us", mean_us));
        extra.push(("balancer_straddler_aborts", b.aborted_straddlers as f64));
        extra.push(("balancer_last_imbalance", b.last_imbalance));
    }
    // Availability telemetry (the self-healing scenario): every DORA run
    // exports the supervision counters; a run with fault injection adds
    // MTTR and the throughput-dip shape mined from the 10ms samples.
    extra.push(("infra_aborts", tally.infra as f64));
    extra.push(("worker_kills", stats.chaos_kills as f64));
    extra.push(("worker_restarts", stats.worker_restarts as f64));
    extra.push(("orphan_aborts", stats.orphan_aborts as f64));
    if stats.worker_restarts > 0 {
        extra.push((
            "mttr_restart_us",
            stats.restart_pause_us as f64 / stats.worker_restarts as f64,
        ));
    }
    if run.kill.is_some() && executed_history.len() >= 2 {
        let totals: Vec<u64> = executed_history
            .iter()
            .map(|h| h.iter().sum::<u64>())
            .collect();
        let deltas: Vec<f64> = totals
            .windows(2)
            .map(|w| w[1].saturating_sub(w[0]) as f64)
            .collect();
        // Trim the flat head and tail (before `go` released / after the
        // clients drained) so min() finds a genuine mid-run stall, not
        // the idle edges of the sampling window.
        let live: &[f64] = match (
            deltas.iter().position(|&d| d > 0.0),
            deltas.iter().rposition(|&d| d > 0.0),
        ) {
            (Some(a), Some(b)) if b > a => &deltas[a..=b],
            _ => &[],
        };
        if !live.is_empty() {
            let mean = live.iter().sum::<f64>() / live.len() as f64;
            if mean > 0.0 {
                let floor = live.iter().copied().fold(f64::INFINITY, f64::min);
                extra.push(("dip_depth", 1.0 - floor / mean));
                extra.push(("dip_floor_tps", floor / 0.010));
            }
        }
    }
    // Background-writeback telemetry rides `extra`: the five gated
    // buffer counters have report fields, but the writer split (evictor
    // emergency writes vs. cleaner writebacks) is what the buffer_pool
    // sweep plots to show eviction mostly finds pre-cleaned victims.
    extra.push((
        "buffer_writebacks",
        (buf_after.writebacks - buf_before.writebacks) as f64,
    ));
    extra.push((
        "buffer_eviction_writes",
        (buf_after.eviction_writes - buf_before.eviction_writes) as f64,
    ));
    let crit = db.lock_stats().critical_sections - crit_before;
    let validated = db.counters();
    check_tatp_consistency(&db, tables, cf_before, &tally, "DORA");
    Scenario {
        engine: "dora",
        scenario: run.mix.scenario_label(),
        workers: run.workers,
        clients: run.clients,
        committed: tally.committed,
        aborted: tally.aborted,
        secondary_reads: validated.validated_reads - validated_before.validated_reads,
        secondary_retries: validated.validated_retries - validated_before.validated_retries,
        log_waits: log_after.waits() - log_before.waits(),
        txn_acquisitions: txn_after.stripe_acquisitions - txn_before.stripe_acquisitions,
        queue_peak: queue_peaks.iter().copied().max().unwrap_or(0),
        busy_ns: stats
            .workers
            .iter()
            .map(|w| w.busy_ns)
            .sum::<u64>()
            .saturating_sub(busy_before),
        buffer_hits: buf_after.hits - buf_before.hits,
        buffer_misses: buf_after.misses - buf_before.misses,
        buffer_evictions: buf_after.evictions - buf_before.evictions,
        buffer_table_waits: buf_after.table_waits - buf_before.table_waits,
        buffer_latch_waits: buf_after.latch_waits - buf_before.latch_waits,
        elapsed_secs: elapsed.as_secs_f64(),
        critical_sections: crit,
        extra,
    }
}

fn run_tatp_conv(wl: &TatpWorkload, run: TatpRun) -> Scenario {
    let (db, _disk) = build_db(run.storage);
    let tables = wl.load(&db);
    let engine = Arc::new(ConvEngine::new(
        db.clone(),
        ConvEngineConfig {
            workers: run.workers,
            max_retries: run.client_retries,
        },
    ));
    let ready = Arc::new(Barrier::new(run.clients + 1));
    let go = Arc::new(Barrier::new(run.clients + 1));

    let mut clients = Vec::new();
    for c in 0..run.clients {
        let engine = engine.clone();
        let ready = ready.clone();
        let go = go.clone();
        let subscribers = wl.subscribers;
        clients.push(std::thread::spawn(move || {
            let mut mix = run.mix.build(subscribers, c as u64 + 1, run.workers);
            // The conventional engine retries transient conflicts
            // internally (`max_retries`); a spec miss is a non-retryable
            // abort and surfaces here on the first attempt.
            let operation = |mix: &mut TatpMix, tally: Option<&mut TatpTally>| {
                let op = mix.next_op();
                let outcome = match engine.execute(request_of(tables, &op, None)) {
                    o if o.is_committed() => Ok(()),
                    dora_engine_conv::TxnOutcome::Aborted { reason } => Err(reason.contains(MISS)),
                    _ => unreachable!(),
                };
                if let Some(tally) = tally {
                    match outcome {
                        Ok(()) => {
                            tally.committed += 1;
                            tally.cf_delta += op.cf_delta();
                        }
                        Err(missed) => {
                            tally.aborted += 1;
                            tally.missed += u64::from(missed);
                        }
                    }
                }
            };
            for _ in 0..run.warmup() {
                operation(&mut mix, None);
            }
            ready.wait();
            go.wait();
            let mut tally = TatpTally::default();
            for _ in 0..run.per_client {
                operation(&mut mix, Some(&mut tally));
            }
            tally
        }));
    }
    ready.wait();
    let crit_before = db.lock_stats().critical_sections;
    let validated_before = db.counters();
    let log_before = db.log_stats();
    let txn_before = db.txn_stats();
    let cf_before = db
        .row_count(tables.call_forwarding)
        .expect("call_forwarding count") as i64;
    let buf_before = db.buffer_stats();
    let started = Instant::now();
    go.wait();
    let tally = join_tatp_clients(clients);
    let elapsed = started.elapsed();

    let stats = engine.stats();
    let log_after = db.log_stats();
    let txn_after = db.txn_stats();
    let buf_after = db.buffer_stats();
    let extra = vec![
        ("missed", tally.missed as f64),
        ("retries", stats.retries as f64),
        (
            "log_group_commits",
            (log_after.group_commits - log_before.group_commits) as f64,
        ),
        (
            "buffer_writebacks",
            (buf_after.writebacks - buf_before.writebacks) as f64,
        ),
        (
            "buffer_eviction_writes",
            (buf_after.eviction_writes - buf_before.eviction_writes) as f64,
        ),
    ];
    let crit = db.lock_stats().critical_sections - crit_before;
    let validated = db.counters();
    check_tatp_consistency(&db, tables, cf_before, &tally, "conventional");
    Scenario {
        engine: "conventional",
        scenario: run.mix.scenario_label(),
        workers: run.workers,
        clients: run.clients,
        committed: tally.committed,
        aborted: tally.aborted,
        secondary_reads: validated.validated_reads - validated_before.validated_reads,
        secondary_retries: validated.validated_retries - validated_before.validated_retries,
        log_waits: log_after.waits() - log_before.waits(),
        txn_acquisitions: txn_after.stripe_acquisitions - txn_before.stripe_acquisitions,
        queue_peak: 0,
        busy_ns: 0,
        buffer_hits: buf_after.hits - buf_before.hits,
        buffer_misses: buf_after.misses - buf_before.misses,
        buffer_evictions: buf_after.evictions - buf_before.evictions,
        buffer_table_waits: buf_after.table_waits - buf_before.table_waits,
        buffer_latch_waits: buf_after.latch_waits - buf_before.latch_waits,
        elapsed_secs: elapsed.as_secs_f64(),
        critical_sections: crit,
        extra,
    }
}

fn join_tatp_clients(clients: Vec<std::thread::JoinHandle<TatpTally>>) -> TatpTally {
    clients.into_iter().fold(TatpTally::default(), |acc, h| {
        let t = h.join().expect("bench client panicked");
        TatpTally {
            committed: acc.committed + t.committed,
            aborted: acc.aborted + t.aborted,
            missed: acc.missed + t.missed,
            infra: acc.infra + t.infra,
            cf_delta: acc.cf_delta + t.cf_delta,
        }
    })
}

/// Post-run correctness gate shared by both TATP drivers: referential
/// integrity and call-forwarding conservation against the committed
/// insert/delete ledger.
fn check_tatp_consistency(
    db: &Database,
    tables: TatpTables,
    cf_before: i64,
    tally: &TatpTally,
    engine: &str,
) {
    TatpWorkload::check_integrity(db, tables)
        .unwrap_or_else(|e| panic!("{engine} broke TATP integrity — refusing to report: {e}"));
    let cf_after = db
        .row_count(tables.call_forwarding)
        .expect("call_forwarding count") as i64;
    assert_eq!(
        cf_after,
        cf_before + tally.cf_delta,
        "{engine} call-forwarding count diverged from the committed ledger — \
         refusing to report a corrupt run"
    );
}

/// Parses the common bench flags: `--quick`, `--compare <path>`,
/// `--out <path>`, `--accounts <n>`, `--subscribers <n>`, `--total <n>`,
/// `--repeats <n>`, `--audit-pct <n>`.
#[derive(Debug, Default, Clone)]
pub struct BenchArgs {
    /// CI smoke mode: tiny configuration, marked `"quick"` in the JSON.
    pub quick: bool,
    /// Path of a previous report to embed as `"baseline"`.
    pub compare: Option<String>,
    /// Override for the JSON output path.
    pub out: Option<String>,
    /// Override for the account count (smaller = hotter contention).
    pub accounts: Option<i64>,
    /// Override for the TATP subscriber count (must divide evenly by the
    /// worker count so the uniform routing blocks align).
    pub subscribers: Option<i64>,
    /// Override for the per-scenario transaction total.
    pub total: Option<usize>,
    /// Override for the best-of-N repeat count (default 3 full, 1 quick).
    /// Committed baselines use `--repeats 6` to damp scheduler noise.
    pub repeats: Option<usize>,
    /// Percentage of operations run as secondary balance audits (default
    /// 0: the transfer-only mix the committed baselines were recorded
    /// with).
    pub audit_pct: Option<u64>,
}

impl BenchArgs {
    /// Parses from an iterator of raw arguments (program name excluded).
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut parsed = BenchArgs::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                // `cargo bench` appends `--bench` to the binary's args.
                "--bench" => {}
                "--quick" => parsed.quick = true,
                "--compare" => parsed.compare = args.next(),
                "--out" => parsed.out = args.next(),
                "--accounts" => parsed.accounts = args.next().and_then(|v| v.parse().ok()),
                "--subscribers" => parsed.subscribers = args.next().and_then(|v| v.parse().ok()),
                "--total" => parsed.total = args.next().and_then(|v| v.parse().ok()),
                "--repeats" => parsed.repeats = args.next().and_then(|v| v.parse().ok()),
                "--audit-pct" => parsed.audit_pct = args.next().and_then(|v| v.parse().ok()),
                other => eprintln!("ignoring unknown bench argument: {other}"),
            }
        }
        parsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_args() {
        let a = BenchArgs::parse(
            [
                "--quick",
                "--compare",
                "x.json",
                "--out",
                "y.json",
                "--repeats",
                "6",
            ]
            .into_iter()
            .map(String::from),
        );
        assert!(a.quick);
        assert_eq!(a.compare.as_deref(), Some("x.json"));
        assert_eq!(a.out.as_deref(), Some("y.json"));
        assert_eq!(a.repeats, Some(6));
        let b = BenchArgs::parse(std::iter::empty());
        assert!(!b.quick && b.compare.is_none() && b.out.is_none() && b.repeats.is_none());
    }

    #[test]
    fn tiny_transfer_run_reports_sane_numbers_on_both_engines() {
        let wl = TransferWorkload {
            accounts: 32,
            initial_balance: 100,
        };
        for engine in [EngineKind::Dora, EngineKind::Conventional] {
            let s = run_transfer(
                &wl,
                TransferRun {
                    engine,
                    workers: 2,
                    clients: 2,
                    per_client: 10,
                    locality_pct: 50,
                    audit_pct: 0,
                    client_retries: 10,
                },
            );
            assert_eq!(s.committed + s.aborted, 20, "{engine:?}");
            assert!(s.elapsed_secs > 0.0);
            assert!(s.throughput_tps() > 0.0);
            assert_eq!(s.secondary_reads, 0, "no audits in a 0% mix");
            // Every transfer writes twice: stripe acquisitions (begin
            // clear + undo pushes + commit extraction) must register,
            // while contended log waits stay group-commit bounded.
            assert!(s.txn_acquisitions > 0, "{engine:?}: stripes uncounted");
            assert!(
                s.log_waits <= 2 * (s.committed + s.aborted),
                "{engine:?}: log waits {} exceed the contention bound",
                s.log_waits
            );
        }
    }

    #[test]
    fn tiny_tatp_runs_report_sane_numbers_for_both_mixes_and_engines() {
        let wl = TatpWorkload {
            subscribers: 64,
            seed: 7,
        };
        for mix in [
            TatpMixKind::Skewed { theta: 0.8 },
            TatpMixKind::Handoff { remote_pct: 50 },
        ] {
            for engine in [EngineKind::Dora, EngineKind::Conventional] {
                let s = run_tatp(
                    &wl,
                    TatpRun {
                        engine,
                        workers: 2,
                        clients: 2,
                        per_client: 20,
                        mix,
                        balancer: false,
                        client_retries: 10,
                        storage: StorageKind::InMemory,
                        kill: None,
                    },
                );
                assert_eq!(s.committed + s.aborted, 40, "{engine:?} {mix:?}");
                assert!(s.committed > 0, "{engine:?} {mix:?}");
                assert_eq!(s.scenario, mix.scenario_label());
                assert!(s.elapsed_secs > 0.0);
                if let TatpMixKind::Skewed { .. } = mix {
                    // GetNewDestination / UpdateLocation scans ride the
                    // validated read path on both engines.
                    assert!(s.secondary_reads > 0, "{engine:?} {mix:?}");
                }
            }
        }
    }

    #[test]
    fn tatp_scenario_labels_are_stable_keys() {
        assert_eq!(
            TatpMixKind::Skewed { theta: 0.0 }.scenario_label(),
            "zipf=0.00"
        );
        assert_eq!(
            TatpMixKind::Skewed { theta: 1.2 }.scenario_label(),
            "zipf=1.20"
        );
        assert_eq!(
            TatpMixKind::Handoff { remote_pct: 75 }.scenario_label(),
            "remote=75"
        );
        assert_eq!(
            TatpMixKind::SkewShift {
                theta: 1.2,
                shift_after: 5_000
            }
            .scenario_label(),
            "zipf=1.20+shift",
            "the shift point is run-sized, not part of the scenario key"
        );
    }

    #[test]
    fn balancer_run_with_skew_shift_reports_v5_fields_and_keeps_integrity() {
        let wl = TatpWorkload {
            subscribers: 64,
            seed: 7,
        };
        let s = run_tatp(
            &wl,
            TatpRun {
                engine: EngineKind::Dora,
                workers: 2,
                clients: 2,
                per_client: 50,
                mix: TatpMixKind::SkewShift {
                    theta: 1.2,
                    shift_after: 30,
                },
                balancer: true,
                client_retries: 10,
                storage: StorageKind::InMemory,
                kill: None,
            },
        );
        assert_eq!(s.committed + s.aborted, 100);
        assert!(s.committed > 0);
        assert_eq!(s.scenario, "zipf=1.20+shift");
        assert!(s.busy_ns > 0, "workers must report busy time");
        for key in ["migrations", "forwarded", "rebalance_pause_max_us"] {
            assert!(
                s.extra.iter().any(|&(k, _)| k == key),
                "balancer run must export {key}"
            );
        }
    }

    #[test]
    fn availability_run_kills_a_worker_and_reports_recovery_metrics() {
        // The self-healing scenario end to end, tiny: a mid-run worker
        // kill must be detected and recovered, the run must still pass
        // the integrity gate (checked inside run_tatp), and the report
        // must carry the supervision telemetry the availability bench
        // plots.
        let wl = TatpWorkload {
            subscribers: 64,
            seed: 7,
        };
        let s = run_tatp(
            &wl,
            TatpRun {
                engine: EngineKind::Dora,
                workers: 2,
                clients: 2,
                per_client: 60,
                mix: TatpMixKind::Skewed { theta: 0.8 },
                balancer: false,
                client_retries: 10,
                storage: StorageKind::InMemory,
                kill: Some(KillSpec {
                    count: 1,
                    after_committed: 20,
                }),
            },
        );
        assert_eq!(s.committed + s.aborted, 120);
        assert!(s.committed > 0, "engine must keep committing past a kill");
        let get = |key: &str| {
            s.extra
                .iter()
                .find(|&&(k, _)| k == key)
                .map(|&(_, v)| v)
                .unwrap_or_else(|| panic!("availability run must export {key}"))
        };
        assert_eq!(get("worker_kills"), 1.0);
        assert_eq!(get("worker_restarts"), 1.0);
        assert!(get("mttr_restart_us") > 0.0);
        // The dip metrics exist whenever the sampled window is non-empty;
        // a tiny run can finish between samples, so only presence of the
        // counters (not the shape) is asserted here — the real bench runs
        // long enough for the shape to mean something.
        assert!(get("infra_aborts") >= 0.0);
        assert!(get("orphan_aborts") >= 0.0);
    }

    #[test]
    fn tiny_tatp_disk_run_exercises_miss_and_eviction_path() {
        // A pool far smaller than the TATP working set over a file-backed
        // store: the run must survive the miss/eviction/writeback path on
        // both engines, keep integrity (checked inside run_tatp), and
        // report the v6 buffer counters it exists to measure.
        let wl = TatpWorkload {
            subscribers: 256,
            seed: 7,
        };
        for engine in [EngineKind::Dora, EngineKind::Conventional] {
            let s = run_tatp(
                &wl,
                TatpRun {
                    engine,
                    workers: 2,
                    clients: 2,
                    per_client: 25,
                    mix: TatpMixKind::Skewed { theta: 0.0 },
                    balancer: false,
                    client_retries: 10,
                    storage: StorageKind::Disk { frames: 8 },
                    kill: None,
                },
            );
            assert_eq!(s.committed + s.aborted, 50, "{engine:?}");
            assert!(s.committed > 0, "{engine:?}");
            assert!(
                s.buffer_misses > 0,
                "{engine:?}: a larger-than-pool run must take misses"
            );
            assert!(
                s.buffer_evictions > 0,
                "{engine:?}: a full pool must evict to admit misses"
            );
            assert!(
                s.buffer_hits > 0,
                "{engine:?}: uniform TATP still re-touches resident pages"
            );
        }
    }

    #[test]
    fn audit_mix_exercises_validated_reads_on_both_engines() {
        let wl = TransferWorkload {
            accounts: 32,
            initial_balance: 100,
        };
        for engine in [EngineKind::Dora, EngineKind::Conventional] {
            let s = run_transfer(
                &wl,
                TransferRun {
                    engine,
                    workers: 2,
                    clients: 2,
                    per_client: 15,
                    locality_pct: 50,
                    audit_pct: 40,
                    client_retries: 10,
                },
            );
            assert_eq!(s.committed + s.aborted, 30, "{engine:?}");
            assert!(
                s.secondary_reads > 0,
                "{engine:?}: audits must ride the validated read path"
            );
        }
    }
}
