//! # dora-bench
//!
//! The benchmark harness reproducing the paper's experiments by driving
//! the two engines through identical workloads and comparing their
//! scaling behavior.
//!
//! **Planned role.** The bench targets declared in this crate's manifest
//! (all `harness = false` stubs today) map to the paper's figures:
//!
//! * `throughput_vs_cores` / `throughput_vs_clients` — the headline
//!   scaling curves: committed transactions per second as hardware
//!   contexts and offered load grow.
//! * `critical_sections` — counts centralized lock-manager critical
//!   sections per transaction (conventional) against DORA's zero.
//! * `access_patterns` — the Figure-1 visualization: which worker touches
//!   which records over time, quantified with
//!   [`trace::orderliness`](dora_storage::trace::orderliness) and
//!   [`trace::workers_per_key_bucket`](dora_storage::trace::workers_per_key_bucket).
//! * `oversubscription` / `response_time_idle` — behavior with more
//!   clients than contexts, and latency at low utilization.
//! * `load_balancing_skew` — skewed key popularity with and without the
//!   designer's run-time re-partitioning.
//! * `alignment_advisor` / `physical_design` — quality of the designer's
//!   routing choices.
//! * `ablations` — DORA with pieces disabled (e.g. forced secondary
//!   actions, single partition) to attribute the win.
//! * `flowgen` — cost of flow-graph construction and dispatch itself.
//!
//! Each wired bench prints a small self-describing table and writes a
//! machine-readable `BENCH_<name>.json` at the workspace root (no external
//! benchmarking framework, keeping the crate dependency-free for offline
//! builds). The JSON schema — and the `--compare` mechanism that embeds a
//! committed baseline report for before/after tracking — is documented in
//! [`report`]. `throughput_vs_cores`, `throughput_vs_clients` and
//! `critical_sections` are wired to the [`dora_workloads::transfer`]
//! workload today; the remaining targets are still stubs.
//!
//! Common bench flags (wired targets): `--quick` (CI smoke: tiny
//! configuration), `--compare <path>` (embed a previous report as
//! `"baseline"`), `--out <path>` (override the JSON destination),
//! `--accounts <n>`, `--total <n>`.
//!
//! The crate also ships the `compare` binary (`src/bin/compare.rs`): CI's
//! regression gate, which diffs a fresh report against a committed
//! baseline and exits non-zero past a throughput (or DORA:conventional
//! ratio) threshold — see its module docs for usage.

#![warn(missing_docs)]

pub mod driver;
pub mod report;

pub use dora_core;
pub use dora_designer;
pub use dora_engine_conv;
pub use dora_storage;
pub use dora_workloads;
