//! placeholder
