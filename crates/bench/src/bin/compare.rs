//! `dora-bench` report comparator: the CI regression gate.
//!
//! Compares a freshly produced `BENCH_*.json` against a committed
//! baseline report and **exits non-zero** when throughput regressed by
//! more than the threshold, so a PR that slows the engine down fails its
//! pipeline instead of silently shipping.
//!
//! ```text
//! cargo run -p dora-bench --bin compare -- \
//!     --candidate BENCH_throughput_vs_cores.json \
//!     --baseline crates/bench/baselines/ci_quick_throughput_vs_cores.json \
//!     [--threshold-pct 10] [--metric ratio|tps] [--strict-coverage]
//! ```
//!
//! Metrics:
//!
//! * `ratio` (default) — for every `(scenario, workers, clients)`
//!   configuration present in both reports, compare the **DORA :
//!   conventional throughput ratio**. The ratio divides out the host's
//!   absolute speed, so a baseline recorded on one machine still gates
//!   runs on another (CI runners differ; the two engines ran on the same
//!   box in the same process, so their quotient is the portable signal).
//! * `tps` — compare absolute committed-per-second per
//!   `(engine, scenario, workers, clients)` row. Only meaningful when
//!   candidate and baseline come from the same machine (e.g. the
//!   committed full-run baselines under `crates/bench/baselines/`).
//!
//! The `scenario` key (schema v4) labels rows of benches that sweep a
//! workload parameter (`remote=N`, `zipf=T`); single-scenario benches and
//! pre-v4 documents read as `""`, so old baselines keep gating.
//!
//! A configuration present in only one report cannot be gated — whether
//! the candidate grew a config the baseline lacks or the bench grid
//! shrank so a baseline config is no longer measured. Each one prints a
//! `WARNING: … SKIPPED` line so coverage loss from a drifted config
//! grid is visible in CI logs, and `--strict-coverage` turns any skip
//! into a failure (CI passes it: the quick grids of candidate and
//! committed baseline are meant to be identical). One deliberate
//! exception: a **scenario key that the other report lacks entirely** is
//! warn-skipped but never fails `--strict-coverage`. The sweeping
//! benches name scenarios after swept values, and `--quick` sweeps fewer
//! values than a full run — comparing a quick candidate against a full
//! baseline (or vice versa) is expected scenario naming, not grid drift.
//! `(workers, clients)` drift *within* a scenario both reports know
//! stays a strict-coverage failure.
//!
//! Relative paths are tried against the current directory first, then the
//! workspace root (cargo sets a package directory as cwd for `run`).

use std::process::ExitCode;

use dora_bench::report::workspace_root;

/// One measurement row pulled out of a report.
#[derive(Debug, Clone, PartialEq)]
struct Row {
    engine: String,
    /// Scenario key (schema v4). Pre-v4 documents and single-scenario
    /// benches parse as `""`.
    scenario: String,
    workers: u64,
    clients: u64,
    tps: f64,
    /// Transactions committed in the measured window (denominator of the
    /// per-transaction lock-free-counter rates).
    committed: u64,
    /// Validated (versioned) record reads of the secondary audit mix.
    /// Absent in schema-v1 reports — parsed as 0, which keeps committed
    /// v1 baselines gating (back-compat read).
    secondary_reads: u64,
    /// Validated-read attempts retried or rejected. Absent in v1 → 0.
    secondary_retries: u64,
    /// Contended WAL waits (schema v3; absent in v1/v2 → 0).
    log_waits: u64,
    /// Transaction-table stripe acquisitions (schema v3; absent → 0).
    txn_table_acquisitions: u64,
    /// Peak sampled mailbox depth across partitions (schema v5;
    /// absent in pre-v5 documents → 0). Informational, not gated.
    queue_peak: u64,
    /// Summed worker busy nanoseconds (schema v5; absent → 0).
    busy_ns: u64,
    /// Buffer-pool page-table hits in the window (schema v6; absent → 0).
    buffer_hits: u64,
    /// Buffer-pool misses — page loads from the store (v6; absent → 0).
    buffer_misses: u64,
    /// Frames evicted to admit misses (v6; absent → 0).
    buffer_evictions: u64,
    /// Contended page-table shard acquisitions (v6; absent → 0). Gated:
    /// the decentralized pool's whole point is that this stays ~0/txn.
    buffer_table_waits: u64,
    /// Contended frame-latch acquisitions (v6; absent → 0). Gated.
    buffer_latch_waits: u64,
}

/// Extracts the top-level `runs` rows from a `BENCH_*.json` document.
///
/// The report format is this workspace's own hand-rolled schema
/// (`dora_bench::report`), so a full JSON parser is not needed: rows are
/// flat objects whose fields sit on their own lines. Everything from the
/// top-level `"baseline"` key on is ignored — an embedded baseline
/// carries its own `runs`, which must not be mistaken for the report's.
fn parse_rows(text: &str) -> Vec<Row> {
    let own = match text.find("\n  \"baseline\":") {
        Some(pos) => &text[..pos],
        None => text,
    };
    let mut rows = Vec::new();
    let mut current: Option<Row> = None;
    for line in own.lines() {
        let line = line.trim().trim_end_matches(',');
        if let Some(value) = line.strip_prefix("\"engine\": ") {
            current = Some(Row {
                engine: value.trim_matches('"').to_string(),
                scenario: String::new(),
                workers: 0,
                clients: 0,
                tps: 0.0,
                committed: 0,
                secondary_reads: 0,
                secondary_retries: 0,
                log_waits: 0,
                txn_table_acquisitions: 0,
                queue_peak: 0,
                busy_ns: 0,
                buffer_hits: 0,
                buffer_misses: 0,
                buffer_evictions: 0,
                buffer_table_waits: 0,
                buffer_latch_waits: 0,
            });
        } else if let Some(row) = current.as_mut() {
            if let Some(value) = line.strip_prefix("\"scenario\": ") {
                row.scenario = value.trim_matches('"').to_string();
            } else if let Some(value) = line.strip_prefix("\"workers\": ") {
                row.workers = value.parse().unwrap_or(0);
            } else if let Some(value) = line.strip_prefix("\"clients\": ") {
                row.clients = value.parse().unwrap_or(0);
            } else if let Some(value) = line.strip_prefix("\"committed\": ") {
                row.committed = value.parse().unwrap_or(0);
            } else if let Some(value) = line.strip_prefix("\"secondary_reads\": ") {
                row.secondary_reads = value.parse().unwrap_or(0);
            } else if let Some(value) = line.strip_prefix("\"secondary_retries\": ") {
                row.secondary_retries = value.parse().unwrap_or(0);
            } else if let Some(value) = line.strip_prefix("\"log_waits\": ") {
                row.log_waits = value.parse().unwrap_or(0);
            } else if let Some(value) = line.strip_prefix("\"txn_table_acquisitions\": ") {
                row.txn_table_acquisitions = value.parse().unwrap_or(0);
            } else if let Some(value) = line.strip_prefix("\"queue_peak\": ") {
                row.queue_peak = value.parse().unwrap_or(0);
            } else if let Some(value) = line.strip_prefix("\"busy_ns\": ") {
                row.busy_ns = value.parse().unwrap_or(0);
            } else if let Some(value) = line.strip_prefix("\"buffer_hits\": ") {
                row.buffer_hits = value.parse().unwrap_or(0);
            } else if let Some(value) = line.strip_prefix("\"buffer_misses\": ") {
                row.buffer_misses = value.parse().unwrap_or(0);
            } else if let Some(value) = line.strip_prefix("\"buffer_evictions\": ") {
                row.buffer_evictions = value.parse().unwrap_or(0);
            } else if let Some(value) = line.strip_prefix("\"buffer_table_waits\": ") {
                row.buffer_table_waits = value.parse().unwrap_or(0);
            } else if let Some(value) = line.strip_prefix("\"buffer_latch_waits\": ") {
                row.buffer_latch_waits = value.parse().unwrap_or(0);
            } else if let Some(value) = line.strip_prefix("\"throughput_tps\": ") {
                row.tps = value.parse().unwrap_or(0.0);
                rows.push(current.take().expect("row in progress"));
            }
        }
    }
    rows
}

/// The report's own (top-level, not embedded-baseline) schema version;
/// 0 when the line is missing entirely.
fn parse_schema_version(text: &str) -> u64 {
    let own = match text.find("\n  \"baseline\":") {
        Some(pos) => &text[..pos],
        None => text,
    };
    own.lines()
        .find_map(|l| {
            l.trim()
                .trim_end_matches(',')
                .strip_prefix("\"schema_version\": ")
        })
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn read_report(path: &str) -> String {
    std::fs::read_to_string(path)
        .or_else(|_| std::fs::read_to_string(workspace_root().join(path)))
        .unwrap_or_else(|e| panic!("read report {path}: {e}"))
}

fn find_tps(rows: &[Row], engine: &str, scenario: &str, workers: u64, clients: u64) -> Option<f64> {
    rows.iter()
        .find(|r| {
            r.engine == engine
                && r.scenario == scenario
                && r.workers == workers
                && r.clients == clients
        })
        .map(|r| r.tps)
}

/// Outcome of one comparison pass.
///
/// `skipped` counts configurations that could not be gated — candidate
/// rows with no baseline counterpart, baseline rows the candidate no
/// longer produces (a shrunken bench grid), or degenerate
/// zero-throughput rows: grid drift in either direction would otherwise
/// silently shrink coverage. `scenario_skipped` counts configurations
/// skipped only because their scenario key is absent from the other
/// report *entirely* — quick runs sweep fewer scenario values than full
/// runs, so this is expected naming, warned but exempt from
/// `--strict-coverage`.
#[derive(Debug, Default, PartialEq)]
struct Outcome {
    compared: usize,
    skipped: usize,
    scenario_skipped: usize,
    regressed: bool,
}

impl Outcome {
    /// Records one uncomparable configuration: a scenario key the other
    /// report lacks entirely is the advisory bucket, anything else is
    /// real (strict-gated) grid drift.
    fn skip(&mut self, scenario_unknown: bool) {
        if scenario_unknown {
            self.scenario_skipped += 1;
        } else {
            self.skipped += 1;
        }
    }
}

/// Sorted, deduplicated `(scenario, workers, clients)` configurations.
fn configs_of(rows: &[Row]) -> Vec<(&str, u64, u64)> {
    rows.iter()
        .map(|r| (r.scenario.as_str(), r.workers, r.clients))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect()
}

/// The distinct scenario keys a report measured.
fn scenario_keys(rows: &[Row]) -> std::collections::BTreeSet<&str> {
    rows.iter().map(|r| r.scenario.as_str()).collect()
}

/// Human-readable configuration label (omits an empty scenario key).
fn cfg_label(scenario: &str, workers: u64, clients: u64) -> String {
    if scenario.is_empty() {
        format!("workers={workers} clients={clients}")
    } else {
        format!("scenario={scenario} workers={workers} clients={clients}")
    }
}

/// Compares per-configuration DORA:conventional ratios.
fn compare_ratio(candidate: &[Row], baseline: &[Row], threshold_pct: f64) -> Outcome {
    let mut out = Outcome::default();
    let configs = configs_of(candidate);
    let cand_scenarios = scenario_keys(candidate);
    let base_scenarios = scenario_keys(baseline);
    // Baseline configurations the candidate no longer measures lose
    // their gate coverage just as silently as the reverse drift.
    for &(scenario, workers, clients) in
        configs_of(baseline).iter().filter(|c| !configs.contains(c))
    {
        let unknown = !cand_scenarios.contains(scenario);
        out.skip(unknown);
        eprintln!(
            "WARNING: {}: baseline {} missing from candidate — SKIPPED, not gated",
            cfg_label(scenario, workers, clients),
            if unknown {
                "scenario key (quick vs full sweep naming?)"
            } else {
                "configuration"
            }
        );
    }
    for (scenario, workers, clients) in configs {
        let (Some(cand_dora), Some(cand_conv), Some(base_dora), Some(base_conv)) = (
            find_tps(candidate, "dora", scenario, workers, clients),
            find_tps(candidate, "conventional", scenario, workers, clients),
            find_tps(baseline, "dora", scenario, workers, clients),
            find_tps(baseline, "conventional", scenario, workers, clients),
        ) else {
            let unknown = !base_scenarios.contains(scenario);
            out.skip(unknown);
            eprintln!(
                "WARNING: {}: no baseline counterpart ({}) — SKIPPED, not gated",
                cfg_label(scenario, workers, clients),
                if unknown {
                    "scenario key unknown to baseline — quick vs full sweep naming?"
                } else {
                    "missing engine row or config"
                }
            );
            continue;
        };
        if cand_conv <= 0.0 || base_conv <= 0.0 {
            out.skipped += 1;
            eprintln!(
                "WARNING: {}: zero conventional throughput — SKIPPED, not gated",
                cfg_label(scenario, workers, clients)
            );
            continue;
        }
        out.compared += 1;
        let cand_ratio = cand_dora / cand_conv;
        let base_ratio = base_dora / base_conv;
        let floor = base_ratio * (1.0 - threshold_pct / 100.0);
        let verdict = if cand_ratio < floor {
            out.regressed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{}: dora/conv ratio {cand_ratio:.3} vs baseline {base_ratio:.3} \
             (floor {floor:.3}) — {verdict}",
            cfg_label(scenario, workers, clients)
        );
    }
    out
}

/// Compares absolute throughput per `(engine, scenario, workers,
/// clients)` row.
fn compare_tps(candidate: &[Row], baseline: &[Row], threshold_pct: f64) -> Outcome {
    let mut out = Outcome::default();
    let cand_scenarios = scenario_keys(candidate);
    let base_scenarios = scenario_keys(baseline);
    for base in baseline {
        if find_tps(
            candidate,
            &base.engine,
            &base.scenario,
            base.workers,
            base.clients,
        )
        .is_none()
        {
            let unknown = !cand_scenarios.contains(base.scenario.as_str());
            out.skip(unknown);
            eprintln!(
                "WARNING: {} {}: baseline {} missing from candidate — SKIPPED, not gated",
                base.engine,
                cfg_label(&base.scenario, base.workers, base.clients),
                if unknown {
                    "scenario key (quick vs full sweep naming?)"
                } else {
                    "row"
                }
            );
        }
    }
    for row in candidate {
        let Some(base) = find_tps(
            baseline,
            &row.engine,
            &row.scenario,
            row.workers,
            row.clients,
        ) else {
            let unknown = !base_scenarios.contains(row.scenario.as_str());
            out.skip(unknown);
            eprintln!(
                "WARNING: {} {}: no baseline row{} — SKIPPED, not gated",
                row.engine,
                cfg_label(&row.scenario, row.workers, row.clients),
                if unknown {
                    " (scenario key unknown to baseline — quick vs full sweep naming?)"
                } else {
                    ""
                }
            );
            continue;
        };
        if base <= 0.0 {
            out.skipped += 1;
            eprintln!(
                "WARNING: {} {}: zero baseline throughput — SKIPPED, not gated",
                row.engine,
                cfg_label(&row.scenario, row.workers, row.clients)
            );
            continue;
        }
        out.compared += 1;
        let floor = base * (1.0 - threshold_pct / 100.0);
        let verdict = if row.tps < floor {
            out.regressed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{} {}: {:.1} tps vs baseline {:.1} (floor {:.1}) — {verdict}",
            row.engine,
            cfg_label(&row.scenario, row.workers, row.clients),
            row.tps,
            base,
            floor
        );
    }
    out
}

/// Load-balance telemetry (schema v5): prints each row's peak sampled
/// mailbox depth and summed worker busy time so queue build-up that the
/// throughput gate cannot see stays visible in CI logs. Informational
/// only — the skew bench itself demonstrates repartitioner behaviour;
/// rows without the fields (pre-v5 reports, conventional engine) are
/// silent. Returns the number of rows noted.
fn note_load_balance(rows: &[Row]) -> usize {
    let mut noted = 0;
    for row in rows {
        if row.queue_peak == 0 && row.busy_ns == 0 {
            continue;
        }
        noted += 1;
        println!(
            "{} {}: queue_peak {} busy {:.3}s",
            row.engine,
            cfg_label(&row.scenario, row.workers, row.clients),
            row.queue_peak,
            row.busy_ns as f64 / 1e9
        );
    }
    noted
}

/// Secondary-read health check: the validated-read/park protocol is meant
/// to be cheap — a retry rate above 1% of the candidate's validated reads
/// means secondary readers are thrashing against writers (or the retry
/// budget is mis-tuned). A warning, not a gate: legitimate write-hot mixes
/// can exceed it, but CI logs must make that visible per configuration.
fn warn_secondary_retry_rate(rows: &[Row]) -> usize {
    let mut warned = 0;
    for row in rows {
        if row.secondary_reads == 0 {
            continue;
        }
        let rate = row.secondary_retries as f64 / row.secondary_reads as f64;
        if rate > 0.01 {
            warned += 1;
            eprintln!(
                "WARNING: {} {}: secondary retry rate {:.2}% \
                 ({} retries / {} validated reads) exceeds 1%",
                row.engine,
                cfg_label(&row.scenario, row.workers, row.clients),
                rate * 100.0,
                row.secondary_retries,
                row.secondary_reads
            );
        }
    }
    warned
}

/// Gates the schema-v3 lock-free counters: per-transaction `log_waits`
/// and `txn_table_acquisitions` rates must not exceed the baseline's by
/// more than the threshold (plus a small absolute epsilon — the rates sit
/// near zero, where a pure percentage gate would be noise-triggered).
/// Requires **both** documents at v3: an older baseline cannot gate, and
/// an older *candidate* must not pass as a clean zero — its absent
/// counters would be indistinguishable from proven lock-freedom, which
/// is exactly the regression class (a revert that also drops the fields)
/// the gate exists to catch. Either case skips loudly.
fn gate_lock_free_counters(
    candidate: &[Row],
    baseline: &[Row],
    candidate_version: u64,
    baseline_version: u64,
    threshold_pct: f64,
) -> Outcome {
    /// Rates this close to the baseline's are scheduler noise, not a
    /// reintroduced lock (one extra contended wait per ~20 transactions).
    const EPSILON: f64 = 0.05;
    let mut out = Outcome::default();
    if baseline_version < 3 {
        eprintln!(
            "WARNING: baseline is schema v{baseline_version} (< 3): log_waits / \
             txn_table_acquisitions not gated — re-baseline to arm the gate"
        );
        out.skipped = candidate.len();
        return out;
    }
    if candidate_version < 3 {
        eprintln!(
            "WARNING: candidate is schema v{candidate_version} (< 3): its missing \
             lock-free counters would read as zeros, not as proof — SKIPPED, not gated"
        );
        out.skipped = candidate.len();
        return out;
    }
    let base_scenarios = scenario_keys(baseline);
    for row in candidate {
        let base = baseline.iter().find(|b| {
            b.engine == row.engine
                && b.scenario == row.scenario
                && b.workers == row.workers
                && b.clients == row.clients
        });
        let Some(base) = base else {
            out.skip(!base_scenarios.contains(row.scenario.as_str()));
            eprintln!(
                "WARNING: {} {}: no baseline row for lock-free \
                 counters — SKIPPED, not gated",
                row.engine,
                cfg_label(&row.scenario, row.workers, row.clients)
            );
            continue;
        };
        if row.committed == 0 || base.committed == 0 {
            out.skipped += 1;
            eprintln!(
                "WARNING: {} {}: zero committed transactions — \
                 lock-free counters SKIPPED, not gated",
                row.engine,
                cfg_label(&row.scenario, row.workers, row.clients)
            );
            continue;
        }
        out.compared += 1;
        for (what, cand_count, base_count) in [
            ("log_waits", row.log_waits, base.log_waits),
            (
                "txn_table_acquisitions",
                row.txn_table_acquisitions,
                base.txn_table_acquisitions,
            ),
        ] {
            let cand_rate = cand_count as f64 / row.committed as f64;
            let base_rate = base_count as f64 / base.committed as f64;
            let ceiling = base_rate * (1.0 + threshold_pct / 100.0) + EPSILON;
            let verdict = if cand_rate > ceiling {
                out.regressed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "{} {}: {what}/txn {cand_rate:.3} vs baseline \
                 {base_rate:.3} (ceiling {ceiling:.3}) — {verdict}",
                row.engine,
                cfg_label(&row.scenario, row.workers, row.clients)
            );
        }
    }
    out
}

/// Gates the schema-v6 buffer-pool contention counters: per-transaction
/// `buffer_table_waits` and `buffer_latch_waits` rates must not exceed
/// the baseline's by more than the threshold (plus the same absolute
/// epsilon as the lock-free gate — the rates sit near zero by design).
/// The decentralized pool's claim is precisely that a buffer hit takes
/// no contended shared latch, so a change that funnels hits back through
/// a contended structure fails CI before throughput visibly collapses.
/// Requires **both** documents at v6 for the same reason the v3 gate
/// does: an older candidate's absent counters must not read as proof.
fn gate_buffer_counters(
    candidate: &[Row],
    baseline: &[Row],
    candidate_version: u64,
    baseline_version: u64,
    threshold_pct: f64,
) -> Outcome {
    /// One extra contended wait per ~20 transactions is scheduler noise.
    const EPSILON: f64 = 0.05;
    let mut out = Outcome::default();
    if baseline_version < 6 {
        eprintln!(
            "WARNING: baseline is schema v{baseline_version} (< 6): buffer_table_waits / \
             buffer_latch_waits not gated — re-baseline to arm the gate"
        );
        out.skipped = candidate.len();
        return out;
    }
    if candidate_version < 6 {
        eprintln!(
            "WARNING: candidate is schema v{candidate_version} (< 6): its missing \
             buffer counters would read as zeros, not as proof — SKIPPED, not gated"
        );
        out.skipped = candidate.len();
        return out;
    }
    let base_scenarios = scenario_keys(baseline);
    for row in candidate {
        let base = baseline.iter().find(|b| {
            b.engine == row.engine
                && b.scenario == row.scenario
                && b.workers == row.workers
                && b.clients == row.clients
        });
        let Some(base) = base else {
            out.skip(!base_scenarios.contains(row.scenario.as_str()));
            eprintln!(
                "WARNING: {} {}: no baseline row for buffer \
                 counters — SKIPPED, not gated",
                row.engine,
                cfg_label(&row.scenario, row.workers, row.clients)
            );
            continue;
        };
        if row.committed == 0 || base.committed == 0 {
            out.skipped += 1;
            eprintln!(
                "WARNING: {} {}: zero committed transactions — \
                 buffer counters SKIPPED, not gated",
                row.engine,
                cfg_label(&row.scenario, row.workers, row.clients)
            );
            continue;
        }
        out.compared += 1;
        for (what, cand_count, base_count) in [
            (
                "buffer_table_waits",
                row.buffer_table_waits,
                base.buffer_table_waits,
            ),
            (
                "buffer_latch_waits",
                row.buffer_latch_waits,
                base.buffer_latch_waits,
            ),
        ] {
            let cand_rate = cand_count as f64 / row.committed as f64;
            let base_rate = base_count as f64 / base.committed as f64;
            let ceiling = base_rate * (1.0 + threshold_pct / 100.0) + EPSILON;
            let verdict = if cand_rate > ceiling {
                out.regressed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "{} {}: {what}/txn {cand_rate:.3} vs baseline \
                 {base_rate:.3} (ceiling {ceiling:.3}) — {verdict}",
                row.engine,
                cfg_label(&row.scenario, row.workers, row.clients)
            );
        }
    }
    out
}

/// Buffer-pool residency telemetry (schema v6): hit rate and eviction
/// count per row that actually exercised the pool. Informational — the
/// buffer_pool sweep *means* to run at low residency, so the hit rate is
/// a plotted variable there, not a health gate. Returns rows noted.
fn note_buffer_pool(rows: &[Row]) -> usize {
    let mut noted = 0;
    for row in rows {
        let touches = row.buffer_hits + row.buffer_misses;
        if row.buffer_misses == 0 {
            continue;
        }
        noted += 1;
        println!(
            "{} {}: buffer hit rate {:.1}% ({} hits / {} touches), {} evictions",
            row.engine,
            cfg_label(&row.scenario, row.workers, row.clients),
            row.buffer_hits as f64 / touches as f64 * 100.0,
            row.buffer_hits,
            touches,
            row.buffer_evictions
        );
    }
    noted
}

fn main() -> ExitCode {
    let mut candidate = None;
    let mut baseline = None;
    let mut threshold_pct = 10.0f64;
    let mut metric = String::from("ratio");
    let mut strict_coverage = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--candidate" => candidate = args.next(),
            "--baseline" => baseline = args.next(),
            "--threshold-pct" => {
                threshold_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threshold-pct takes a number")
            }
            "--metric" => metric = args.next().expect("--metric takes ratio|tps"),
            "--strict-coverage" => strict_coverage = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: compare --candidate <new.json> --baseline <old.json> \
                     [--threshold-pct 10] [--metric ratio|tps] [--strict-coverage]"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let (Some(candidate), Some(baseline)) = (candidate, baseline) else {
        eprintln!("compare needs --candidate and --baseline report paths");
        return ExitCode::FAILURE;
    };
    let cand_text = read_report(&candidate);
    let base_text = read_report(&baseline);
    let cand_rows = parse_rows(&cand_text);
    let base_rows = parse_rows(&base_text);
    println!(
        "comparing {candidate} ({} rows) against {baseline} ({} rows), \
         metric={metric}, threshold={threshold_pct}%",
        cand_rows.len(),
        base_rows.len()
    );
    let mut outcome = match metric.as_str() {
        "ratio" => compare_ratio(&cand_rows, &base_rows, threshold_pct),
        "tps" => compare_tps(&cand_rows, &base_rows, threshold_pct),
        other => {
            eprintln!("unknown metric {other} (expected ratio or tps)");
            return ExitCode::FAILURE;
        }
    };
    // The lock-free storage counters ride every comparison: a change that
    // sneaks a global lock back onto the WAL or transaction-table hot
    // path fails CI even when throughput hasn't collapsed yet. Its skips
    // are advisory (a pre-v3 baseline cannot gate), so only `regressed`
    // folds into the exit code.
    let lock_free = gate_lock_free_counters(
        &cand_rows,
        &base_rows,
        parse_schema_version(&cand_text),
        parse_schema_version(&base_text),
        threshold_pct,
    );
    outcome.regressed |= lock_free.regressed;
    // Same rationale one layer down: a change that funnels buffer hits
    // back through a contended table or latch fails here first.
    let buffer = gate_buffer_counters(
        &cand_rows,
        &base_rows,
        parse_schema_version(&cand_text),
        parse_schema_version(&base_text),
        threshold_pct,
    );
    outcome.regressed |= buffer.regressed;
    warn_secondary_retry_rate(&cand_rows);
    note_load_balance(&cand_rows);
    note_buffer_pool(&cand_rows);
    if outcome.compared == 0 {
        eprintln!("no comparable configurations between the two reports");
        return ExitCode::FAILURE;
    }
    // Scenario-key drift (quick sweeps fewer values than full) is
    // advisory even under --strict-coverage; only same-scenario
    // (workers, clients) drift means the bench grid itself moved.
    if outcome.skipped > 0 && strict_coverage {
        eprintln!(
            "FAIL: --strict-coverage and {} configuration(s) exist in only one \
             report (grid drift? re-baseline or fix the bench grid)",
            outcome.skipped
        );
        return ExitCode::FAILURE;
    }
    if outcome.regressed {
        eprintln!("FAIL: regression beyond {threshold_pct}% detected");
        return ExitCode::FAILURE;
    }
    let mut skipped_note = String::new();
    if outcome.skipped > 0 {
        skipped_note = format!(" ({} skipped — see warnings)", outcome.skipped);
    }
    if outcome.scenario_skipped > 0 {
        let _ = std::fmt::Write::write_fmt(
            &mut skipped_note,
            format_args!(
                " ({} scenario-key skip(s) — quick vs full sweep naming, not gated)",
                outcome.scenario_skipped
            ),
        );
    }
    println!(
        "PASS: no regression beyond {threshold_pct}% across {} configuration(s){}",
        outcome.compared, skipped_note
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;
    use dora_bench::report::{BenchReport, Scenario};

    fn report(rows: &[(&'static str, usize, usize, u64)]) -> String {
        report_s(
            &rows
                .iter()
                .map(|&(engine, workers, clients, committed)| {
                    (engine, "", workers, clients, committed)
                })
                .collect::<Vec<_>>(),
        )
    }

    fn report_s(rows: &[(&'static str, &'static str, usize, usize, u64)]) -> String {
        BenchReport {
            bench: "throughput_vs_cores",
            workload: "test".into(),
            physical_cores: 1,
            quick: true,
            runs: rows
                .iter()
                .map(
                    |&(engine, scenario, workers, clients, committed)| Scenario {
                        engine,
                        scenario: scenario.into(),
                        workers,
                        clients,
                        committed,
                        aborted: 0,
                        secondary_reads: 0,
                        secondary_retries: 0,
                        log_waits: 0,
                        txn_acquisitions: 0,
                        queue_peak: 0,
                        busy_ns: 0,
                        buffer_hits: 0,
                        buffer_misses: 0,
                        buffer_evictions: 0,
                        buffer_table_waits: 0,
                        buffer_latch_waits: 0,
                        elapsed_secs: 1.0,
                        critical_sections: 0,
                        extra: vec![],
                    },
                )
                .collect(),
        }
        .to_json(None)
    }

    #[test]
    fn parses_rows_and_skips_embedded_baseline() {
        let inner = report(&[("dora", 2, 4, 100)]);
        let outer = BenchReport {
            bench: "throughput_vs_cores",
            workload: "test".into(),
            physical_cores: 1,
            quick: true,
            runs: vec![Scenario {
                engine: "conventional",
                scenario: String::new(),
                workers: 2,
                clients: 4,
                committed: 80,
                aborted: 0,
                secondary_reads: 0,
                secondary_retries: 0,
                log_waits: 0,
                txn_acquisitions: 0,
                queue_peak: 0,
                busy_ns: 0,
                buffer_hits: 0,
                buffer_misses: 0,
                buffer_evictions: 0,
                buffer_table_waits: 0,
                buffer_latch_waits: 0,
                elapsed_secs: 1.0,
                critical_sections: 9,
                extra: vec![],
            }],
        }
        .to_json(Some(&inner));
        let rows = parse_rows(&outer);
        assert_eq!(rows.len(), 1, "embedded baseline rows must be ignored");
        assert_eq!(rows[0].engine, "conventional");
        assert_eq!(rows[0].tps, 80.0);
    }

    #[test]
    fn ratio_metric_flags_only_real_regressions() {
        let base = report(&[("conventional", 2, 4, 100), ("dora", 2, 4, 120)]);
        // Same ratio, different absolute speed (slower host): passes.
        let same = report(&[("conventional", 2, 4, 50), ("dora", 2, 4, 60)]);
        let out = compare_ratio(&parse_rows(&same), &parse_rows(&base), 10.0);
        assert_eq!(out.compared, 1);
        assert_eq!(out.skipped, 0);
        assert!(!out.regressed);
        // Ratio dropped 25%: fails the 10% gate.
        let worse = report(&[("conventional", 2, 4, 100), ("dora", 2, 4, 90)]);
        let out = compare_ratio(&parse_rows(&worse), &parse_rows(&base), 10.0);
        assert!(out.regressed);
    }

    #[test]
    fn tps_metric_compares_absolute_rows() {
        let base = report(&[("dora", 2, 4, 100)]);
        let ok = report(&[("dora", 2, 4, 95)]);
        let out = compare_tps(&parse_rows(&ok), &parse_rows(&base), 10.0);
        assert_eq!(out.compared, 1);
        assert!(!out.regressed);
        let bad = report(&[("dora", 2, 4, 80)]);
        let out = compare_tps(&parse_rows(&bad), &parse_rows(&base), 10.0);
        assert!(out.regressed);
    }

    #[test]
    fn schema_v1_reports_without_secondary_fields_still_parse() {
        // A committed v1 baseline has no secondary_reads/retries lines:
        // the back-compat read must default them to 0 and keep the row.
        let v1 = "{\n  \"bench\": \"throughput_vs_cores\",\n  \"schema_version\": 1,\n  \
                  \"runs\": [\n    {\n      \"engine\": \"dora\",\n      \"workers\": 2,\n      \
                  \"clients\": 4,\n      \"committed\": 100,\n      \"aborted\": 0,\n      \
                  \"elapsed_secs\": 1.000,\n      \"throughput_tps\": 100.000,\n      \
                  \"critical_sections\": 0,\n      \"extra\": {}\n    }\n  ]\n}\n";
        let rows = parse_rows(v1);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].tps, 100.0);
        assert_eq!(rows[0].secondary_reads, 0);
        assert_eq!(rows[0].secondary_retries, 0);
        assert_eq!(rows[0].queue_peak, 0, "absent v5 fields parse as 0");
        assert_eq!(rows[0].busy_ns, 0);
        assert_eq!(warn_secondary_retry_rate(&rows), 0, "0 reads never warn");
        assert_eq!(note_load_balance(&rows), 0, "pre-v5 rows stay silent");
    }

    #[test]
    fn secondary_retry_rate_warns_above_one_percent() {
        let mut rows = parse_rows(&report(&[("dora", 2, 4, 100)]));
        rows[0].secondary_reads = 1_000;
        rows[0].secondary_retries = 9;
        assert_eq!(warn_secondary_retry_rate(&rows), 0, "0.9% is healthy");
        rows[0].secondary_retries = 11;
        assert_eq!(warn_secondary_retry_rate(&rows), 1, "1.1% must warn");
        // Round-trip through the v2 serializer: the fields survive parsing.
        let json = BenchReport {
            bench: "throughput_vs_cores",
            workload: "test".into(),
            physical_cores: 1,
            quick: true,
            runs: vec![Scenario {
                engine: "dora",
                scenario: String::new(),
                workers: 2,
                clients: 4,
                committed: 100,
                aborted: 0,
                secondary_reads: 500,
                secondary_retries: 20,
                log_waits: 0,
                txn_acquisitions: 0,
                queue_peak: 0,
                busy_ns: 0,
                buffer_hits: 0,
                buffer_misses: 0,
                buffer_evictions: 0,
                buffer_table_waits: 0,
                buffer_latch_waits: 0,
                elapsed_secs: 1.0,
                critical_sections: 0,
                extra: vec![],
            }],
        }
        .to_json(None);
        let parsed = parse_rows(&json);
        assert_eq!(parsed[0].secondary_reads, 500);
        assert_eq!(parsed[0].secondary_retries, 20);
        assert_eq!(warn_secondary_retry_rate(&parsed), 1);
    }

    #[test]
    fn grid_drift_is_counted_not_silently_dropped() {
        // Baseline only knows workers=2; a candidate that grew a workers=4
        // configuration must surface the uncovered config via `skipped`.
        let base = report(&[("conventional", 2, 4, 100), ("dora", 2, 4, 120)]);
        let drifted = report(&[
            ("conventional", 2, 4, 100),
            ("dora", 2, 4, 120),
            ("conventional", 4, 8, 100),
            ("dora", 4, 8, 120),
        ]);
        let out = compare_ratio(&parse_rows(&drifted), &parse_rows(&base), 10.0);
        assert_eq!(out.compared, 1);
        assert_eq!(out.skipped, 1);
        assert!(!out.regressed);
        let out = compare_tps(&parse_rows(&drifted), &parse_rows(&base), 10.0);
        assert_eq!(out.compared, 2);
        assert_eq!(out.skipped, 2);
        // Reverse drift — the bench grid SHRANK, so a baseline config is
        // no longer measured: coverage loss must be counted too, not
        // silently passed (the candidate rows all still match).
        let out = compare_ratio(&parse_rows(&base), &parse_rows(&drifted), 10.0);
        assert_eq!(out.compared, 1);
        assert_eq!(out.skipped, 1);
        assert!(!out.regressed);
        let out = compare_tps(&parse_rows(&base), &parse_rows(&drifted), 10.0);
        assert_eq!(out.compared, 2);
        assert_eq!(out.skipped, 2);
    }

    /// A one-row v3 report with explicit lock-free counters.
    fn counter_report(committed: u64, log_waits: u64, txn_acquisitions: u64) -> String {
        BenchReport {
            bench: "critical_sections",
            workload: "test".into(),
            physical_cores: 1,
            quick: true,
            runs: vec![Scenario {
                engine: "dora",
                scenario: String::new(),
                workers: 4,
                clients: 8,
                committed,
                aborted: 0,
                secondary_reads: 0,
                secondary_retries: 0,
                log_waits,
                txn_acquisitions,
                queue_peak: 7,
                busy_ns: 1_500_000_000,
                buffer_hits: 9_000,
                buffer_misses: 1_000,
                buffer_evictions: 800,
                buffer_table_waits: 5,
                buffer_latch_waits: 3,
                elapsed_secs: 1.0,
                critical_sections: 0,
                extra: vec![],
            }],
        }
        .to_json(None)
    }

    #[test]
    fn v6_counters_round_trip_and_version_is_parsed() {
        let json = counter_report(1000, 900, 4000);
        assert_eq!(parse_schema_version(&json), 6);
        let rows = parse_rows(&json);
        assert_eq!(rows[0].committed, 1000);
        assert_eq!(rows[0].log_waits, 900);
        assert_eq!(rows[0].txn_table_acquisitions, 4000);
        assert_eq!(rows[0].queue_peak, 7);
        assert_eq!(rows[0].busy_ns, 1_500_000_000);
        assert_eq!(rows[0].buffer_hits, 9_000);
        assert_eq!(rows[0].buffer_misses, 1_000);
        assert_eq!(rows[0].buffer_evictions, 800);
        assert_eq!(rows[0].buffer_table_waits, 5);
        assert_eq!(rows[0].buffer_latch_waits, 3);
        assert_eq!(note_load_balance(&rows), 1);
        assert_eq!(note_buffer_pool(&rows), 1);
        // The embedded baseline's version must not shadow the report's.
        let v1 = "{\n  \"bench\": \"x\",\n  \"schema_version\": 1,\n  \"runs\": []\n}\n";
        assert_eq!(parse_schema_version(v1), 1);
        let nested = BenchReport {
            bench: "critical_sections",
            workload: "test".into(),
            physical_cores: 1,
            quick: true,
            runs: vec![],
        }
        .to_json(Some(v1));
        assert_eq!(parse_schema_version(&nested), 6);
    }

    #[test]
    fn scenario_keys_complete_the_row_identity() {
        // Two rows share (engine, workers, clients) and differ only in the
        // scenario key: both must parse, stay distinct, and gate
        // independently.
        let base = report_s(&[
            ("conventional", "remote=0", 4, 8, 100),
            ("dora", "remote=0", 4, 8, 200),
            ("conventional", "remote=100", 4, 8, 100),
            ("dora", "remote=100", 4, 8, 120),
        ]);
        let rows = parse_rows(&base);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].scenario, "remote=0");
        assert_eq!(configs_of(&rows).len(), 2);
        // Only the remote=100 ratio regresses; remote=0 stays fine.
        let cand = report_s(&[
            ("conventional", "remote=0", 4, 8, 100),
            ("dora", "remote=0", 4, 8, 200),
            ("conventional", "remote=100", 4, 8, 100),
            ("dora", "remote=100", 4, 8, 60),
        ]);
        let out = compare_ratio(&parse_rows(&cand), &rows, 10.0);
        assert_eq!(out.compared, 2);
        assert!(out.regressed);
    }

    #[test]
    fn unknown_scenario_keys_warn_skip_without_strict_failure() {
        // A quick candidate sweeps a subset of the full baseline's
        // scenario values: the missing keys are scenario_skipped
        // (advisory), never `skipped` (strict-fatal).
        let full = parse_rows(&report_s(&[
            ("conventional", "remote=0", 4, 8, 100),
            ("dora", "remote=0", 4, 8, 200),
            ("conventional", "remote=50", 4, 8, 100),
            ("dora", "remote=50", 4, 8, 160),
            ("conventional", "remote=100", 4, 8, 100),
            ("dora", "remote=100", 4, 8, 120),
        ]));
        let quick = parse_rows(&report_s(&[
            ("conventional", "remote=0", 4, 8, 100),
            ("dora", "remote=0", 4, 8, 200),
            ("conventional", "remote=100", 4, 8, 100),
            ("dora", "remote=100", 4, 8, 120),
        ]));
        let out = compare_ratio(&quick, &full, 10.0);
        assert_eq!(out.compared, 2);
        assert_eq!(out.skipped, 0, "scenario naming is not grid drift");
        assert_eq!(out.scenario_skipped, 1);
        assert!(!out.regressed);
        // Reverse direction (full candidate, quick baseline) too.
        let out = compare_ratio(&full, &quick, 10.0);
        assert_eq!(out.compared, 2);
        assert_eq!(out.skipped, 0);
        assert_eq!(out.scenario_skipped, 1);
        let out = compare_tps(&full, &quick, 10.0);
        assert_eq!(out.compared, 4);
        assert_eq!(out.skipped, 0);
        assert_eq!(out.scenario_skipped, 2, "one per unmatched engine row");
        // But (workers, clients) drift WITHIN a known scenario stays a
        // real (strict-gated) skip.
        let drifted = parse_rows(&report_s(&[
            ("conventional", "remote=0", 4, 8, 100),
            ("dora", "remote=0", 4, 8, 200),
            ("conventional", "remote=100", 2, 4, 100),
            ("dora", "remote=100", 2, 4, 120),
        ]));
        let out = compare_ratio(&drifted, &quick, 10.0);
        assert_eq!(out.compared, 1);
        assert_eq!(out.skipped, 2, "both directions of the config drift");
        assert_eq!(out.scenario_skipped, 0);
    }

    #[test]
    fn lock_free_counter_gate_flags_reintroduced_locks() {
        // Baseline: ~0.9 contended log waits and 4 stripe acquisitions
        // per committed transaction (the group-commit-only profile).
        let base = parse_rows(&counter_report(1000, 900, 4000));
        // Same profile on a slower host: passes.
        let same = parse_rows(&counter_report(500, 430, 2000));
        let out = gate_lock_free_counters(&same, &base, 3, 3, 10.0);
        assert_eq!(out.compared, 1);
        assert!(!out.regressed);
        // A mutex back on the append path: several waits per transaction.
        let locked = parse_rows(&counter_report(1000, 3000, 4000));
        let out = gate_lock_free_counters(&locked, &base, 3, 3, 10.0);
        assert!(out.regressed);
        // Stripe-acquisition blow-up (e.g. stamp checks taking the lock
        // again) is caught independently.
        let stamped = parse_rows(&counter_report(1000, 900, 40_000));
        let out = gate_lock_free_counters(&stamped, &base, 3, 3, 10.0);
        assert!(out.regressed);
        // Near-zero rates need the absolute epsilon: 1 wait in 1000 txns
        // against a zero baseline is noise, not a regression.
        let zero_base = parse_rows(&counter_report(1000, 0, 4000));
        let near_zero = parse_rows(&counter_report(1000, 1, 4000));
        let out = gate_lock_free_counters(&near_zero, &zero_base, 3, 3, 10.0);
        assert!(!out.regressed);
    }

    #[test]
    fn lock_free_counter_gate_skips_pre_v3_baselines() {
        let cand = parse_rows(&counter_report(1000, 900, 4000));
        let base = parse_rows(&counter_report(1000, 900, 4000));
        let out = gate_lock_free_counters(&cand, &base, 3, 2, 10.0);
        assert_eq!(out.compared, 0);
        assert_eq!(out.skipped, 1);
        assert!(!out.regressed);
        // A pre-v3 CANDIDATE must also be skipped, never passed as a
        // clean zero: absent counters are not proof of lock-freedom.
        let out = gate_lock_free_counters(&cand, &base, 2, 3, 10.0);
        assert_eq!(out.compared, 0);
        assert_eq!(out.skipped, 1);
        assert!(!out.regressed);
        // Unmatched rows and zero-committed rows are skipped, not gated.
        // An empty baseline has no scenario keys at all, so its skip
        // lands in the advisory scenario bucket.
        let empty: Vec<Row> = vec![];
        let out = gate_lock_free_counters(&cand, &empty, 3, 3, 10.0);
        assert_eq!(out.compared, 0);
        assert_eq!(out.scenario_skipped, 1);
        let zero = parse_rows(&counter_report(0, 0, 0));
        let out = gate_lock_free_counters(&zero, &base, 3, 3, 10.0);
        assert_eq!(out.compared, 0);
        assert_eq!(out.skipped, 1);
    }

    #[test]
    fn buffer_counter_gate_flags_contended_pools() {
        // Baseline: 5 contended table waits and 3 latch waits per 1000
        // transactions — the decentralized pool's near-zero profile.
        let base = parse_rows(&counter_report(1000, 900, 4000));
        // Same profile on a slower host: passes.
        let same = parse_rows(&counter_report(500, 430, 2000));
        let out = gate_buffer_counters(&same, &base, 6, 6, 10.0);
        assert_eq!(out.compared, 1);
        assert!(!out.regressed);
        // A global lock back on the hit path: table waits per txn blow up.
        let mut locked = parse_rows(&counter_report(1000, 900, 4000));
        locked[0].buffer_table_waits = 2_000;
        let out = gate_buffer_counters(&locked, &base, 6, 6, 10.0);
        assert!(out.regressed);
        // Frame-latch thrash is caught independently.
        let mut thrash = parse_rows(&counter_report(1000, 900, 4000));
        thrash[0].buffer_latch_waits = 1_000;
        let out = gate_buffer_counters(&thrash, &base, 6, 6, 10.0);
        assert!(out.regressed);
        // Near-zero rates need the absolute epsilon: 6 waits in 1000
        // txns against the 5-wait baseline is noise, not a regression.
        let mut near = parse_rows(&counter_report(1000, 900, 4000));
        near[0].buffer_table_waits = 6;
        let out = gate_buffer_counters(&near, &base, 6, 6, 10.0);
        assert!(!out.regressed);
    }

    #[test]
    fn buffer_counter_gate_skips_pre_v6_documents() {
        let cand = parse_rows(&counter_report(1000, 900, 4000));
        let base = parse_rows(&counter_report(1000, 900, 4000));
        // A pre-v6 baseline cannot gate; a pre-v6 CANDIDATE must not
        // pass as a clean zero — absent counters are not proof.
        let out = gate_buffer_counters(&cand, &base, 6, 5, 10.0);
        assert_eq!(out.compared, 0);
        assert_eq!(out.skipped, 1);
        assert!(!out.regressed);
        let out = gate_buffer_counters(&cand, &base, 5, 6, 10.0);
        assert_eq!(out.compared, 0);
        assert_eq!(out.skipped, 1);
        assert!(!out.regressed);
    }
}
