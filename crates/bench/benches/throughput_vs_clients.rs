//! Oversubscription curve: committed transactions per second as the
//! number of client (submitter) threads grows past a fixed worker count.
//!
//! This is the workload that stresses partition-mailbox **admission**
//! hardest: every client thread races the others for fresh-ring slots, so
//! the cost of the admission path (one CAS when uncontended, back-pressure
//! when a partition saturates) is what separates the curves. A flat or
//! rising DORA curve under 8x oversubscription means intake does not
//! become the bottleneck the centralized lock manager is for the
//! conventional engine.
//!
//! Run with `cargo bench --bench throughput_vs_clients`. Flags:
//! `--quick` (CI smoke), `--compare <path>` (embed a previous report as
//! `"baseline"`), `--out <path>`, `--accounts <n>`, `--total <n>`, `--repeats <n>`. Writes
//! `BENCH_throughput_vs_clients.json` at the workspace root; the JSON
//! schema is documented in `dora_bench::report`.

use dora_bench::driver::{run_transfer_best_of, BenchArgs, EngineKind, TransferRun};
use dora_bench::report::{workspace_root, BenchReport};
use dora_workloads::transfer::TransferWorkload;

fn main() {
    let args = BenchArgs::parse(std::env::args().skip(1));
    // Read the comparison report up front: a bad path must fail before
    // minutes of measurement, not after.
    let baseline = args.compare.as_deref().map(|p| {
        std::fs::read_to_string(p)
            .or_else(|_| std::fs::read_to_string(workspace_root().join(p)))
            .expect("read --compare report")
    });
    let wl = TransferWorkload {
        accounts: args.accounts.unwrap_or(if args.quick { 128 } else { 1024 }),
        initial_balance: 1_000,
    };
    // Partitions stay fixed; only the offered-load side scales.
    let workers = if args.quick { 2 } else { 4 };
    let client_counts: &[usize] = if args.quick {
        &[2, 8]
    } else {
        &[2, 4, 8, 16, 32]
    };
    // Fixed offered load per scenario, split across however many clients
    // submit it, so every scenario commits comparable work.
    // Quick mode still measures ~0.1s windows per scenario: 2000
    // transactions over 8 clients was a ~15ms blink whose DORA:conv
    // ratio swung ±15% run to run and made the CI gate flaky.
    let total_per_scenario = args
        .total
        .unwrap_or(if args.quick { 12_000 } else { 64_000 });
    let locality_pct = 90;

    let mut runs = Vec::new();
    let repeats = args.repeats.unwrap_or(if args.quick { 1 } else { 3 });
    for &clients in client_counts {
        for engine in [EngineKind::Conventional, EngineKind::Dora] {
            let scenario = run_transfer_best_of(
                &wl,
                TransferRun {
                    engine,
                    workers,
                    clients,
                    per_client: (total_per_scenario / clients).max(1),
                    locality_pct,
                    audit_pct: args.audit_pct.unwrap_or(0),
                    client_retries: 10,
                },
                repeats,
            );
            eprintln!(
                "  {:<13} clients={:<3} committed={:<6} tps={:.1}",
                scenario.engine,
                clients,
                scenario.committed,
                scenario.throughput_tps()
            );
            runs.push(scenario);
        }
    }

    let report = BenchReport {
        bench: "throughput_vs_clients",
        workload: format!(
            "transfer accounts={} initial_balance={} locality={}% total_per_scenario={} workers={}",
            wl.accounts, wl.initial_balance, locality_pct, total_per_scenario, workers
        ),
        physical_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        quick: args.quick,
        runs,
    };
    print!("{}", report.to_table());

    let out = args
        .out
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| workspace_root().join("BENCH_throughput_vs_clients.json"));
    report
        .write_json(&out, baseline.as_deref())
        .expect("write bench JSON");
    println!("wrote {}", out.display());
}
