//! Access-pattern sensitivity (the paper's §6 local-vs-remote study):
//! TATP `UpdateLocation` throughput as the share of *remote* handoffs —
//! updates whose new location row lives in another partition's key block
//! — sweeps from fully partition-local to fully cross-partition.
//!
//! At `remote=0` every DORA flow is a single partition-local action; each
//! step of the sweep converts more of the offered load into two-phase
//! flows that pay a cross-partition rendezvous. The conventional engine
//! has no notion of partition crossing, so its curve is flat by
//! construction — the spread between the two curves *is* the measured
//! cost of DORA's thread-to-data coupling as locality degrades.
//!
//! Run with `cargo bench --bench access_patterns`. Flags: `--quick` (CI
//! smoke, sweeps a subset of remote shares), `--compare <path>`,
//! `--out <path>`, `--subscribers <n>`, `--total <n>`, `--repeats <n>`.
//! Writes `BENCH_access_patterns.json` at the workspace root; rows carry
//! `scenario: "remote=<pct>"` keys (schema v4), so the quick sweep is a
//! subset of the full sweep's scenarios, not a conflicting grid.

use dora_bench::driver::{
    run_tatp_best_of, BenchArgs, EngineKind, StorageKind, TatpMixKind, TatpRun,
};
use dora_bench::report::{workspace_root, BenchReport};
use dora_workloads::tatp::TatpWorkload;

fn main() {
    let args = BenchArgs::parse(std::env::args().skip(1));
    let baseline = args.compare.as_deref().map(|p| {
        std::fs::read_to_string(p)
            .or_else(|_| std::fs::read_to_string(workspace_root().join(p)))
            .expect("read --compare report")
    });
    let workers = 4;
    let clients = 8;
    // Subscriber counts divide evenly by the worker count so the uniform
    // routing blocks align with the mix's partition-block arithmetic.
    let subscribers = args
        .subscribers
        .unwrap_or(if args.quick { 1_000 } else { 10_000 });
    // Quick windows still need to be long enough that the dora/conv
    // ratio is stable run-to-run on a 1-core CI runner; 8k per scenario
    // was a ~80ms blink whose ratio swung past the 10% gate.
    let total_per_scenario = args
        .total
        .unwrap_or(if args.quick { 16_000 } else { 48_000 });
    let remote_pcts: &[u64] = if args.quick {
        &[0, 50, 100]
    } else {
        &[0, 25, 50, 75, 100]
    };
    let repeats = args.repeats.unwrap_or(if args.quick { 1 } else { 3 });
    let wl = TatpWorkload {
        subscribers,
        seed: 42,
    };

    let mut runs = Vec::new();
    for &remote_pct in remote_pcts {
        for engine in [EngineKind::Conventional, EngineKind::Dora] {
            let scenario = run_tatp_best_of(
                &wl,
                TatpRun {
                    engine,
                    workers,
                    clients,
                    per_client: total_per_scenario / clients,
                    mix: TatpMixKind::Handoff { remote_pct },
                    balancer: false,
                    client_retries: 10,
                    storage: StorageKind::InMemory,
                    kill: None,
                },
                repeats,
            );
            eprintln!(
                "  {:<13} remote={:<3} committed={:<6} tps={:.1}",
                scenario.engine,
                remote_pct,
                scenario.committed,
                scenario.throughput_tps()
            );
            runs.push(scenario);
        }
    }

    let report = BenchReport {
        bench: "access_patterns",
        workload: format!(
            "tatp update_location handoff subscribers={subscribers} workers={workers} \
             clients={clients} total_per_scenario={total_per_scenario} remote_pct sweep"
        ),
        physical_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        quick: args.quick,
        runs,
    };
    print!("{}", report.to_table());

    let out = args
        .out
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| workspace_root().join("BENCH_access_patterns.json"));
    report
        .write_json(&out, baseline.as_deref())
        .expect("write bench JSON");
    println!("wrote {}", out.display());
}
