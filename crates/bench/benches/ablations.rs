fn main(){}
