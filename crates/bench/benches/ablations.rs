fn main() {}
