//! Availability under partition-worker failure: the self-healing
//! supervisor's headline measurement.
//!
//! DORA binds each partition to exactly one worker thread, so a dead
//! worker is a dead partition until the supervisor notices, aborts the
//! in-flight transactions whose lock state it held (retryably), salvages
//! the queues, and respawns it. This bench kills workers **mid-run** with
//! the engine's own `kill_worker` fault injection and measures what the
//! paper's availability story needs:
//!
//! * **MTTR** (`mttr_restart_us`) — mean time from a worker's death to
//!   its replacement serving, straight from the supervisor's
//!   `restart_pause_us` / `worker_restarts` counters.
//! * **Dip depth** (`dip_depth`, `dip_floor_tps`) — how far total
//!   throughput sank in the worst 10ms sample of the run, relative to
//!   the run's mean: 0.0 means the kill was invisible, 1.0 means the
//!   whole engine stalled. Unaffected partitions keep committing during
//!   recovery, so with 4 workers the dip should stay well shy of 1.0.
//! * **Abort taxonomy** (`infra_aborts` vs `aborted`) — recovery aborts
//!   surface as the retryable `WorkerUnavailable` class and are tallied
//!   apart from workload contention.
//!
//! Scenario keys: `zipf=0.80` (no-fault control: both engines, no kills)
//! and `zipf=0.80+kill` (DORA with mid-run kills; the conventional engine
//! runs the same key *without* kills — it has no partition workers to
//! kill — serving as the throughput control the compare gate ratios
//! against). Integrity is enforced inside the driver: a run that loses an
//! acked commit or breaks TATP referential integrity panics rather than
//! reporting a number.
//!
//! Run with `cargo bench --bench availability`. Flags: `--quick` (CI
//! smoke), `--compare <path>`, `--out <path>`, `--subscribers <n>`,
//! `--total <n>`, `--repeats <n>`. Writes `BENCH_availability.json` at
//! the workspace root.

use dora_bench::driver::{
    run_tatp_best_of, BenchArgs, EngineKind, KillSpec, StorageKind, TatpMixKind, TatpRun,
};
use dora_bench::report::{workspace_root, BenchReport};
use dora_workloads::tatp::TatpWorkload;

fn main() {
    let args = BenchArgs::parse(std::env::args().skip(1));
    let baseline = args.compare.as_deref().map(|p| {
        std::fs::read_to_string(p)
            .or_else(|_| std::fs::read_to_string(workspace_root().join(p)))
            .expect("read --compare report")
    });
    let workers = 4;
    let clients = 8;
    let subscribers = args
        .subscribers
        .unwrap_or(if args.quick { 1_000 } else { 10_000 });
    let total_per_scenario = args
        .total
        .unwrap_or(if args.quick { 16_000 } else { 48_000 });
    let per_client = total_per_scenario / clients;
    let repeats = args.repeats.unwrap_or(if args.quick { 1 } else { 3 });
    let wl = TatpWorkload {
        subscribers,
        seed: 42,
    };
    let mix = TatpMixKind::Skewed { theta: 0.8 };
    // First kill lands ~25% into the measured window; the full sweep adds
    // a second kill at ~50% so MTTR averages over more than one sample.
    let kills = if args.quick { 1 } else { 2 };
    let kill = KillSpec {
        count: kills,
        after_committed: (total_per_scenario / 4) as u64,
    };

    let mut runs = Vec::new();
    for (engine, kill) in [
        (EngineKind::Conventional, None),
        (EngineKind::Dora, None),
        (EngineKind::Conventional, Some(kill)),
        (EngineKind::Dora, Some(kill)),
    ] {
        let mut scenario = run_tatp_best_of(
            &wl,
            TatpRun {
                engine,
                workers,
                clients,
                per_client,
                mix,
                balancer: false,
                client_retries: 10,
                storage: StorageKind::InMemory,
                kill,
            },
            repeats,
        );
        if kill.is_some() {
            // The conventional engine ignores the spec (no partition
            // workers): its `+kill` row is the no-fault control under the
            // same scenario key, so the compare gate always has a ratio.
            scenario.scenario.push_str("+kill");
        }
        let get = |s: &dora_bench::report::Scenario, key: &str| {
            s.extra
                .iter()
                .find(|&&(k, _)| k == key)
                .map(|&(_, v)| v)
                .unwrap_or(0.0)
        };
        eprintln!(
            "  {:<13} {:<14} committed={:<6} tps={:<9.1} kills={} restarts={} \
             mttr_us={:.0} dip_depth={:.2} infra_aborts={}",
            scenario.engine,
            scenario.scenario,
            scenario.committed,
            scenario.throughput_tps(),
            get(&scenario, "worker_kills"),
            get(&scenario, "worker_restarts"),
            get(&scenario, "mttr_restart_us"),
            get(&scenario, "dip_depth"),
            get(&scenario, "infra_aborts"),
        );
        runs.push(scenario);
    }

    let report = BenchReport {
        bench: "availability",
        workload: format!(
            "tatp standard mix subscribers={subscribers} workers={workers} \
             clients={clients} total_per_scenario={total_per_scenario} zipf=0.8; \
             +kill rows inject {kills} mid-run worker kill(s) on the DORA side \
             (supervisor restarts the partition; MTTR and throughput-dip \
             depth ride the extra map)"
        ),
        physical_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        quick: args.quick,
        runs,
    };
    print!("{}", report.to_table());

    let out = args
        .out
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| workspace_root().join("BENCH_availability.json"));
    report
        .write_json(&out, baseline.as_deref())
        .expect("write bench JSON");
    println!("wrote {}", out.display());
}
