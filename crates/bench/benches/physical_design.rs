//! Physical-design payoff: `dora_designer::design_routing` vs naive
//! equal-width partitioning under a skewed TATP mix.
//!
//! The designer is given the workload profile a DBA would know — the Zipf
//! law of the subscriber choice, expressed as per-key load shares for the
//! hottest ranks plus a uniform remainder — and derives quantile-placed
//! partition boundaries for every subscriber-keyed table. The same skewed
//! request stream then runs against DORA twice: once on the naive
//! equal-width routing, once on the designed one. The per-partition
//! action counts and `partition_imbalance` in each row's `extra` map show
//! how much of the skew the *static* designer absorbs before the runtime
//! load balancer has to do anything.
//!
//! Run with `cargo bench --bench physical_design`. Flags: `--quick`,
//! `--compare <path>`, `--out <path>`, `--subscribers <n>`, `--total <n>`.
//! Writes `BENCH_physical_design.json`; rows are DORA-only with scenario
//! keys `uniform` and `designed`.

use std::sync::Arc;
use std::time::Instant;

use dora_bench::driver::BenchArgs;
use dora_bench::report::{workspace_root, BenchReport, Scenario};
use dora_core::executor::{DoraEngine, DoraEngineConfig};
use dora_core::routing::RoutingTable;
use dora_designer::{design_routing, TableProfile, WorkloadProfile};
use dora_storage::db::Database;
use dora_storage::schema::{ColumnDef, TableSchema};
use dora_storage::types::DataType;
use dora_workloads::tatp::{flow_of, TatpMix, TatpWorkload};

const WORKERS: usize = 4;
const THETA: f64 = 1.2;
/// Hot ranks profiled individually; the rest of the mass is uniform.
const HOT_RANKS: i64 = 64;

/// Zipf load shares of the hottest `HOT_RANKS` subscriber ids (rank r
/// carries `r^-THETA / H`), matching the generator's rank→s_id mapping.
fn hot_keys(subscribers: i64) -> Vec<(i64, f64)> {
    let h: f64 = (1..=subscribers).map(|r| (r as f64).powf(-THETA)).sum();
    (1..=HOT_RANKS.min(subscribers))
        .map(|r| (r, (r as f64).powf(-THETA) / h))
        .collect()
}

fn main() {
    let args = BenchArgs::parse(std::env::args().skip(1));
    let baseline = args.compare.as_deref().map(|p| {
        std::fs::read_to_string(p)
            .or_else(|_| std::fs::read_to_string(workspace_root().join(p)))
            .expect("read --compare report")
    });
    let subscribers = args
        .subscribers
        .unwrap_or(if args.quick { 1_000 } else { 10_000 });
    let total = args
        .total
        .unwrap_or(if args.quick { 8_000 } else { 40_000 });
    let wl = TatpWorkload {
        subscribers,
        seed: 42,
    };

    let mut runs = Vec::new();
    for scenario_key in ["uniform", "designed"] {
        let db = Arc::new(Database::default());
        let tables = wl.load(&db);
        let routing: RoutingTable = if scenario_key == "uniform" {
            wl.routing(tables, WORKERS)
        } else {
            // Every TATP table routes on s_id (its first key column), so
            // one subscriber profile describes them all. The catalog
            // hands the designer the primary-key layout it routes on.
            let key_schema = |name: &str| {
                TableSchema::new(
                    name,
                    vec![ColumnDef::new("s_id", DataType::BigInt)],
                    vec![0],
                )
            };
            let profile = |table| TableProfile {
                table,
                key_lo: 1,
                key_hi: subscribers,
                hot_keys: hot_keys(subscribers),
            };
            design_routing(
                &[
                    (tables.subscriber, key_schema("subscriber")),
                    (tables.access_info, key_schema("access_info")),
                    (tables.special_facility, key_schema("special_facility")),
                    (tables.call_forwarding, key_schema("call_forwarding")),
                ],
                &WorkloadProfile {
                    tables: vec![
                        profile(tables.subscriber),
                        profile(tables.access_info),
                        profile(tables.special_facility),
                        profile(tables.call_forwarding),
                    ],
                },
                WORKERS,
            )
        };
        let engine = DoraEngine::new(
            db.clone(),
            routing,
            DoraEngineConfig {
                workers: WORKERS,
                ..Default::default()
            },
        );
        let mut mix = TatpMix::with_skew(subscribers, 1, THETA);
        let started = Instant::now();
        let (mut committed, mut aborted) = (0u64, 0u64);
        for _ in 0..total {
            if engine
                .execute(flow_of(tables, &mix.next_op(), None))
                .is_committed()
            {
                committed += 1;
            } else {
                aborted += 1;
            }
        }
        let elapsed = started.elapsed();
        let stats = engine.stats();
        engine.shutdown();
        TatpWorkload::check_integrity(&db, tables).expect("TATP integrity");

        let executed: Vec<u64> = stats.workers.iter().map(|w| w.executed).collect();
        let mean = executed.iter().sum::<u64>() as f64 / executed.len().max(1) as f64;
        let max = executed.iter().copied().max().unwrap_or(0) as f64;
        let imbalance = if mean > 0.0 { max / mean } else { 0.0 };
        let mut extra = vec![("partition_imbalance", imbalance)];
        for (i, &n) in executed.iter().enumerate().take(WORKERS) {
            extra.push((["p0", "p1", "p2", "p3"][i], n as f64));
        }
        eprintln!(
            "  {scenario_key:<9} committed={committed:<7} imbalance={imbalance:.2} \
             executed={executed:?}"
        );
        runs.push(Scenario {
            engine: "dora",
            scenario: scenario_key.into(),
            workers: WORKERS,
            clients: 1,
            committed,
            aborted,
            secondary_reads: 0,
            secondary_retries: 0,
            log_waits: 0,
            txn_acquisitions: 0,
            queue_peak: 0,
            busy_ns: stats.workers.iter().map(|w| w.busy_ns).sum(),
            buffer_hits: 0,
            buffer_misses: 0,
            buffer_evictions: 0,
            buffer_table_waits: 0,
            buffer_latch_waits: 0,
            elapsed_secs: elapsed.as_secs_f64(),
            critical_sections: 0,
            extra,
        });
    }

    let report = BenchReport {
        bench: "physical_design",
        workload: format!(
            "tatp standard mix subscribers={subscribers} workers={WORKERS} total={total} \
             zipf={THETA}, uniform vs designer-placed routing boundaries"
        ),
        physical_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        quick: args.quick,
        runs,
    };
    print!("{}", report.to_table());

    let out = args
        .out
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| workspace_root().join("BENCH_physical_design.json"));
    report
        .write_json(&out, baseline.as_deref())
        .expect("write bench JSON");
    println!("wrote {}", out.display());
}
