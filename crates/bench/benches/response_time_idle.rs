fn main() {}
