//! Load-balancing under skew (the paper's §5 Zipf study): the standard
//! seven-transaction TATP mix with increasingly Zipf-skewed subscriber
//! choice, DORA vs the conventional engine — plus the adaptive
//! repartitioner's own scenarios.
//!
//! DORA statically partitions subscribers across workers, so a skewed
//! request stream concentrates load on the partitions owning the hot
//! subscribers — the per-partition action counts (`p<i>_actions`) and the
//! `partition_imbalance` ratio (max/mean weighted load, queue-depth peaks
//! folded in) in each DORA row's `extra` map quantify exactly how
//! unevenly the work lands as `theta` grows. The conventional engine's
//! work-stealing worker pool rebalances naturally but pays its
//! centralized locking instead; the throughput curves show which effect
//! dominates at each skew level.
//!
//! Two scenario families extend the static sweep:
//!
//! * **`zipf=<t>+lb`** — the same skewed mix with the designer's runtime
//!   load balancer splitting hot ranges quiesce-free under live traffic.
//!   Its rows carry `migrations`, `rebalance_pause_*`, and
//!   `imbalance_end` extras; the balancer must cut the DORA imbalance
//!   without costing throughput.
//! * **`zipf=<t>+shift[+lb]`** (full runs only) — the hot set *rotates*
//!   by half the subscriber span midway through the measured window. A
//!   static routing table is wrong for half the run by construction;
//!   the `+lb` variant shows the balancer chasing the moved hotspot
//!   (compare the `imbalance_end` window of the two rows).
//!
//! Run with `cargo bench --bench load_balancing_skew`. Flags: `--quick`
//! (CI smoke, sweeps a subset of scenarios), `--compare <path>`,
//! `--out <path>`, `--subscribers <n>`, `--total <n>`, `--repeats <n>`.
//! Writes `BENCH_load_balancing_skew.json` at the workspace root; rows
//! carry `scenario: "zipf=<theta>[+shift][+lb]"` keys (schema v5), so
//! the quick sweep is a subset of the full sweep's scenarios, not a
//! conflicting grid.

use dora_bench::driver::{
    run_tatp_best_of, BenchArgs, EngineKind, StorageKind, TatpMixKind, TatpRun,
};
use dora_bench::report::{workspace_root, BenchReport};
use dora_workloads::tatp::TatpWorkload;

fn main() {
    let args = BenchArgs::parse(std::env::args().skip(1));
    let baseline = args.compare.as_deref().map(|p| {
        std::fs::read_to_string(p)
            .or_else(|_| std::fs::read_to_string(workspace_root().join(p)))
            .expect("read --compare report")
    });
    let workers = 4;
    let clients = 8;
    let subscribers = args
        .subscribers
        .unwrap_or(if args.quick { 1_000 } else { 10_000 });
    // Quick windows still need to be long enough that the dora/conv
    // ratio is stable run-to-run on a 1-core CI runner; 8k per scenario
    // was a ~80ms blink whose ratio swung past the 10% gate.
    let total_per_scenario = args
        .total
        .unwrap_or(if args.quick { 16_000 } else { 48_000 });
    let per_client = total_per_scenario / clients;
    let thetas: &[f64] = if args.quick {
        &[0.0, 1.2]
    } else {
        &[0.0, 0.4, 0.8, 1.2]
    };
    let repeats = args.repeats.unwrap_or(if args.quick { 1 } else { 3 });
    let wl = TatpWorkload {
        subscribers,
        seed: 42,
    };

    // Scenario grid: the historical static sweep, the hottest theta with
    // the balancer on, and (full runs only) the mid-run hot-set shift
    // with and without the balancer. The balancer flag only affects the
    // DORA side, but both engines run under every scenario key so the
    // compare gate always has a ratio to check.
    let mut sweeps: Vec<(TatpMixKind, bool)> = thetas
        .iter()
        .map(|&theta| (TatpMixKind::Skewed { theta }, false))
        .collect();
    sweeps.push((TatpMixKind::Skewed { theta: 1.2 }, true));
    if !args.quick {
        // The hot set rotates once the client is halfway through its
        // *measured* slice (the warmup slice draws too).
        let shift_after = (per_client / 10 + per_client / 2) as u64;
        let shift = TatpMixKind::SkewShift {
            theta: 1.2,
            shift_after,
        };
        sweeps.push((shift, false));
        sweeps.push((shift, true));
    }

    let mut runs = Vec::new();
    for (mix, balancer) in sweeps {
        for engine in [EngineKind::Conventional, EngineKind::Dora] {
            let mut scenario = run_tatp_best_of(
                &wl,
                TatpRun {
                    engine,
                    workers,
                    clients,
                    per_client,
                    mix,
                    balancer,
                    client_retries: 10,
                    storage: StorageKind::InMemory,
                    kill: None,
                },
                repeats,
            );
            if balancer {
                scenario.scenario.push_str("+lb");
            }
            let imbalance = scenario
                .extra
                .iter()
                .find(|&&(k, _)| k == "partition_imbalance")
                .map(|&(_, v)| v)
                .unwrap_or(0.0);
            eprintln!(
                "  {:<13} {:<18} committed={:<6} tps={:<9.1} imbalance={:.2}",
                scenario.engine,
                scenario.scenario,
                scenario.committed,
                scenario.throughput_tps(),
                imbalance
            );
            runs.push(scenario);
        }
    }

    let report = BenchReport {
        bench: "load_balancing_skew",
        workload: format!(
            "tatp standard mix subscribers={subscribers} workers={workers} \
             clients={clients} total_per_scenario={total_per_scenario} zipf theta sweep \
             + adaptive-repartitioning (+lb) and mid-run skew-shift (+shift) scenarios"
        ),
        physical_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        quick: args.quick,
        runs,
    };
    print!("{}", report.to_table());

    let out = args
        .out
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| workspace_root().join("BENCH_load_balancing_skew.json"));
    report
        .write_json(&out, baseline.as_deref())
        .expect("write bench JSON");
    println!("wrote {}", out.display());
}
