//! Load-balancing under skew (the paper's §5 Zipf study): the standard
//! seven-transaction TATP mix with increasingly Zipf-skewed subscriber
//! choice, DORA vs the conventional engine.
//!
//! DORA statically partitions subscribers across workers, so a skewed
//! request stream concentrates load on the partitions owning the hot
//! subscribers — the per-partition action counts (`p<i>_actions`) and the
//! `partition_imbalance` ratio (max/mean actions) in each DORA row's
//! `extra` map quantify exactly how unevenly the work lands as `theta`
//! grows. The conventional engine's work-stealing worker pool rebalances
//! naturally but pays its centralized locking instead; the throughput
//! curves show which effect dominates at each skew level.
//!
//! Run with `cargo bench --bench load_balancing_skew`. Flags: `--quick`
//! (CI smoke, sweeps a subset of theta values), `--compare <path>`,
//! `--out <path>`, `--subscribers <n>`, `--total <n>`, `--repeats <n>`.
//! Writes `BENCH_load_balancing_skew.json` at the workspace root; rows
//! carry `scenario: "zipf=<theta>"` keys (schema v4), so the quick sweep
//! is a subset of the full sweep's scenarios, not a conflicting grid.

use dora_bench::driver::{run_tatp_best_of, BenchArgs, EngineKind, TatpMixKind, TatpRun};
use dora_bench::report::{workspace_root, BenchReport};
use dora_workloads::tatp::TatpWorkload;

fn main() {
    let args = BenchArgs::parse(std::env::args().skip(1));
    let baseline = args.compare.as_deref().map(|p| {
        std::fs::read_to_string(p)
            .or_else(|_| std::fs::read_to_string(workspace_root().join(p)))
            .expect("read --compare report")
    });
    let workers = 4;
    let clients = 8;
    let subscribers = args
        .subscribers
        .unwrap_or(if args.quick { 1_000 } else { 10_000 });
    // Quick windows still need to be long enough that the dora/conv
    // ratio is stable run-to-run on a 1-core CI runner; 8k per scenario
    // was a ~80ms blink whose ratio swung past the 10% gate.
    let total_per_scenario = args
        .total
        .unwrap_or(if args.quick { 16_000 } else { 48_000 });
    let thetas: &[f64] = if args.quick {
        &[0.0, 1.2]
    } else {
        &[0.0, 0.4, 0.8, 1.2]
    };
    let repeats = args.repeats.unwrap_or(if args.quick { 1 } else { 3 });
    let wl = TatpWorkload {
        subscribers,
        seed: 42,
    };

    let mut runs = Vec::new();
    for &theta in thetas {
        for engine in [EngineKind::Conventional, EngineKind::Dora] {
            let scenario = run_tatp_best_of(
                &wl,
                TatpRun {
                    engine,
                    workers,
                    clients,
                    per_client: total_per_scenario / clients,
                    mix: TatpMixKind::Skewed { theta },
                    client_retries: 10,
                },
                repeats,
            );
            eprintln!(
                "  {:<13} zipf={:<4} committed={:<6} tps={:.1}",
                scenario.engine,
                theta,
                scenario.committed,
                scenario.throughput_tps()
            );
            runs.push(scenario);
        }
    }

    let report = BenchReport {
        bench: "load_balancing_skew",
        workload: format!(
            "tatp standard mix subscribers={subscribers} workers={workers} \
             clients={clients} total_per_scenario={total_per_scenario} zipf theta sweep"
        ),
        physical_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        quick: args.quick,
        runs,
    };
    print!("{}", report.to_table());

    let out = args
        .out
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| workspace_root().join("BENCH_load_balancing_skew.json"));
    report
        .write_json(&out, baseline.as_deref())
        .expect("write bench JSON");
    println!("wrote {}", out.display());
}
