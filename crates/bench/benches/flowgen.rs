fn main() {}
