fn main() {}
