//! Alignment advisor over traced TATP runs: both engines execute the same
//! skewed TATP mix with access tracing enabled, then
//! `dora_designer::advise_events` scores every recorded access against
//! DORA's routing table. DORA's thread-to-data assignment is
//! partition-aligned by construction (its misaligned remainder is the
//! deliberate secondary-action traffic); the conventional engine's
//! thread-to-transaction assignment scatters the same accesses across all
//! workers, and the advisor quantifies exactly that difference — the
//! number a designer would act on when deciding what to route.
//!
//! Run with `cargo bench --bench alignment_advisor`. Flags: `--quick`,
//! `--compare <path>`, `--out <path>`, `--subscribers <n>`, `--total <n>`.
//! Writes `BENCH_alignment_advisor.json`; each engine row's `extra` map
//! carries `traced_accesses`, `misaligned`, `misaligned_pct`, and
//! `tables_flagged` (tables with at least one misaligned access).

use std::sync::Arc;
use std::time::Instant;

use dora_bench::driver::BenchArgs;
use dora_bench::report::{workspace_root, BenchReport, Scenario};
use dora_core::executor::{DoraEngine, DoraEngineConfig};
use dora_designer::advise_events;
use dora_engine_conv::{ConvEngine, ConvEngineConfig};
use dora_storage::db::Database;
use dora_storage::trace::AccessEvent;
use dora_workloads::tatp::{flow_of, request_of, TatpMix, TatpWorkload};

const WORKERS: usize = 4;
const THETA: f64 = 0.8;

fn main() {
    let args = BenchArgs::parse(std::env::args().skip(1));
    let baseline = args.compare.as_deref().map(|p| {
        std::fs::read_to_string(p)
            .or_else(|_| std::fs::read_to_string(workspace_root().join(p)))
            .expect("read --compare report")
    });
    let subscribers = args
        .subscribers
        .unwrap_or(if args.quick { 256 } else { 2_000 });
    let total = args
        .total
        .unwrap_or(if args.quick { 4_000 } else { 20_000 });
    let wl = TatpWorkload {
        subscribers,
        seed: 42,
    };

    let mut runs = Vec::new();
    for engine_kind in ["dora", "conventional"] {
        let db = Arc::new(Database::default());
        let tables = wl.load(&db);
        let routing = wl.routing(tables, WORKERS);
        let mut mix = TatpMix::with_skew(subscribers, 1, THETA);
        let (committed, aborted, elapsed, events): (u64, u64, _, Vec<AccessEvent>) =
            if engine_kind == "dora" {
                let engine = DoraEngine::new(
                    db.clone(),
                    routing.clone(),
                    DoraEngineConfig {
                        workers: WORKERS,
                        ..Default::default()
                    },
                );
                engine.trace().set_enabled(true);
                let started = Instant::now();
                let (mut c, mut a) = (0u64, 0u64);
                for _ in 0..total {
                    if engine
                        .execute(flow_of(tables, &mix.next_op(), None))
                        .is_committed()
                    {
                        c += 1;
                    } else {
                        a += 1;
                    }
                }
                let elapsed = started.elapsed();
                let events = engine.trace().snapshot();
                engine.shutdown();
                (c, a, elapsed, events)
            } else {
                let engine = ConvEngine::new(
                    db.clone(),
                    ConvEngineConfig {
                        workers: WORKERS,
                        max_retries: 10,
                    },
                );
                engine.trace().set_enabled(true);
                let started = Instant::now();
                let (mut c, mut a) = (0u64, 0u64);
                for _ in 0..total {
                    if engine
                        .execute(request_of(tables, &mix.next_op(), None))
                        .is_committed()
                    {
                        c += 1;
                    } else {
                        a += 1;
                    }
                }
                let elapsed = started.elapsed();
                let events = engine.trace().snapshot();
                (c, a, elapsed, events)
            };

        // Score the trace against the partitioning DORA runs with: how
        // much of the engine's actual execution was on the routing owner?
        let report = advise_events(&events, &routing, WORKERS);
        let traced: u64 = report.entries.iter().map(|e| e.total).sum();
        let misaligned: u64 = report.entries.iter().map(|e| e.misaligned).sum();
        let flagged = report.offenders().count();
        eprintln!("== {engine_kind} ==\n{report}");
        runs.push(Scenario {
            engine: if engine_kind == "dora" {
                "dora"
            } else {
                "conventional"
            },
            scenario: format!("zipf={THETA:.2}"),
            workers: WORKERS,
            clients: 1,
            committed,
            aborted,
            secondary_reads: 0,
            secondary_retries: 0,
            log_waits: 0,
            txn_acquisitions: 0,
            queue_peak: 0,
            busy_ns: 0,
            buffer_hits: 0,
            buffer_misses: 0,
            buffer_evictions: 0,
            buffer_table_waits: 0,
            buffer_latch_waits: 0,
            elapsed_secs: elapsed.as_secs_f64(),
            critical_sections: 0,
            extra: vec![
                ("traced_accesses", traced as f64),
                ("misaligned", misaligned as f64),
                (
                    "misaligned_pct",
                    if traced == 0 {
                        0.0
                    } else {
                        100.0 * misaligned as f64 / traced as f64
                    },
                ),
                ("tables_flagged", flagged as f64),
            ],
        });
    }

    let report = BenchReport {
        bench: "alignment_advisor",
        workload: format!(
            "tatp standard mix subscribers={subscribers} workers={WORKERS} \
             total={total} zipf={THETA} traced, advisor vs DORA routing"
        ),
        physical_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        quick: args.quick,
        runs,
    };
    print!("{}", report.to_table());

    let out = args
        .out
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| workspace_root().join("BENCH_alignment_advisor.json"));
    report
        .write_json(&out, baseline.as_deref())
        .expect("write bench JSON");
    println!("wrote {}", out.display());
}
