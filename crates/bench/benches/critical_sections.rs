//! The paper's core mechanism figure: centralized lock-manager critical
//! sections entered per committed transaction. The conventional engine
//! pays several per data access; DORA must pay exactly zero.
//!
//! Since the storage layer went lock-free end to end, the bench also
//! reports the two *global* acquisition counters the lock-manager number
//! never covered: `log_waits` (contended WAL waits — group-commit rides,
//! ring wrap-around, straggler stalls) and `txn_table_acquisitions`
//! (transaction-table stripe locks; always slot-local). Per committed
//! transaction, DORA's log waits must stay at group-commit-only (≤ 1
//! contended wait per commit, enforced below) and validated reads
//! contribute **zero** of either — stamp checks are plain atomic loads
//! (`db::tests::validated_reads_take_zero_locks`).
//!
//! Schema v6 extends the same argument one layer down: the buffer pool's
//! page table is sharded and a hit pins frames with atomics, so DORA's
//! contended `buffer_table_waits` per transaction must stay ~0 (enforced
//! below at < 0.01/txn) — the figure that motivated replacing the global
//! `Mutex<HashMap>` page table.
//!
//! Run with `cargo bench --bench critical_sections`. Flags: `--quick`,
//! `--compare <path>`, `--out <path>`, `--audit-pct <n>`. Writes
//! `BENCH_critical_sections.json` at the workspace root (schema in
//! `dora_bench::report`). The run aborts (panics) if DORA enters even one
//! critical section — that would mean the bypass path regressed.

use dora_bench::driver::{run_transfer, BenchArgs, EngineKind, TransferRun};
use dora_bench::report::{workspace_root, BenchReport};
use dora_workloads::transfer::TransferWorkload;

fn main() {
    let args = BenchArgs::parse(std::env::args().skip(1));
    // Read the comparison report up front: a bad path must fail before
    // minutes of measurement, not after. Relative paths are tried against
    // the current directory first, then the workspace root (cargo runs
    // bench binaries from the package directory).
    let baseline = args.compare.as_deref().map(|p| {
        std::fs::read_to_string(p)
            .or_else(|_| std::fs::read_to_string(workspace_root().join(p)))
            .expect("read --compare report")
    });
    let wl = TransferWorkload {
        accounts: if args.quick { 128 } else { 512 },
        initial_balance: 1_000,
    };
    let workers = 4;
    let per_client = if args.quick { 250 } else { 4_000 };
    let locality_pct = 90;

    let mut runs = Vec::new();
    for engine in [EngineKind::Conventional, EngineKind::Dora] {
        let scenario = run_transfer(
            &wl,
            TransferRun {
                engine,
                workers,
                clients: workers * 2,
                per_client,
                locality_pct,
                audit_pct: args.audit_pct.unwrap_or(0),
                client_retries: 10,
            },
        );
        let committed = scenario.committed.max(1) as f64;
        let per_txn = scenario.critical_sections as f64 / committed;
        let log_per_txn = scenario.log_waits as f64 / committed;
        let txn_per_txn = scenario.txn_acquisitions as f64 / committed;
        let buf_table_per_txn = scenario.buffer_table_waits as f64 / committed;
        let buf_latch_per_txn = scenario.buffer_latch_waits as f64 / committed;
        eprintln!(
            "  {:<13} critical sections: {} total, {:.2}/txn | log waits {:.3}/txn | \
             txn-table stripe acquisitions {:.2}/txn | buffer table waits {:.3}/txn | \
             buffer latch waits {:.3}/txn",
            scenario.engine,
            scenario.critical_sections,
            per_txn,
            log_per_txn,
            txn_per_txn,
            buf_table_per_txn,
            buf_latch_per_txn
        );
        if scenario.engine == "dora" {
            assert_eq!(
                scenario.critical_sections, 0,
                "DORA must never enter lock-manager critical sections"
            );
            // Group-commit-only: the one contended wait a commit may pay
            // for riding a concurrent flush, plus (rare) wrap-around and
            // straggler stalls. Several waits per transaction would mean
            // a global lock crept back onto the log hot path.
            assert!(
                log_per_txn <= 1.5,
                "DORA log waits {log_per_txn:.3}/txn exceed the group-commit-only bound"
            );
            // The decentralized pool's claim: partition-affine access
            // means workers essentially never collide on a page-table
            // shard. A centralized Mutex<HashMap> here measured in the
            // hundreds of thousands of waits for this run shape.
            assert!(
                buf_table_per_txn < 0.01,
                "DORA buffer table waits {buf_table_per_txn:.4}/txn — the sharded \
                 page table is contending like a central latch"
            );
        }
        runs.push(scenario);
    }

    let report = BenchReport {
        bench: "critical_sections",
        workload: format!(
            "transfer accounts={} initial_balance={} locality={}% workers={} per_client={}",
            wl.accounts, wl.initial_balance, locality_pct, workers, per_client
        ),
        physical_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        quick: args.quick,
        runs,
    };
    print!("{}", report.to_table());

    let out = args
        .out
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| workspace_root().join("BENCH_critical_sections.json"));
    report
        .write_json(&out, baseline.as_deref())
        .expect("write bench JSON");
    println!("wrote {}", out.display());
}
