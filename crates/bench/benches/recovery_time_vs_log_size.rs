//! Recovery time as a function of log size, with and without a fuzzy
//! checkpoint.
//!
//! For each swept log size `log=<N>` the bench builds a WAL of `N`
//! committed transfer transactions on an in-memory simulated file
//! system (so the numbers isolate CPU replay cost from disk speed),
//! crashes it, and measures wall-clock recovery into a fresh database:
//!
//! * engine `"conventional"` — full-log replay from LSN 1 (no
//!   checkpoint was ever taken);
//! * engine `"dora"` — a fuzzy checkpoint was taken at ~90% of the
//!   traffic, so recovery loads the image and replays only the tail.
//!
//! The engine labels keep the rows flowing through `compare.rs`: its
//! default `ratio` metric gates the checkpointed : full-replay speedup
//! per scenario, which divides out the host's absolute speed — exactly
//! the property that must not regress (a checkpoint that stops helping
//! shows up as the ratio collapsing toward 1). `committed` counts the
//! transactions whose effects were replayed, so `throughput_tps` is the
//! replay rate.
//!
//! Run with `cargo bench --bench recovery_time_vs_log_size`. Flags:
//! `--quick`, `--compare <path>`, `--out <path>`. Writes
//! `BENCH_recovery_time_vs_log_size.json` at the workspace root.

use std::time::Instant;

use dora_bench::driver::BenchArgs;
use dora_bench::report::{workspace_root, BenchReport, Scenario};
use dora_workloads::dora_storage::db::{Database, LockingPolicy};
use dora_workloads::dora_storage::io::SimFs;
use dora_workloads::dora_storage::schema::{ColumnDef, TableSchema};
use dora_workloads::dora_storage::segment::WalConfig;
use dora_workloads::dora_storage::types::{DataType, TableId, Value};

const P: LockingPolicy = LockingPolicy::Bypass;
const ACCOUNTS: i64 = 4_096;
// Small enough that every sweep size seals multiple segments — a fuzzy
// checkpoint can only truncate whole sealed segments, and the bench's
// point is the checkpointed tail replay vs the full replay.
const SEGMENT_BYTES: usize = 32 << 10;

fn create_accounts(db: &Database) -> TableId {
    db.create_table(TableSchema::new(
        "accounts",
        vec![
            ColumnDef::new("id", DataType::BigInt),
            ColumnDef::new("bal", DataType::BigInt),
        ],
        vec![0],
    ))
    .unwrap()
}

fn xorshift(mut x: u64) -> u64 {
    x |= 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// Builds a WAL of `txns` committed transfers (plus the initial load) on
/// `fs`, optionally taking a fuzzy checkpoint after 90% of the traffic,
/// then crashes the file system. Returns the transaction count whose
/// effects the log carries.
fn build_log(fs: &SimFs, txns: u64, checkpoint: bool) -> u64 {
    let cfg = WalConfig::sim("/wal", fs.clone()).with_segment_bytes(SEGMENT_BYTES);
    let db = Database::default();
    let t = create_accounts(&db);
    db.recover_and_attach_wal(cfg).unwrap();

    let load = db.begin();
    for id in 0..ACCOUNTS {
        db.insert(load, t, vec![Value::BigInt(id), Value::BigInt(1_000)], P)
            .unwrap();
    }
    db.commit_policy(load, P).unwrap();

    let checkpoint_at = txns * 9 / 10;
    for i in 0..txns {
        let r0 = xorshift(0x2545_f491 ^ i);
        let r1 = xorshift(r0);
        let src = (r0 % ACCOUNTS as u64) as i64;
        let dst = ((src as u64 + 1 + r1 % (ACCOUNTS as u64 - 1)) % ACCOUNTS as u64) as i64;
        let txn = db.begin();
        db.update(
            txn,
            t,
            &[Value::BigInt(src)],
            &[(1, Value::BigInt(i as i64))],
            P,
        )
        .unwrap();
        db.update(
            txn,
            t,
            &[Value::BigInt(dst)],
            &[(1, Value::BigInt(-(i as i64)))],
            P,
        )
        .unwrap();
        db.commit_policy(txn, P).unwrap();
        if checkpoint && i + 1 == checkpoint_at {
            db.checkpoint().unwrap();
        }
    }
    fs.crash(0x5eed ^ txns);
    txns + 1 // transfers plus the load transaction
}

fn main() {
    let args = BenchArgs::parse(std::env::args().skip(1));
    let baseline = args.compare.as_deref().map(|p| {
        std::fs::read_to_string(p)
            .or_else(|_| std::fs::read_to_string(workspace_root().join(p)))
            .expect("read --compare report")
    });

    // Quick still sweeps multi-millisecond recoveries: sub-millisecond
    // ones are timer-noise-dominated and make the CI ratio gate flap.
    let sizes: &[u64] = if args.quick {
        &[2_000, 8_000]
    } else {
        &[2_000, 8_000, 32_000]
    };
    let repeats = args.repeats.unwrap_or(5);

    let mut runs = Vec::new();
    for &n in sizes {
        for (engine, checkpoint) in [("conventional", false), ("dora", true)] {
            // Build once per (size, mode); recovery itself is repeated
            // and the best time kept (standard best-of-N noise damping).
            let fs = SimFs::new();
            let committed = build_log(&fs, n, checkpoint);
            let cfg = WalConfig::sim("/wal", fs.clone()).with_segment_bytes(SEGMENT_BYTES);

            let mut best = f64::MAX;
            let mut report = None;
            for _ in 0..repeats {
                let db = Database::default();
                create_accounts(&db);
                let start = Instant::now();
                let r = db.recover_and_attach_wal(cfg.clone()).unwrap();
                let secs = start.elapsed().as_secs_f64();
                if secs < best {
                    best = secs;
                    report = Some(r);
                }
                assert_eq!(
                    db.row_count(db.table_id("accounts").unwrap()).unwrap(),
                    ACCOUNTS as usize
                );
            }
            let report = report.unwrap();
            eprintln!(
                "  log={n:<6} {engine:<13} recovery {:.1} ms | redone {} skipped {} \
                 snapshot rows {} checkpoint lsn {}",
                best * 1e3,
                report.redone,
                report.skipped,
                report.snapshot_rows,
                report.checkpoint_lsn
            );
            if checkpoint {
                assert!(
                    report.checkpoint_lsn > 0 && report.snapshot_rows > 0,
                    "checkpointed recovery must come from the image"
                );
            } else {
                assert_eq!(report.checkpoint_lsn, 0, "no checkpoint was taken");
            }

            runs.push(Scenario {
                engine,
                scenario: format!("log={n}"),
                workers: 1,
                clients: 1,
                committed,
                aborted: 0,
                secondary_reads: 0,
                secondary_retries: 0,
                log_waits: 0,
                txn_acquisitions: 0,
                queue_peak: 0,
                busy_ns: 0,
                buffer_hits: 0,
                buffer_misses: 0,
                buffer_evictions: 0,
                buffer_table_waits: 0,
                buffer_latch_waits: 0,
                elapsed_secs: best,
                critical_sections: 0,
                extra: vec![
                    ("redone_records", report.redone as f64),
                    ("skipped_records", report.skipped as f64),
                    ("snapshot_rows", report.snapshot_rows as f64),
                ],
            });
        }
    }

    let report = BenchReport {
        bench: "recovery_time_vs_log_size",
        workload: format!(
            "transfer log replay accounts={ACCOUNTS} segment_bytes={SEGMENT_BYTES} \
             checkpoint_at=90% sizes={sizes:?}"
        ),
        physical_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        quick: args.quick,
        runs,
    };
    print!("{}", report.to_table());

    let out = args
        .out
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| workspace_root().join("BENCH_recovery_time_vs_log_size.json"));
    report
        .write_json(&out, baseline.as_deref())
        .expect("write bench JSON");
    println!("wrote {}", out.display());
}
