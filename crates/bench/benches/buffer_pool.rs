//! Buffer-pool residency sweep: TATP throughput as the pool shrinks
//! from "everything fits" to one-tenth of the working set.
//!
//! Three configurations per engine, keyed `resident=<pct>`:
//!
//! * `resident=100` — the in-memory page store every committed pre-v6
//!   baseline was recorded with (no store I/O at all).
//! * `resident=50` / `resident=10` — a file-backed page store with the
//!   pool capped at half / one-tenth of the loaded working set, so the
//!   uniform TATP mix runs through the miss → evict → background
//!   writeback path continuously.
//!
//! The interesting rows are the v6 buffer counters, not just tps: hit
//! rate and evictions show the pool actually churning, and
//! `buffer_table_waits` / `buffer_latch_waits` staying ~0 per
//! transaction is the decentralized design's claim under exactly the
//! load where a global page-table mutex would serialize every miss.
//! The workload's integrity checks still run (a pool that loses a page
//! update fails the bench loudly).
//!
//! Run with `cargo bench --bench buffer_pool`. Flags: `--quick` (CI
//! smoke), `--compare <path>`, `--out <path>`, `--subscribers <n>`,
//! `--total <n>`, `--repeats <n>`. Writes `BENCH_buffer_pool.json` at
//! the workspace root.

use dora_bench::driver::{
    run_tatp_best_of, BenchArgs, EngineKind, StorageKind, TatpMixKind, TatpRun,
};
use dora_bench::report::{workspace_root, BenchReport};
use dora_storage::db::Database;
use dora_workloads::tatp::TatpWorkload;

fn main() {
    let args = BenchArgs::parse(std::env::args().skip(1));
    let baseline = args.compare.as_deref().map(|p| {
        std::fs::read_to_string(p)
            .or_else(|_| std::fs::read_to_string(workspace_root().join(p)))
            .expect("read --compare report")
    });
    let workers = 4;
    let clients = 8;
    let subscribers = args
        .subscribers
        .unwrap_or(if args.quick { 1_000 } else { 10_000 });
    let total_per_scenario = args
        .total
        .unwrap_or(if args.quick { 16_000 } else { 48_000 });
    let repeats = args.repeats.unwrap_or(if args.quick { 1 } else { 3 });
    let wl = TatpWorkload {
        subscribers,
        seed: 42,
    };

    // Size the pool from the workload's *measured* footprint: load once
    // into a throwaway in-memory database and count allocated pages, so
    // `resident=50` means 50% of this exact working set regardless of
    // subscriber count or row-packing changes.
    let working_set = {
        let db = Database::default();
        wl.load(&db);
        db.allocated_pages()
    } as usize;
    eprintln!("working set: {working_set} pages");

    // The floor keeps tiny quick runs above the concurrency watermark:
    // a pool smaller than the number of simultaneously pinned pages
    // would abort on BufferPoolFull instead of measuring eviction.
    let frames_for = |pct: usize| (working_set * pct / 100).max(16);
    let residencies = [
        (100u64, StorageKind::InMemory),
        (
            50,
            StorageKind::Disk {
                frames: frames_for(50),
            },
        ),
        (
            10,
            StorageKind::Disk {
                frames: frames_for(10),
            },
        ),
    ];

    let mut runs = Vec::new();
    for (resident_pct, storage) in residencies {
        for engine in [EngineKind::Conventional, EngineKind::Dora] {
            let mut scenario = run_tatp_best_of(
                &wl,
                TatpRun {
                    engine,
                    workers,
                    clients,
                    per_client: total_per_scenario / clients,
                    // Uniform subscriber choice maximizes page spread —
                    // the worst case for a bounded pool, which is the
                    // point of the sweep.
                    mix: TatpMixKind::Skewed { theta: 0.0 },
                    balancer: false,
                    client_retries: 10,
                    storage,
                    kill: None,
                },
                repeats,
            );
            // The swept knob is residency, not the mix: rekey the row.
            scenario.scenario = format!("resident={resident_pct}");
            let touches = scenario.buffer_hits + scenario.buffer_misses;
            eprintln!(
                "  {:<13} resident={:<3} committed={:<6} tps={:<9.1} hit_rate={:.1}% \
                 evictions={} table_waits={}",
                scenario.engine,
                resident_pct,
                scenario.committed,
                scenario.throughput_tps(),
                if touches > 0 {
                    scenario.buffer_hits as f64 / touches as f64 * 100.0
                } else {
                    100.0
                },
                scenario.buffer_evictions,
                scenario.buffer_table_waits,
            );
            runs.push(scenario);
        }
    }

    let report = BenchReport {
        bench: "buffer_pool",
        workload: format!(
            "tatp uniform mix subscribers={subscribers} workers={workers} clients={clients} \
             total_per_scenario={total_per_scenario} working_set={working_set} pages, \
             residency sweep in-memory vs 50% vs 10%"
        ),
        physical_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        quick: args.quick,
        runs,
    };
    print!("{}", report.to_table());

    let out = args
        .out
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| workspace_root().join("BENCH_buffer_pool.json"));
    report
        .write_json(&out, baseline.as_deref())
        .expect("write bench JSON");
    println!("wrote {}", out.display());
}
