//! The paper's headline figure: committed transactions per second as the
//! number of worker threads grows, DORA vs the conventional engine, on the
//! multi-partition transfer workload.
//!
//! Run with `cargo bench --bench throughput_vs_cores`. Flags:
//! `--quick` (CI smoke), `--compare <path>` (embed a previous report as
//! `"baseline"`), `--out <path>`, `--accounts <n>`, `--total <n>`,
//! `--repeats <n>`. Writes
//! `BENCH_throughput_vs_cores.json` at the workspace root; the JSON schema
//! is documented in `dora_bench::report`.
//!
//! On machines with fewer physical cores than the swept worker counts the
//! curve measures scheduling overhead rather than true hardware scaling —
//! the report records `physical_cores` so readers can tell.

use dora_bench::driver::{run_transfer_best_of, BenchArgs, EngineKind, TransferRun};
use dora_bench::report::{workspace_root, BenchReport};
use dora_workloads::transfer::TransferWorkload;

fn main() {
    let args = BenchArgs::parse(std::env::args().skip(1));
    // Read the comparison report up front: a bad path must fail before
    // minutes of measurement, not after. Relative paths are tried against
    // the current directory first, then the workspace root (cargo runs
    // bench binaries from the package directory).
    let baseline = args.compare.as_deref().map(|p| {
        std::fs::read_to_string(p)
            .or_else(|_| std::fs::read_to_string(workspace_root().join(p)))
            .expect("read --compare report")
    });
    let wl = TransferWorkload {
        accounts: args.accounts.unwrap_or(if args.quick { 128 } else { 1024 }),
        initial_balance: 1_000,
    };
    let worker_counts: &[usize] = if args.quick { &[2] } else { &[1, 2, 4, 8] };
    // Fixed offered load per scenario (split across clients) so every
    // timed window is long enough to measure: ~1s on the reference 1-core
    // box in full mode, a blink in --quick CI smoke.
    // Quick mode still measures ~0.1s windows: 2000 transactions was a
    // ~15ms blink whose ratio swung enough to flake the CI gate.
    let total_per_scenario = args
        .total
        .unwrap_or(if args.quick { 12_000 } else { 96_000 });
    // TPC-C-style locality: most transfers stay partition-local, a tail
    // crosses partitions and exercises the rendezvous protocol.
    let locality_pct = 90;

    let mut runs = Vec::new();
    // Best-of-N damps scheduler noise on shared hosts; inputs are
    // deterministic so repeats do identical work.
    let repeats = args.repeats.unwrap_or(if args.quick { 1 } else { 3 });
    for &workers in worker_counts {
        for engine in [EngineKind::Conventional, EngineKind::Dora] {
            let clients = workers * 2;
            let scenario = run_transfer_best_of(
                &wl,
                TransferRun {
                    engine,
                    workers,
                    clients,
                    per_client: total_per_scenario / clients,
                    locality_pct,
                    audit_pct: args.audit_pct.unwrap_or(0),
                    client_retries: 10,
                },
                repeats,
            );
            eprintln!(
                "  {:<13} workers={:<2} committed={:<6} tps={:.1}",
                scenario.engine,
                workers,
                scenario.committed,
                scenario.throughput_tps()
            );
            runs.push(scenario);
        }
    }

    let report = BenchReport {
        bench: "throughput_vs_cores",
        workload: format!(
            "transfer accounts={} initial_balance={} locality={}% total_per_scenario={} clients=2*workers",
            wl.accounts, wl.initial_balance, locality_pct, total_per_scenario
        ),
        physical_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        quick: args.quick,
        runs,
    };
    print!("{}", report.to_table());

    let out = args
        .out
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| workspace_root().join("BENCH_throughput_vs_cores.json"));
    report
        .write_json(&out, baseline.as_deref())
        .expect("write bench JSON");
    println!("wrote {}", out.display());
}
