//! Partition-local lock tables.
//!
//! Every DORA worker thread owns one `LocalLockTable`. Because the table is
//! accessed *only* by its owning thread, it needs no latching at all — this
//! is the heart of the paper's argument: by making accesses predictable
//! (thread-to-data), the lock state for a partition's records can live in a
//! plain, uncontended data structure, and the centralized lock manager's
//! critical sections disappear from the execution path.
//!
//! The table only allows an action to run when it has no conflicting
//! accesses with actions of other in-flight transactions; an action that
//! can execute legally here can also execute legally in the scope of the
//! whole database, because every access to these keys is routed to this
//! worker.

use std::collections::HashMap;

use dora_storage::types::{TableId, TxnId};

/// Access intent declared by an action for one key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum LockClass {
    /// The action only reads the key.
    Read,
    /// The action may modify the key.
    Write,
}

impl LockClass {
    /// Whether two concurrent accesses of these classes conflict.
    pub fn conflicts(self, other: LockClass) -> bool {
        matches!((self, other), (LockClass::Write, _) | (_, LockClass::Write))
    }
}

#[derive(Debug, Default)]
struct KeyState {
    /// Transactions currently holding the key in read mode.
    readers: Vec<TxnId>,
    /// Transaction currently holding the key in write mode, if any.
    writer: Option<TxnId>,
}

/// One key's lock holders, detached from its table so a range migration
/// can carry them to the destination partition inside the seal token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MovedLock {
    /// Table the key belongs to.
    pub table: TableId,
    /// The routing key.
    pub key: i64,
    /// Transactions holding the key in read mode.
    pub readers: Vec<TxnId>,
    /// Transaction holding the key in write mode, if any.
    pub writer: Option<TxnId>,
}

impl KeyState {
    fn is_free(&self) -> bool {
        self.readers.is_empty() && self.writer.is_none()
    }
}

/// Statistics for one local lock table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LocalLockStats {
    /// Lock acquisitions granted.
    pub acquired: u64,
    /// Acquisition attempts rejected because of a conflict (action deferred).
    pub conflicts: u64,
    /// Locks released.
    pub released: u64,
}

/// A single worker's private lock table. **Not** thread-safe by design — it
/// must only ever be touched by its owning worker thread.
#[derive(Debug, Default)]
pub struct LocalLockTable {
    keys: HashMap<(TableId, i64), KeyState>,
    stats: LocalLockStats,
}

impl LocalLockTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` if `txn` could acquire every `(table, key, class)` in
    /// `requests` simultaneously (ignoring locks it already holds).
    pub fn can_acquire(&self, txn: TxnId, requests: &[(TableId, i64, LockClass)]) -> bool {
        requests
            .iter()
            .all(|&(table, key, class)| match self.keys.get(&(table, key)) {
                None => true,
                Some(state) => {
                    let other_writer = state.writer.is_some_and(|w| w != txn);
                    let other_readers = state.readers.iter().any(|&r| r != txn);
                    match class {
                        LockClass::Read => !other_writer,
                        LockClass::Write => !other_writer && !other_readers,
                    }
                }
            })
    }

    /// Atomically acquires all requests for `txn`, or none of them.
    /// Returns `true` on success.
    pub fn try_acquire(&mut self, txn: TxnId, requests: &[(TableId, i64, LockClass)]) -> bool {
        if !self.can_acquire(txn, requests) {
            self.stats.conflicts += 1;
            return false;
        }
        for &(table, key, class) in requests {
            let state = self.keys.entry((table, key)).or_default();
            match class {
                LockClass::Read => {
                    if !state.readers.contains(&txn) {
                        state.readers.push(txn);
                    }
                }
                LockClass::Write => {
                    // A transaction upgrading its own read keeps a single
                    // write entry.
                    state.readers.retain(|&r| r != txn);
                    state.writer = Some(txn);
                }
            }
            self.stats.acquired += 1;
        }
        true
    }

    /// Releases `txn`'s holds on exactly the given keys and returns the
    /// keys where something was actually released — the set a worker must
    /// wake parked actions on.
    ///
    /// This is the executor's hot release path: a `Finish` message carries
    /// the keys the finished transaction touched on this partition, so
    /// release is O(keys held by the transaction) instead of a scan of the
    /// whole table (which [`release_all`](Self::release_all) performs).
    pub fn release_keys(&mut self, txn: TxnId, keys: &[(TableId, i64)]) -> Vec<(TableId, i64)> {
        let mut released = Vec::new();
        self.release_keys_into(txn, keys, &mut released);
        released
    }

    /// Like [`release_keys`](Self::release_keys), but appends the
    /// actually-released keys to a caller-owned buffer instead of
    /// allocating — the executor feeds its per-worker wakeup list
    /// directly, so the per-transaction release allocates nothing.
    /// Returns how many keys were appended.
    pub fn release_keys_into(
        &mut self,
        txn: TxnId,
        keys: &[(TableId, i64)],
        released: &mut Vec<(TableId, i64)>,
    ) -> usize {
        let before_len = released.len();
        for &(table, key) in keys {
            let Some(state) = self.keys.get_mut(&(table, key)) else {
                continue;
            };
            let before = state.readers.len() + usize::from(state.writer.is_some());
            state.readers.retain(|&r| r != txn);
            if state.writer == Some(txn) {
                state.writer = None;
            }
            let after = state.readers.len() + usize::from(state.writer.is_some());
            if after < before {
                self.stats.released += (before - after) as u64;
                released.push((table, key));
            }
            if state.is_free() {
                self.keys.remove(&(table, key));
            }
        }
        released.len() - before_len
    }

    /// Releases every lock held by `txn` (called when the transaction
    /// finishes system-wide). Returns the number of released entries.
    pub fn release_all(&mut self, txn: TxnId) -> usize {
        let mut released = 0;
        self.keys.retain(|_, state| {
            let before = state.readers.len() + usize::from(state.writer.is_some());
            state.readers.retain(|&r| r != txn);
            if state.writer == Some(txn) {
                state.writer = None;
            }
            let after = state.readers.len() + usize::from(state.writer.is_some());
            released += before - after;
            !state.is_free()
        });
        self.stats.released += released as u64;
        released
    }

    /// Whether `txn` already holds `(table, key)` in a mode covering
    /// `class`.
    pub fn holds(&self, txn: TxnId, table: TableId, key: i64, class: LockClass) -> bool {
        match self.keys.get(&(table, key)) {
            None => false,
            Some(state) => match class {
                LockClass::Read => state.writer == Some(txn) || state.readers.contains(&txn),
                LockClass::Write => state.writer == Some(txn),
            },
        }
    }

    /// Whether `txn` holds `(table, key)` in *any* mode. Used by the
    /// executor's fairness barrier: an action touching keys its
    /// transaction already owns — including a read it wants to upgrade —
    /// must not queue behind strangers, who cannot be granted until this
    /// transaction finishes anyway (waiting would deadlock).
    pub fn holds_any(&self, txn: TxnId, table: TableId, key: i64) -> bool {
        self.holds(txn, table, key, LockClass::Read)
    }

    /// Removes and returns the lock state of every key of `table` in
    /// `[lo, hi)`, in ascending key order. This is the source half of a
    /// range migration's seal token: the holders move to the destination
    /// partition's table via [`absorb`](Self::absorb), so transactions
    /// that acquired before the migration release (and wake waiters) at
    /// the key's *new* owner. Stats are unchanged — ownership moves,
    /// nothing is granted or released.
    pub fn extract_range(&mut self, table: TableId, lo: i64, hi: i64) -> Vec<MovedLock> {
        let mut moved = Vec::new();
        self.keys.retain(|&(t, key), state| {
            if t == table && key >= lo && key < hi {
                moved.push(MovedLock {
                    table: t,
                    key,
                    readers: std::mem::take(&mut state.readers),
                    writer: state.writer.take(),
                });
                false
            } else {
                true
            }
        });
        moved.sort_by_key(|m| m.key);
        moved
    }

    /// Installs lock state extracted from another partition's table (the
    /// destination half of a range migration). Holders merge with any
    /// existing entries; a writer never overwrites one already present
    /// (the protocol guarantees the destination has no entries for the
    /// moving range, so in practice the slots are empty).
    pub fn absorb(&mut self, moved: Vec<MovedLock>) {
        for m in moved {
            let state = self.keys.entry((m.table, m.key)).or_default();
            for r in m.readers {
                if !state.readers.contains(&r) {
                    state.readers.push(r);
                }
            }
            if state.writer.is_none() {
                state.writer = m.writer;
            }
            if state.is_free() {
                self.keys.remove(&(m.table, m.key));
            }
        }
    }

    /// Removes and returns the lock state of **every** key in the table,
    /// in deterministic `(table, key)` order. This is the supervisor's
    /// crash-salvage path: when a partition worker dies, every holder in
    /// its table belongs to a transaction that must abort (the dead
    /// worker's isolation state can no longer be trusted), but the
    /// entries themselves are seeded into the replacement worker's table
    /// via [`absorb`](Self::absorb) so the keys stay covered until those
    /// doomed transactions finalize and release them through the normal
    /// `Finish` broadcast. Stats are unchanged — ownership moves, nothing
    /// is granted or released.
    pub fn take_all(&mut self) -> Vec<MovedLock> {
        let mut moved: Vec<MovedLock> = self
            .keys
            .drain()
            .map(|((table, key), mut state)| MovedLock {
                table,
                key,
                readers: std::mem::take(&mut state.readers),
                writer: state.writer.take(),
            })
            .collect();
        moved.sort_by_key(|m| (m.table, m.key));
        moved
    }

    /// Number of keys with at least one holder.
    pub fn locked_keys(&self) -> usize {
        self.keys.len()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> LocalLockStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_class_conflicts() {
        assert!(!LockClass::Read.conflicts(LockClass::Read));
        assert!(LockClass::Read.conflicts(LockClass::Write));
        assert!(LockClass::Write.conflicts(LockClass::Read));
        assert!(LockClass::Write.conflicts(LockClass::Write));
    }

    #[test]
    fn readers_share_writers_exclude() {
        let mut t = LocalLockTable::new();
        assert!(t.try_acquire(1, &[(5, 10, LockClass::Read)]));
        assert!(t.try_acquire(2, &[(5, 10, LockClass::Read)]));
        // Writer blocked by readers.
        assert!(!t.try_acquire(3, &[(5, 10, LockClass::Write)]));
        // Different key is free.
        assert!(t.try_acquire(3, &[(5, 11, LockClass::Write)]));
        // Reader blocked by writer.
        assert!(!t.try_acquire(4, &[(5, 11, LockClass::Read)]));
        assert_eq!(t.locked_keys(), 2);
        assert_eq!(t.stats().conflicts, 2);
    }

    #[test]
    fn acquisition_is_all_or_nothing() {
        let mut t = LocalLockTable::new();
        assert!(t.try_acquire(1, &[(1, 1, LockClass::Write)]));
        // txn 2 wants keys 1 (held) and 2 (free): must get neither.
        assert!(!t.try_acquire(2, &[(1, 2, LockClass::Write), (1, 1, LockClass::Write)]));
        assert!(
            t.try_acquire(3, &[(1, 2, LockClass::Write)]),
            "key 2 must still be free"
        );
    }

    #[test]
    fn same_txn_reacquires_and_upgrades() {
        let mut t = LocalLockTable::new();
        assert!(t.try_acquire(1, &[(1, 5, LockClass::Read)]));
        assert!(t.try_acquire(1, &[(1, 5, LockClass::Read)]));
        // Upgrade own read to write while no one else holds it.
        assert!(t.try_acquire(1, &[(1, 5, LockClass::Write)]));
        // Other readers are now excluded.
        assert!(!t.try_acquire(2, &[(1, 5, LockClass::Read)]));
        // With another reader present, upgrade must fail.
        let mut t2 = LocalLockTable::new();
        assert!(t2.try_acquire(1, &[(1, 5, LockClass::Read)]));
        assert!(t2.try_acquire(2, &[(1, 5, LockClass::Read)]));
        assert!(!t2.try_acquire(1, &[(1, 5, LockClass::Write)]));
    }

    #[test]
    fn release_unblocks_waiters() {
        let mut t = LocalLockTable::new();
        assert!(t.try_acquire(1, &[(1, 1, LockClass::Write), (1, 2, LockClass::Write)]));
        assert!(!t.try_acquire(2, &[(1, 1, LockClass::Write)]));
        assert_eq!(t.release_all(1), 2);
        assert!(t.try_acquire(2, &[(1, 1, LockClass::Write)]));
        assert_eq!(t.locked_keys(), 1);
        // Releasing a transaction with no locks is a no-op.
        assert_eq!(t.release_all(99), 0);
    }

    #[test]
    fn batched_acquisition_is_order_independent() {
        // (k1, k2) and (k2, k1) describe the same atomic request: whichever
        // transaction arrives second is rejected wholesale either way.
        let mut ab = LocalLockTable::new();
        assert!(ab.try_acquire(1, &[(1, 1, LockClass::Write), (1, 2, LockClass::Write)]));
        assert!(!ab.try_acquire(2, &[(1, 2, LockClass::Write), (1, 1, LockClass::Write)]));

        let mut ba = LocalLockTable::new();
        assert!(ba.try_acquire(1, &[(1, 2, LockClass::Write), (1, 1, LockClass::Write)]));
        assert!(!ba.try_acquire(2, &[(1, 1, LockClass::Write), (1, 2, LockClass::Write)]));
        assert_eq!(ab.locked_keys(), ba.locked_keys());
    }

    #[test]
    fn grant_order_after_release_is_first_retry_wins() {
        let mut t = LocalLockTable::new();
        assert!(t.try_acquire(1, &[(1, 7, LockClass::Write)]));
        // Two waiters conflict while the holder is active...
        assert!(!t.try_acquire(2, &[(1, 7, LockClass::Write)]));
        assert!(!t.try_acquire(3, &[(1, 7, LockClass::Read)]));
        assert_eq!(t.stats().conflicts, 2);
        t.release_all(1);
        // ...after release the table is conflict-free again and the next
        // attempt (the executor retries deferred actions in FIFO order)
        // succeeds no matter its class.
        assert!(t.can_acquire(2, &[(1, 7, LockClass::Write)]));
        assert!(t.can_acquire(3, &[(1, 7, LockClass::Read)]));
        assert!(t.try_acquire(2, &[(1, 7, LockClass::Write)]));
        assert!(!t.try_acquire(3, &[(1, 7, LockClass::Read)]));
    }

    #[test]
    fn readers_drain_before_writer_grant() {
        let mut t = LocalLockTable::new();
        assert!(t.try_acquire(1, &[(1, 5, LockClass::Read)]));
        assert!(t.try_acquire(2, &[(1, 5, LockClass::Read)]));
        assert!(!t.try_acquire(3, &[(1, 5, LockClass::Write)]));
        // One reader leaving is not enough.
        t.release_all(1);
        assert!(!t.try_acquire(3, &[(1, 5, LockClass::Write)]));
        // The last reader leaving is.
        t.release_all(2);
        assert!(t.try_acquire(3, &[(1, 5, LockClass::Write)]));
        assert_eq!(t.locked_keys(), 1);
    }

    #[test]
    fn failed_batch_leaves_no_partial_state_behind() {
        let mut t = LocalLockTable::new();
        assert!(t.try_acquire(1, &[(1, 10, LockClass::Read)]));
        // txn 2's batch fails on key 10; key 11 must remain untouched, so a
        // later exclusive request for it succeeds.
        assert!(!t.try_acquire(2, &[(1, 11, LockClass::Write), (1, 10, LockClass::Write)]));
        assert_eq!(t.locked_keys(), 1, "no residue from the failed batch");
        assert!(t.try_acquire(3, &[(1, 11, LockClass::Write)]));
        // And releasing txn 2 (which holds nothing) is a no-op.
        assert_eq!(t.release_all(2), 0);
    }

    #[test]
    fn holds_reports_mode_coverage() {
        let mut t = LocalLockTable::new();
        assert!(t.try_acquire(1, &[(1, 5, LockClass::Read)]));
        assert!(t.holds(1, 1, 5, LockClass::Read));
        assert!(
            !t.holds(1, 1, 5, LockClass::Write),
            "read does not cover write"
        );
        assert!(t.holds_any(1, 1, 5));
        assert!(!t.holds_any(2, 1, 5));
        assert!(!t.holds_any(1, 1, 6));
        assert!(t.try_acquire(1, &[(1, 5, LockClass::Write)]));
        assert!(t.holds(1, 1, 5, LockClass::Read), "write covers read");
        assert!(t.holds(1, 1, 5, LockClass::Write));
        t.release_all(1);
        assert!(!t.holds_any(1, 1, 5));
    }

    #[test]
    fn release_keys_frees_only_named_keys_and_reports_what_changed() {
        let mut t = LocalLockTable::new();
        assert!(t.try_acquire(
            1,
            &[
                (1, 10, LockClass::Write),
                (1, 11, LockClass::Write),
                (1, 12, LockClass::Read)
            ]
        ));
        assert!(t.try_acquire(2, &[(1, 12, LockClass::Read)]));
        // Release keys 10 and 12 only; 11 stays held.
        let released = t.release_keys(1, &[(1, 10), (1, 12), (1, 99)]);
        assert_eq!(released, vec![(1, 10), (1, 12)]);
        assert!(t.try_acquire(3, &[(1, 10, LockClass::Write)]));
        assert!(!t.try_acquire(3, &[(1, 11, LockClass::Read)]), "11 held");
        // Key 12 still has txn 2's read: shared with a new reader, closed
        // to a writer.
        assert!(t.try_acquire(3, &[(1, 12, LockClass::Read)]));
        assert!(!t.try_acquire(4, &[(1, 12, LockClass::Write)]));
        assert_eq!(t.release_keys(1, &[(1, 11)]), vec![(1, 11)]);
        // Releasing keys the txn does not (or no longer) hold reports
        // nothing — no spurious wakeups.
        assert_eq!(t.release_keys(1, &[(1, 11)]), vec![]);
        assert_eq!(t.release_keys(99, &[(1, 12)]), vec![]);
    }

    #[test]
    fn release_keys_and_release_all_agree_on_stats() {
        let mut a = LocalLockTable::new();
        let mut b = LocalLockTable::new();
        for t in [&mut a, &mut b] {
            assert!(t.try_acquire(1, &[(1, 1, LockClass::Write), (1, 2, LockClass::Read)]));
            assert!(t.try_acquire(2, &[(1, 2, LockClass::Read)]));
        }
        assert_eq!(a.release_keys(1, &[(1, 1), (1, 2)]).len(), 2);
        assert_eq!(b.release_all(1), 2);
        assert_eq!(a.stats().released, b.stats().released);
        assert_eq!(a.locked_keys(), b.locked_keys());
    }

    #[test]
    fn extract_range_moves_holders_between_tables() {
        let mut src = LocalLockTable::new();
        assert!(src.try_acquire(1, &[(5, 10, LockClass::Write), (5, 20, LockClass::Read)]));
        assert!(src.try_acquire(2, &[(5, 11, LockClass::Read), (6, 10, LockClass::Write)]));
        assert!(src.try_acquire(3, &[(5, 11, LockClass::Read)]));

        // Move table 5, keys [10, 15): keys 10 and 11 go, 20 stays, and
        // table 6's key 10 is untouched.
        let moved = src.extract_range(5, 10, 15);
        assert_eq!(moved.len(), 2);
        assert_eq!(moved[0].key, 10);
        assert_eq!(moved[0].writer, Some(1));
        assert_eq!(moved[1].key, 11);
        assert_eq!(moved[1].readers, vec![2, 3]);
        assert!(src.holds(1, 5, 20, LockClass::Read));
        assert!(src.holds(2, 6, 10, LockClass::Write));
        assert!(!src.holds_any(1, 5, 10));

        let mut dst = LocalLockTable::new();
        dst.absorb(moved);
        assert!(dst.holds(1, 5, 10, LockClass::Write));
        assert!(dst.holds(2, 5, 11, LockClass::Read));
        assert!(dst.holds(3, 5, 11, LockClass::Read));
        // Conflicts behave as if the locks were acquired here.
        assert!(!dst.try_acquire(4, &[(5, 10, LockClass::Read)]));
        assert!(!dst.try_acquire(4, &[(5, 11, LockClass::Write)]));
        // And release at the new owner frees them.
        assert_eq!(dst.release_keys(1, &[(5, 10)]), vec![(5, 10)]);
        assert!(dst.try_acquire(4, &[(5, 10, LockClass::Read)]));
    }

    #[test]
    fn extract_of_empty_range_is_a_noop() {
        let mut t = LocalLockTable::new();
        assert!(t.try_acquire(1, &[(5, 10, LockClass::Write)]));
        assert!(t.extract_range(5, 100, 200).is_empty());
        assert!(t.extract_range(7, 0, 100).is_empty());
        assert!(t.holds(1, 5, 10, LockClass::Write));
        let mut dst = LocalLockTable::new();
        dst.absorb(Vec::new());
        assert_eq!(dst.locked_keys(), 0);
    }

    #[test]
    fn take_all_drains_every_holder_in_deterministic_order() {
        let mut t = LocalLockTable::new();
        assert!(t.try_acquire(1, &[(5, 10, LockClass::Write), (5, 20, LockClass::Read)]));
        assert!(t.try_acquire(2, &[(4, 7, LockClass::Read)]));
        let moved = t.take_all();
        assert_eq!(t.locked_keys(), 0);
        assert_eq!(
            moved.iter().map(|m| (m.table, m.key)).collect::<Vec<_>>(),
            vec![(4, 7), (5, 10), (5, 20)]
        );
        // Absorbing the salvage into a fresh table preserves conflicts…
        let mut fresh = LocalLockTable::new();
        fresh.absorb(moved);
        assert!(!fresh.try_acquire(3, &[(5, 10, LockClass::Read)]));
        // …until the holder's finish releases them.
        assert_eq!(fresh.release_keys(1, &[(5, 10)]), vec![(5, 10)]);
        assert!(fresh.try_acquire(3, &[(5, 10, LockClass::Read)]));
        assert!(t.take_all().is_empty());
    }

    #[test]
    fn stats_track_activity() {
        let mut t = LocalLockTable::new();
        t.try_acquire(1, &[(1, 1, LockClass::Read), (1, 2, LockClass::Write)]);
        t.try_acquire(2, &[(1, 2, LockClass::Read)]);
        t.release_all(1);
        let s = t.stats();
        assert_eq!(s.acquired, 2);
        assert_eq!(s.conflicts, 1);
        assert_eq!(s.released, 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Invariant: at any time a key has at most one writer, and never a
        /// writer together with a foreign reader.
        #[test]
        fn writer_exclusivity_invariant(ops in proptest::collection::vec(
            (1u64..6, 0i64..8, any::<bool>(), any::<bool>()), 1..200)) {
            let mut table = LocalLockTable::new();
            for (txn, key, write, release) in ops {
                if release {
                    table.release_all(txn);
                } else {
                    let class = if write { LockClass::Write } else { LockClass::Read };
                    let _ = table.try_acquire(txn, &[(1, key, class)]);
                }
                // Check the invariant over the internal map.
                for state in table.keys.values() {
                    if let Some(w) = state.writer {
                        prop_assert!(state.readers.iter().all(|&r| r == w),
                            "foreign reader coexists with a writer");
                    }
                }
            }
        }
    }
}
