//! Deterministic, seeded chaos injection for the partition executor.
//!
//! Mirrors the shape of the storage layer's `SimFs` `FaultPlan`: a
//! [`ChaosPlan`] names, ahead of time and reproducibly from a seed, the
//! exact points where faults land — a worker panic at its Nth dequeue, a
//! delivery delay on every Nth outbox flush, a forced admission failure
//! on every Nth client-side fresh push. The executor consults the
//! installed plan through three hooks ([`ChaosState::should_kill`],
//! [`ChaosState::delivery_delay`], [`ChaosState::forced_admission_failure`])
//! that are compiled **only** under `cfg(any(test, feature = "chaos"))`;
//! a release build without the `chaos` feature contains no trace of this
//! module.
//!
//! Counting is per-site and monotonic (every worker counts its own
//! dequeues; flushes and admissions count engine-wide), so a plan
//! replays the same fault points whenever the per-site operation
//! sequence is the same — the same determinism contract `FaultPlan`
//! gives the durability tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A seeded xorshift64* generator — the same tiny PRNG the workloads and
/// `SimFs` use, so chaos schedules are reproducible from one `u64`.
#[derive(Debug, Clone)]
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform draw in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

/// One scheduled worker kill: the named worker panics (as if a stray
/// panic escaped the action-body guard) immediately before processing
/// its `at_dequeue`-th dequeued action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillPoint {
    /// Worker (= partition) the kill lands on.
    pub worker: usize,
    /// 1-based dequeue count at which the worker dies.
    pub at_dequeue: u64,
}

/// A deterministic schedule of executor-level faults.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// Seed the plan was derived from (for reporting).
    pub seed: u64,
    /// Scheduled worker kills.
    pub kills: Vec<KillPoint>,
    /// Every `delay_every`-th outbox flush (engine-wide count) sleeps
    /// for [`ChaosPlan::delay_us`] before delivering. 0 disables delays.
    pub delay_every: u64,
    /// Microseconds each injected delivery delay lasts.
    pub delay_us: u64,
    /// Every `admission_every`-th client-side fresh-lane push (engine-wide
    /// count) is forced to fail as if the ring were full, exercising the
    /// admission back-pressure abort path. 0 disables forced pressure.
    pub admission_every: u64,
}

impl ChaosPlan {
    /// Derives a reproducible plan from a seed: 1–3 worker kills within
    /// the first `horizon` dequeues, plus (seed-dependent) delivery
    /// delays and admission pressure.
    pub fn seeded(seed: u64, workers: usize, horizon: u64) -> Self {
        let mut rng = XorShift::new(seed);
        let mut kills = Vec::new();
        let n_kills = rng.range(1, 4) as usize;
        for _ in 0..n_kills {
            let point = KillPoint {
                worker: rng.range(0, workers.max(1) as u64) as usize,
                at_dequeue: rng.range(1, horizon.max(2)),
            };
            // Two kills on the same worker keep only the earlier one —
            // the worker dies once per schedule entry anyway.
            if !kills.iter().any(|k: &KillPoint| k.worker == point.worker) {
                kills.push(point);
            }
        }
        let delay_every = if rng.next().is_multiple_of(2) {
            rng.range(4, 32)
        } else {
            0
        };
        let admission_every = if rng.next().is_multiple_of(2) {
            rng.range(16, 64)
        } else {
            0
        };
        ChaosPlan {
            seed,
            kills,
            delay_every,
            delay_us: rng.range(50, 500),
            admission_every,
        }
    }

    /// A plan that injects nothing (useful as a baseline control).
    pub fn quiet() -> Self {
        ChaosPlan {
            seed: 0,
            kills: Vec::new(),
            delay_every: 0,
            delay_us: 0,
            admission_every: 0,
        }
    }
}

/// Runtime counters pairing a [`ChaosPlan`] with the per-site operation
/// counts that decide when its faults fire. Shared by all workers of one
/// engine; all methods are lock-free.
#[derive(Debug)]
pub struct ChaosState {
    plan: ChaosPlan,
    dequeues: Vec<AtomicU64>,
    flushes: AtomicU64,
    admissions: AtomicU64,
}

impl ChaosState {
    /// Arms `plan` for an engine with `workers` partition workers.
    pub fn new(plan: ChaosPlan, workers: usize) -> Self {
        ChaosState {
            plan,
            dequeues: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            flushes: AtomicU64::new(0),
            admissions: AtomicU64::new(0),
        }
    }

    /// The armed plan.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// Counts one dequeue on `worker` and reports whether the plan kills
    /// it here. Fires at most once per kill point: the count is strictly
    /// monotonic, so only one increment observes the scheduled value.
    pub fn should_kill(&self, worker: usize) -> bool {
        let nth = self.dequeues[worker].fetch_add(1, Ordering::Relaxed) + 1;
        self.plan
            .kills
            .iter()
            .any(|k| k.worker == worker && k.at_dequeue == nth)
    }

    /// Counts one outbox flush and returns the delay to inject before
    /// delivering, if this flush is scheduled to stall.
    pub fn delivery_delay(&self) -> Option<Duration> {
        if self.plan.delay_every == 0 {
            return None;
        }
        let nth = self.flushes.fetch_add(1, Ordering::Relaxed) + 1;
        nth.is_multiple_of(self.plan.delay_every)
            .then(|| Duration::from_micros(self.plan.delay_us))
    }

    /// Counts one client-side fresh-lane push attempt and reports whether
    /// the plan forces it to fail as admission pressure.
    pub fn forced_admission_failure(&self) -> bool {
        if self.plan.admission_every == 0 {
            return false;
        }
        let nth = self.admissions.fetch_add(1, Ordering::Relaxed) + 1;
        nth.is_multiple_of(self.plan.admission_every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible_and_distinct() {
        let a = ChaosPlan::seeded(7, 4, 100);
        let b = ChaosPlan::seeded(7, 4, 100);
        assert_eq!(a.kills, b.kills);
        assert_eq!(a.delay_every, b.delay_every);
        assert_eq!(a.admission_every, b.admission_every);
        assert!(!a.kills.is_empty() && a.kills.len() <= 3);
        for k in &a.kills {
            assert!(k.worker < 4);
            assert!(k.at_dequeue >= 1 && k.at_dequeue < 100);
        }
        // Different seeds almost surely differ somewhere in the schedule.
        let c = ChaosPlan::seeded(8, 4, 100);
        assert!(a.kills != c.kills || a.delay_every != c.delay_every);
    }

    #[test]
    fn kill_fires_exactly_once_at_the_scheduled_dequeue() {
        let plan = ChaosPlan {
            seed: 1,
            kills: vec![KillPoint {
                worker: 1,
                at_dequeue: 3,
            }],
            delay_every: 0,
            delay_us: 0,
            admission_every: 0,
        };
        let state = ChaosState::new(plan, 2);
        assert!(!state.should_kill(1));
        assert!(!state.should_kill(0));
        assert!(!state.should_kill(1));
        assert!(state.should_kill(1), "third dequeue on worker 1 dies");
        assert!(!state.should_kill(1), "never fires twice");
    }

    #[test]
    fn delay_and_admission_fire_on_schedule() {
        let plan = ChaosPlan {
            seed: 1,
            kills: Vec::new(),
            delay_every: 2,
            delay_us: 123,
            admission_every: 3,
        };
        let state = ChaosState::new(plan, 1);
        assert_eq!(state.delivery_delay(), None);
        assert_eq!(state.delivery_delay(), Some(Duration::from_micros(123)));
        assert!(!state.forced_admission_failure());
        assert!(!state.forced_admission_failure());
        assert!(state.forced_admission_failure());
        let quiet = ChaosState::new(ChaosPlan::quiet(), 1);
        assert_eq!(quiet.delivery_delay(), None);
        assert!(!quiet.forced_admission_failure());
        assert!(!quiet.should_kill(0));
    }
}
