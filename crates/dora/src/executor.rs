//! The DORA partition executor: one worker thread per logical partition.
//!
//! This is the heart of the paper. The [`DoraEngine`] spawns a fixed pool
//! of worker threads ("micro-engines"), each owning
//!
//! * a private **action queue** — its only input, and
//! * a private [`LocalLockTable`] — touched exclusively by that thread, so
//!   it needs no latches at all.
//!
//! Submitted transactions arrive as
//! [`FlowGraph`]s. Each phase's actions are
//! routed to the partitions owning their data
//! ([`dispatcher::route_phase`](crate::dispatcher::route_phase)) and
//! joined at a rendezvous point ([`Rvp`]); the last action to report at an
//! RVP runs the rendezvous logic on its own worker thread — enqueueing the
//! next phase or committing/aborting the transaction. Storage operations
//! execute under [`DORA_POLICY`] (`LockingPolicy::Bypass`): the
//! centralized lock manager is skipped entirely because every access to a
//! partition's keys is funneled through the one thread that owns them.
//!
//! The worker's hot path is organized around three structures:
//!
//! * **Lock-keyed wait list** — an action whose local locks are
//!   unavailable is parked in the worker's wait list (`wait_list`
//!   module), indexed by the keys it waits on.
//!   A transaction's finish releases its keys and wakes **only** the
//!   actions parked on those keys; nothing else is re-examined (the old
//!   executor rescanned the whole deferral list after every message).
//!   Waits are event-driven: the worker sleeps until a message arrives or
//!   the earliest parked action hits
//!   [`DoraEngineConfig::lock_timeout`] — a deferral that expires aborts
//!   its transaction, which is also how cross-partition deadlocks (two
//!   multi-partition transactions acquiring in opposite orders) resolve.
//! * **Lock-free mailbox** (the [`mailbox`](crate::mailbox) module) — each
//!   partition's only input, with lane selection at enqueue time. The
//!   **fresh lane** is a bounded MPSC ring whose capacity *is* the
//!   admission bound: [`DoraEngine::submit`] reserves a slot per phase-1
//!   action (one CAS), blocks — back-pressure — up to
//!   [`DoraEngineConfig::submit_timeout`] while a partition is full, and
//!   then rejects with a visible abort; nothing is ever silently
//!   dropped. The **priority lane** is an unbounded lock-free list for
//!   worker-to-worker traffic (later-phase actions, finishes, probes):
//!   later phases can unblock a rendezvous other partitions already
//!   executed for, so they cut ahead of fresh work — and a worker can
//!   never block sending to another worker, which rules out send-side
//!   deadlock by construction. A later-phase action targeting the very
//!   partition whose worker runs the RVP logic is executed inline,
//!   skipping the queue round-trip entirely. Workers **batch-drain**:
//!   one atomic swap empties the priority lane, one lazily published
//!   counter covers a whole fresh segment, and parking happens only on
//!   verified-empty (eventcount), so the uncontended path touches no
//!   mutex and no SeqCst handshake.
//! * **Coalesced outboxes** — the cross-partition messages one drain
//!   batch produces (finishes, next-phase actions, probes) are buffered
//!   per target partition and flushed as **one** mailbox push each
//!   ([`WorkerMsg::Batch`]), so a multi-send iteration pays one
//!   reservation per target instead of one per message.
//!
//! Routing changes while traffic is live are **quiesce-free**:
//! [`DoraEngine::migrate_range`] moves one key range between partitions
//! with a three-step handoff instead of draining the engine. The
//! destination first installs a **range barrier** (fresh arrivals for the
//! moving range park behind it), then the routing table is carved so new
//! work dual-routes to the destination, and finally the source extracts
//! the range's local lock entries and parked actions and ships them in a
//! [`WorkerMsg::RangeSealed`] token that releases the barrier. Traffic on
//! unaffected ranges never stops. A monotone **migration epoch** gates a
//! self-correcting ownership check: once any migration has happened, a
//! worker that pops an action (or finish) for keys the current routing
//! assigns elsewhere forwards it to the owner instead of running it, which
//! absorbs messages routed before the carve but delivered after the seal.
//!
//! Non-aligned ("secondary") actions run lock-free but **consistent**:
//! their bodies read through the storage layer's validated (versioned)
//! API, which only ever serves a committed snapshot. A read that hits an
//! in-flight writer names the conflicting record, and the executor
//! re-routes the action to that key's owning partition where it parks in
//! the ordinary wait list under a shared read intent — the writer's
//! finish wakes it and the (re-runnable) body executes again
//! (`secondary_retries` / `secondary_parked` in [`DoraStatsSnapshot`]
//! count the protocol).
//!
//! Workers are **supervised**: each worker thread runs inside a top-level
//! `catch_unwind`, and a dedicated supervisor thread (plain `std::sync`
//! primitives only) owns the worker join handles. A worker that panics
//! outside the user-body guard — or is killed deliberately via
//! [`DoraEngine::kill_worker`] or an installed chaos plan — hands its
//! entire private state to the supervisor, which aborts every in-flight
//! transaction that touched the partition with a **retryable**
//! [`StorageError::WorkerUnavailable`] error, salvages the dead lock
//! table into a fresh one (released again by the aborts' own finish
//! broadcasts), re-admits salvageable queued fresh work, and respawns the
//! worker — unaffected partitions keep committing throughout, and no
//! acknowledged commit is ever lost (see `docs/architecture.md`,
//! "Supervision & chaos").

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use dora_storage::db::{Database, LockingPolicy};
use dora_storage::error::StorageError;
use dora_storage::trace::{AccessTrace, WorkerCtx};
use dora_storage::types::TableId;

use dora_storage::types::TxnId;

use crate::action::{ActionSpec, FlowGraph};
#[cfg(any(test, feature = "chaos"))]
use crate::chaos::ChaosState;
use crate::dispatcher::{
    route_phase, ActionEnvelope, MigrationTicket, PhaseEnd, Rvp, SealStats, TxnCtx, WorkerMsg,
};
use crate::local_lock::{LocalLockStats, LocalLockTable, LockClass};
use crate::mailbox::{Mailbox, PushError};
use crate::oneshot;
use crate::routing::RoutingTable;
use crate::wait_list::{WaitList, FRESH_SEQ};

/// The locking policy DORA passes to every storage operation: bypass the
/// centralized lock manager, isolation is enforced by the partition-local
/// lock tables.
pub const DORA_POLICY: LockingPolicy = LockingPolicy::Bypass;

/// How deep inline own-partition dispatch may recurse before next-phase
/// actions detour through the priority lane (stack-depth bound for
/// same-partition multi-phase chains).
const INLINE_DISPATCH_DEPTH: u32 = 16;

/// Final status of a submitted transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnOutcome {
    /// Every phase ran and the transaction committed.
    Committed,
    /// The transaction aborted (action failure, local-lock timeout,
    /// admission timeout under back-pressure, or engine shutdown).
    Aborted {
        /// Why the transaction aborted.
        reason: String,
    },
}

impl TxnOutcome {
    /// True when the transaction committed.
    pub fn is_committed(&self) -> bool {
        matches!(self, TxnOutcome::Committed)
    }
}

/// Configuration of the DORA engine.
#[derive(Debug, Clone)]
pub struct DoraEngineConfig {
    /// Number of partition worker threads (micro-engines).
    pub workers: usize,
    /// How long a parked action may wait for local locks before its
    /// transaction aborts. Also the cross-partition deadlock bound.
    pub lock_timeout: Duration,
    /// Per-partition bound on admitted-but-unprocessed **fresh** (phase-1)
    /// actions — the capacity of the partition mailbox's fresh ring
    /// (rounded up to a power of two). When a partition is full, `submit`
    /// blocks — back-pressure — instead of letting queues grow without
    /// bound. Later-phase actions are not counted: they belong to
    /// transactions already inside the engine.
    pub queue_capacity: usize,
    /// How long `submit` may block waiting for queue space before the
    /// transaction is rejected with a visible abort (never a silent drop).
    pub submit_timeout: Duration,
    /// Extra slack [`DoraEngine::shutdown`] grants in-flight transactions
    /// on top of `lock_timeout + submit_timeout` before it gives up
    /// waiting for them and closes the mailboxes anyway. Transactions
    /// still active when the backstop expires are counted in
    /// [`DoraStatsSnapshot::shutdown_stranded`] (and a warning is printed)
    /// instead of disappearing silently; their replies still arrive as
    /// shutdown aborts when the workers drain.
    pub shutdown_grace: Duration,
}

impl Default for DoraEngineConfig {
    fn default() -> Self {
        DoraEngineConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            lock_timeout: Duration::from_millis(500),
            queue_capacity: 1024,
            submit_timeout: Duration::from_secs(2),
            shutdown_grace: Duration::from_secs(30),
        }
    }
}

/// Engine-wide counters (written by workers, read by `stats`).
#[derive(Debug, Default)]
struct EngineCounters {
    committed: AtomicU64,
    aborted: AtomicU64,
    actions: AtomicU64,
    deferrals: AtomicU64,
    secondary: AtomicU64,
    secondary_retries: AtomicU64,
    secondary_parked: AtomicU64,
    log_io_errors: AtomicU64,
    migrations: AtomicU64,
    forwarded: AtomicU64,
    worker_restarts: AtomicU64,
    orphan_aborts: AtomicU64,
    chaos_kills: AtomicU64,
    restart_pause_us: AtomicU64,
    shutdown_stranded: AtomicU64,
}

/// Per-partition counters, written only by the owning worker (plain
/// stores; the worker's local lock table remains latch-free).
#[derive(Debug, Default)]
struct PartitionCounters {
    executed: AtomicU64,
    busy_ns: AtomicU64,
    lock_acquired: AtomicU64,
    lock_conflicts: AtomicU64,
    lock_released: AtomicU64,
    deferred_depth: AtomicU64,
    wakeups: AtomicU64,
    rescans_avoided: AtomicU64,
    outbox_msgs: AtomicU64,
    outbox_pushes: AtomicU64,
}

/// Snapshot of one partition worker's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionStatsSnapshot {
    /// Actions executed by this worker.
    pub executed: u64,
    /// Nanoseconds spent executing action bodies and RVP logic.
    pub busy_ns: u64,
    /// Messages currently queued in this partition's mailbox (both lanes)
    /// at the instant the snapshot was taken. An instantaneous gauge, not
    /// a counter: the load balancer reads it directly instead of
    /// window-diffing it.
    pub queue_depth: u64,
    /// This worker's local lock table counters.
    pub locks: LocalLockStats,
    /// Actions currently parked waiting for local locks.
    pub deferred: u64,
    /// Parked actions re-tried because a key they wait on was released.
    pub wakeups: u64,
    /// Parked actions **not** re-examined at lock-release events because
    /// they wait on unrelated keys — each one is a lock probe the old
    /// full-rescan executor would have paid. `wakeups + rescans_avoided`
    /// per release event equals the rescan cost the wait list replaced.
    pub rescans_avoided: u64,
    /// Cross-partition messages this worker produced (finishes,
    /// next-phase actions, probes).
    pub outbox_msgs: u64,
    /// Mailbox pushes those messages actually cost after same-target
    /// coalescing; `outbox_msgs - outbox_pushes` is the number of
    /// reservations (and wakeup probes) the outbox saved.
    pub outbox_pushes: u64,
}

/// Snapshot of the engine's counters plus per-partition breakdown.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DoraStatsSnapshot {
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted.
    pub aborted: u64,
    /// Actions executed across all partitions.
    pub actions: u64,
    /// Times an action was parked because its local locks were taken.
    pub deferrals: u64,
    /// Non-aligned (secondary) actions executed.
    pub secondary: u64,
    /// Times a secondary action's validated read observed an in-flight
    /// writer and was re-routed toward the conflicting key's owner (each
    /// re-route re-runs the read once the key is reachable).
    pub secondary_retries: u64,
    /// Times a re-routed secondary action actually parked on the owning
    /// partition's wait list (the writer was still holding the key on
    /// arrival; the remainder re-ran immediately).
    pub secondary_parked: u64,
    /// Commits failed by a log I/O error (ENOSPC on a segment, failed
    /// fsync): the transaction aborts visibly instead of being
    /// acknowledged without durability.
    pub log_io_errors: u64,
    /// Range migrations completed by [`DoraEngine::migrate_range`].
    pub migrations: u64,
    /// Messages (actions or finishes) a worker forwarded to the current
    /// owner because a migration moved the keys after they were routed.
    pub forwarded: u64,
    /// Partition workers the supervisor respawned after a crash (panic
    /// outside the user-body guard, or an injected kill).
    pub worker_restarts: u64,
    /// Transactions the supervisor aborted because the partition worker
    /// owning part of their state died mid-flight — lock holders, parked
    /// actions, and queued later-phase work of the dead partition. All of
    /// them abort with the retryable `WorkerUnavailable` error instead of
    /// waiting out `lock_timeout` as orphans.
    pub orphan_aborts: u64,
    /// Deliberate worker kills injected via [`DoraEngine::kill_worker`] or
    /// an installed chaos plan.
    pub chaos_kills: u64,
    /// Cumulative microseconds partitions spent dead: from each crash to
    /// the moment its replacement worker's state was rebuilt. Divided by
    /// `worker_restarts` this is the engine's mean time to recovery.
    pub restart_pause_us: u64,
    /// Transactions still active when the shutdown backstop deadline
    /// expired (see [`DoraEngineConfig::shutdown_grace`]). Non-zero means
    /// shutdown stopped waiting and closed the mailboxes under them.
    pub shutdown_stranded: u64,
    /// Per-partition counters.
    pub workers: Vec<PartitionStatsSnapshot>,
}

/// Why [`DoraEngine::migrate_range`] refused or failed a migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrateError {
    /// The routing table has no rule for the table.
    UnroutedTable(TableId),
    /// `lo >= hi`: the half-open interval `[lo, hi)` is empty.
    EmptyRange,
    /// The destination is not a valid partition id.
    InvalidDestination {
        /// The requested destination partition.
        dest: usize,
        /// How many partition workers the engine has.
        workers: usize,
    },
    /// The interval is currently owned by more than one partition; migrate
    /// each owner's sub-range separately (or coalesce first).
    SpansOwners,
    /// The engine shut down while the migration was in flight.
    Shutdown,
}

impl std::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateError::UnroutedTable(t) => write!(f, "table {t} has no routing rule"),
            MigrateError::EmptyRange => write!(f, "empty key range"),
            MigrateError::InvalidDestination { dest, workers } => {
                write!(
                    f,
                    "destination partition {dest} out of range ({workers} workers)"
                )
            }
            MigrateError::SpansOwners => {
                write!(f, "key range spans multiple current owners")
            }
            MigrateError::Shutdown => write!(f, "engine shut down during migration"),
        }
    }
}

impl std::error::Error for MigrateError {}

/// What one completed [`DoraEngine::migrate_range`] call moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationReport {
    /// Table whose range moved.
    pub table: TableId,
    /// Inclusive lower bound of the moved range.
    pub lo: i64,
    /// Exclusive upper bound of the moved range.
    pub hi: i64,
    /// Partition that owned the range before.
    pub from: usize,
    /// Partition that owns the range now.
    pub to: usize,
    /// Lock-table entries transferred with the seal token.
    pub moved_locks: usize,
    /// Parked (waiting) actions transferred with the seal token.
    pub moved_parked: usize,
    /// Fresh arrivals the destination parked behind the range barrier
    /// while the handoff was in flight.
    pub barrier_held: usize,
    /// Parked actions whose key set straddled the range boundary; they
    /// were aborted with a retryable error instead of being moved.
    pub aborted_straddlers: usize,
    /// Wall-clock duration of the handoff (barrier install → seal ack).
    pub duration: Duration,
}

/// Panic payload of a deliberate worker kill ([`DoraEngine::kill_worker`]
/// or a chaos-plan kill point). Thrown with `resume_unwind` — bypassing
/// the panic hook — so injected deaths don't spray backtraces over test
/// output; the supervisor recognizes the payload and records a clean
/// cause instead of an opaque one.
struct ChaosKill;

/// What a dying worker thread hands the supervisor: its id, its entire
/// private state (queues, wait list, lock table, barriers — everything
/// recovery must salvage), and the cause.
struct CrashReport {
    id: usize,
    state: Box<WorkerState>,
    panic_msg: String,
    died_at: Instant,
}

/// Supervisor-side shared state. Deliberately built on `std::sync`
/// primitives only (no shimmed `parking_lot`/`crossbeam` types): the
/// supervisor is the engine's last line of defense and must not depend on
/// anything fancier than the standard library.
struct Supervision {
    /// Crash reports pushed by dying worker threads, drained by the
    /// supervisor.
    crashed: std::sync::Mutex<Vec<CrashReport>>,
    /// Signaled on every crash report and on shutdown.
    signal: std::sync::Condvar,
    /// Set by shutdown after the mailboxes close; tells the supervisor to
    /// join the workers and exit instead of respawning.
    stop: AtomicBool,
    /// Per-worker liveness counters, bumped once per worker-loop
    /// iteration. A worker whose heartbeat stops advancing while its
    /// thread is alive is stalled (e.g. a blocking action body) — visible
    /// through [`DoraEngine::heartbeats`] — but never forcibly killed:
    /// only a dead thread's state can be salvaged safely.
    heartbeats: Vec<AtomicU64>,
}

impl Supervision {
    fn new(workers: usize) -> Self {
        Supervision {
            crashed: std::sync::Mutex::new(Vec::new()),
            signal: std::sync::Condvar::new(),
            stop: AtomicBool::new(false),
            heartbeats: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// How many shards the transaction registry spreads its map over — keeps
/// the registry from becoming a new engine-wide critical section (the
/// very thing DORA removes from the lock manager).
const REGISTRY_SHARDS: usize = 16;

/// Live-transaction registry: `TxnId → TxnCtx` for every transaction
/// between `submit` and its finalize. The supervisor uses it to find (and
/// doom) the transactions holding salvaged locks on a dead partition;
/// nothing on the worker hot path reads it. `std::sync::Mutex` on
/// purpose — see [`Supervision`].
struct TxnRegistry {
    shards: Vec<std::sync::Mutex<HashMap<TxnId, Arc<TxnCtx>>>>,
}

impl TxnRegistry {
    fn new() -> Self {
        TxnRegistry {
            shards: (0..REGISTRY_SHARDS)
                .map(|_| std::sync::Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, txn: TxnId) -> std::sync::MutexGuard<'_, HashMap<TxnId, Arc<TxnCtx>>> {
        self.shards[txn as usize % REGISTRY_SHARDS]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    fn insert(&self, ctx: &Arc<TxnCtx>) {
        self.shard(ctx.txn).insert(ctx.txn, ctx.clone());
    }

    fn remove(&self, txn: TxnId) {
        self.shard(txn).remove(&txn);
    }

    fn get(&self, txn: TxnId) -> Option<Arc<TxnCtx>> {
        self.shard(txn).get(&txn).cloned()
    }
}

struct Inner {
    db: Arc<Database>,
    routing: RwLock<RoutingTable>,
    /// One mailbox per partition — the immutable handle table. `submit`
    /// and worker sends index it with **no lock at all** (the old
    /// `RwLock<Vec<Sender>>` read lock on every message is gone): the
    /// table never changes for the engine's lifetime, and shutdown flips
    /// each mailbox's `closed` flag instead of clearing the table, which
    /// is what lets workers observe disconnection and exit. Admission is
    /// fused into each mailbox's fresh-ring capacity, so the per-partition
    /// `QueueGate` and its SeqCst handshake are gone too.
    mailboxes: Vec<Mailbox<WorkerMsg>>,
    counters: EngineCounters,
    partitions: Vec<PartitionCounters>,
    trace: Arc<AccessTrace>,
    /// Transactions begun but not yet finalized.
    active: AtomicUsize,
    /// False once shutdown starts; submissions are rejected for good.
    accepting: AtomicBool,
    /// Bumped once per completed routing carve. Zero means "routing never
    /// changed", which lets workers skip the ownership re-check entirely —
    /// the steady-state hot path pays one relaxed load and a branch.
    migration_epoch: AtomicU64,
    /// Serializes `migrate_range` / `coalesce_routing` calls — the handoff
    /// protocol moves one range at a time.
    rebalance: Mutex<()>,
    /// When set, workers count executed keys into `key_loads` so the load
    /// balancer can find the hot sub-range to split off. Off by default:
    /// sampling costs a hash insert per action.
    key_sampling: AtomicBool,
    /// Per-partition cumulative key-load samples, flushed from worker-local
    /// maps on stats export. Callers window-diff the snapshot.
    key_loads: Vec<Mutex<HashMap<(TableId, i64), u64>>>,
    /// Round-robin cursor for secondary (non-aligned) actions.
    next_secondary: AtomicUsize,
    /// Crash reports, stop flag, and heartbeats shared with the
    /// supervisor thread.
    supervision: Supervision,
    /// Live transactions, for the supervisor's orphan sweep.
    registry: TxnRegistry,
    /// Armed chaos plan, if any. Read (one `RwLock` read + `Arc` clone)
    /// at each injection site; compiled out entirely without the hooks.
    #[cfg(any(test, feature = "chaos"))]
    chaos: RwLock<Option<Arc<ChaosState>>>,
    config: DoraEngineConfig,
}

/// The data-oriented execution engine.
pub struct DoraEngine {
    inner: Arc<Inner>,
    /// The supervisor thread; it owns the worker join handles.
    supervisor: Option<JoinHandle<()>>,
}

impl DoraEngine {
    /// Creates the engine and spawns one worker thread per partition,
    /// plus a supervisor thread that detects worker deaths and respawns
    /// them (see [`DoraEngine::kill_worker`]).
    pub fn new(db: Arc<Database>, routing: RoutingTable, config: DoraEngineConfig) -> Self {
        assert!(config.workers > 0, "need at least one partition worker");
        let inner = Arc::new(Inner {
            db,
            routing: RwLock::new(routing),
            mailboxes: (0..config.workers)
                .map(|_| Mailbox::new(config.queue_capacity))
                .collect(),
            counters: EngineCounters::default(),
            partitions: (0..config.workers)
                .map(|_| PartitionCounters::default())
                .collect(),
            trace: Arc::new(AccessTrace::new()),
            active: AtomicUsize::new(0),
            accepting: AtomicBool::new(true),
            migration_epoch: AtomicU64::new(0),
            rebalance: Mutex::new(()),
            key_sampling: AtomicBool::new(false),
            key_loads: (0..config.workers)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            next_secondary: AtomicUsize::new(0),
            supervision: Supervision::new(config.workers),
            registry: TxnRegistry::new(),
            #[cfg(any(test, feature = "chaos"))]
            chaos: RwLock::new(None),
            config,
        });
        let handles = (0..inner.config.workers)
            .map(|id| {
                spawn_worker(
                    inner.clone(),
                    WorkerState::new(id, inner.config.workers, inner.trace.clone()),
                )
            })
            .collect();
        let supervisor = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("dora-supervisor".into())
                .spawn(move || supervisor_loop(inner, handles))
                .expect("spawn DORA supervisor")
        };
        DoraEngine {
            inner,
            supervisor: Some(supervisor),
        }
    }

    /// Kills partition worker `id`: a `Die` token rides the priority lane
    /// and makes the worker panic at its next dequeue point, exactly as
    /// if a stray panic had escaped the user-body guard. The supervisor
    /// then aborts every in-flight transaction touching the partition
    /// (retryably), salvages the queues, and respawns the worker —
    /// this is the engine-level crash the availability bench and the
    /// chaos oracle measure recovery from. Returns `false` when `id` is
    /// out of range or the mailbox is already closed (engine shutting
    /// down).
    ///
    /// Always compiled (unlike the seeded chaos hooks): deliberate kills
    /// are part of the engine's public failure-injection surface.
    pub fn kill_worker(&self, id: usize) -> bool {
        let Some(mailbox) = self.inner.mailboxes.get(id) else {
            return false;
        };
        let ok = mailbox.push_priority(WorkerMsg::Die).is_ok();
        if ok {
            self.inner
                .counters
                .chaos_kills
                .fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// Per-worker liveness counters, bumped once per worker-loop
    /// iteration. A counter that stops advancing names a stalled (or
    /// dead-and-recovering) partition.
    pub fn heartbeats(&self) -> Vec<u64> {
        self.inner
            .supervision
            .heartbeats
            .iter()
            .map(|h| h.load(Ordering::Relaxed))
            .collect()
    }

    /// Arms a deterministic chaos plan: worker kills at scheduled dequeue
    /// points, delivery delays on outbox flushes, forced admission
    /// failures on client pushes (see [`crate::chaos`]). Install before
    /// offering traffic — the plan counts operations from zero. Only
    /// compiled under `cfg(test)` or the `chaos` feature.
    #[cfg(any(test, feature = "chaos"))]
    pub fn install_chaos(&self, plan: crate::chaos::ChaosPlan) {
        *self.inner.chaos.write() =
            Some(Arc::new(ChaosState::new(plan, self.inner.config.workers)));
    }

    /// The underlying database.
    pub fn db(&self) -> &Arc<Database> {
        &self.inner.db
    }

    /// The engine's access trace (disabled unless enabled by the caller).
    pub fn trace(&self) -> &Arc<AccessTrace> {
        &self.inner.trace
    }

    /// Number of partition worker threads.
    pub fn worker_count(&self) -> usize {
        self.inner.config.workers
    }

    /// A copy of the current routing configuration.
    pub fn routing(&self) -> RoutingTable {
        self.inner.routing.read().clone()
    }

    /// Moves ownership of the key range `[lo, hi)` of `table` to partition
    /// `dest` **without stopping traffic** — the run-time re-partitioning
    /// primitive the designer's load balancer is built on.
    ///
    /// The handoff is a three-step protocol, serialized engine-wide:
    ///
    /// 1. **Barrier** — the destination worker installs a range barrier
    ///    and acks. Fresh arrivals for the moving range park behind it
    ///    (they must not run before the source's lock state arrives).
    /// 2. **Carve** — the routing table is rewritten so new work for the
    ///    range routes to `dest`, and the migration epoch is bumped.
    ///    Unaffected ranges keep flowing through both workers the whole
    ///    time.
    /// 3. **Seal** — the source worker extracts the range's local lock
    ///    entries and parked actions and ships them to the destination in
    ///    a [`WorkerMsg::RangeSealed`] token. The destination absorbs the
    ///    lock state, re-admits the transferred and barrier-held actions
    ///    in order, and acks completion.
    ///
    /// Messages routed before the carve but delivered after the seal are
    /// absorbed by an epoch-gated ownership re-check on every worker:
    /// actions and finishes for keys the current routing assigns elsewhere
    /// are forwarded to the owner instead of running locally.
    ///
    /// The range must currently belong to a single partition
    /// ([`MigrateError::SpansOwners`] otherwise); migrating a range to its
    /// current owner is a no-op that reports zero moved state.
    pub fn migrate_range(
        &self,
        table: TableId,
        lo: i64,
        hi: i64,
        dest: usize,
    ) -> Result<MigrationReport, MigrateError> {
        let workers = self.inner.config.workers;
        if dest >= workers {
            return Err(MigrateError::InvalidDestination { dest, workers });
        }
        if lo >= hi {
            return Err(MigrateError::EmptyRange);
        }
        // One migration at a time: the protocol assumes a single moving
        // range, and the barrier/seal tickets are matched per migration.
        let _serialize = self.inner.rebalance.lock();
        let src = {
            let routing = self.inner.routing.read();
            let rule = routing
                .rule(table)
                .ok_or(MigrateError::UnroutedTable(table))?;
            let first = rule.range_of(lo);
            let last = rule.range_of(hi - 1);
            let src = rule.owners[first] % workers;
            if rule.owners[first..=last]
                .iter()
                .any(|&o| o % workers != src)
            {
                return Err(MigrateError::SpansOwners);
            }
            src
        };
        let started = Instant::now();
        if src == dest {
            return Ok(MigrationReport {
                table,
                lo,
                hi,
                from: src,
                to: dest,
                moved_locks: 0,
                moved_parked: 0,
                barrier_held: 0,
                aborted_straddlers: 0,
                duration: started.elapsed(),
            });
        }
        let (installed_tx, installed_rx) = oneshot::channel();
        let (done_tx, done_rx) = oneshot::channel();
        let ticket = Arc::new(MigrationTicket {
            table,
            lo,
            hi,
            src,
            dst: dest,
            installed: installed_tx,
            done: done_tx,
        });
        // Step 1: barrier first, and *wait* for the ack. Carving before
        // the barrier is installed would let the destination run a fresh
        // in-range action ahead of the seal token's lock state.
        if self.inner.mailboxes[dest]
            .push_priority(WorkerMsg::RangeBegin {
                ticket: ticket.clone(),
            })
            .is_err()
        {
            return Err(MigrateError::Shutdown);
        }
        if installed_rx.recv().is_err() {
            return Err(MigrateError::Shutdown);
        }
        // Step 2: carve. From here on, fresh work for the range routes to
        // `dest` and parks behind the barrier.
        {
            let mut routing = self.inner.routing.write();
            let rule = routing.rule_mut(table).expect("rule checked above");
            rule.carve(lo, hi, dest);
        }
        self.inner.migration_epoch.fetch_add(1, Ordering::Release);
        // Step 3: tell the source to seal. The drain request rides the
        // priority lane, so it is ordered after every in-range action the
        // source already drained into its local queues — those run (or
        // park) under source authority first, and anything still parked at
        // seal time transfers with the token.
        if self.inner.mailboxes[src]
            .push_priority(WorkerMsg::RangeDrain { ticket })
            .is_err()
        {
            return Err(MigrateError::Shutdown);
        }
        match done_rx.recv() {
            Ok(seal) => Ok(MigrationReport {
                table,
                lo,
                hi,
                from: src,
                to: dest,
                moved_locks: seal.moved_locks,
                moved_parked: seal.moved_parked,
                barrier_held: seal.barrier_held,
                aborted_straddlers: seal.aborted_straddlers,
                duration: started.elapsed(),
            }),
            Err(_) => Err(MigrateError::Shutdown),
        }
    }

    /// Merges adjacent same-owner ranges in `table`'s routing rule,
    /// returning how many boundaries were removed. Ownership is unchanged,
    /// so no handoff protocol is needed — this just keeps rule lookup
    /// cheap after many migrations fragment the table.
    pub fn coalesce_routing(&self, table: TableId) -> usize {
        let _serialize = self.inner.rebalance.lock();
        let mut routing = self.inner.routing.write();
        routing.rule_mut(table).map(|r| r.coalesce()).unwrap_or(0)
    }

    /// Enables or disables per-key load sampling (off by default). While
    /// enabled, workers count executed keys into a per-partition map the
    /// balancer reads via [`DoraEngine::key_load_snapshot`] to pick the
    /// hot sub-range to split off.
    pub fn set_key_sampling(&self, enabled: bool) {
        self.inner.key_sampling.store(enabled, Ordering::Relaxed);
    }

    /// Cumulative per-key execution counts gathered while key sampling was
    /// enabled. Counts are flushed from worker-local maps on stats export,
    /// so the snapshot trails execution slightly; callers window-diff it.
    pub fn key_load_snapshot(&self) -> HashMap<(TableId, i64), u64> {
        let mut out = HashMap::new();
        for shard in &self.inner.key_loads {
            for (&k, &v) in shard.lock().iter() {
                *out.entry(k).or_insert(0) += v;
            }
        }
        out
    }

    /// Total number of messages waiting in partition mailboxes (both
    /// lanes; admitted-but-unprocessed fresh actions included).
    pub fn queue_len(&self) -> usize {
        self.inner.mailboxes.iter().map(|m| m.len()).sum()
    }

    /// Submits a transaction flow graph; the returned one-shot receiver
    /// yields its outcome once the terminal RVP decides commit or abort.
    ///
    /// Partition queues are bounded: when the first phase targets a
    /// partition whose queue is full, this call **blocks** (back-pressure)
    /// up to [`DoraEngineConfig::submit_timeout`] and then rejects the
    /// transaction with an abort outcome — overload is never a silent
    /// drop.
    pub fn submit(&self, flow: FlowGraph) -> oneshot::Receiver<TxnOutcome> {
        let (reply_tx, reply_rx) = oneshot::channel();
        // Routing migrations never pause intake — a submission racing a
        // carve routes under whichever table version it reads, and the
        // workers' epoch-gated ownership check forwards anything that
        // lands on a stale owner. Only shutdown rejects.
        self.inner.active.fetch_add(1, Ordering::AcqRel);
        if !self.inner.accepting.load(Ordering::Acquire) {
            self.inner.active.fetch_sub(1, Ordering::AcqRel);
            let _ = reply_tx.send(TxnOutcome::Aborted {
                reason: "engine is not accepting new transactions".into(),
            });
            return reply_rx;
        }
        let txn = self.inner.db.begin();
        let ctx = Arc::new(TxnCtx::new(txn, flow.name, flow.next, reply_tx));
        // Registered until finalize: if a partition worker dies while this
        // transaction holds locks there, the supervisor finds (and dooms)
        // it through the registry.
        self.inner.registry.insert(&ctx);
        advance(&self.inner, &ctx, flow.first, None);
        reply_rx
    }

    /// Submits a transaction and blocks until it finishes.
    pub fn execute(&self, flow: FlowGraph) -> TxnOutcome {
        self.submit(flow).recv().unwrap_or(TxnOutcome::Aborted {
            reason: "engine dropped the transaction".into(),
        })
    }

    /// Engine counters plus per-partition breakdown.
    pub fn stats(&self) -> DoraStatsSnapshot {
        let c = &self.inner.counters;
        DoraStatsSnapshot {
            committed: c.committed.load(Ordering::Relaxed),
            aborted: c.aborted.load(Ordering::Relaxed),
            actions: c.actions.load(Ordering::Relaxed),
            deferrals: c.deferrals.load(Ordering::Relaxed),
            secondary: c.secondary.load(Ordering::Relaxed),
            secondary_retries: c.secondary_retries.load(Ordering::Relaxed),
            secondary_parked: c.secondary_parked.load(Ordering::Relaxed),
            log_io_errors: c.log_io_errors.load(Ordering::Relaxed),
            migrations: c.migrations.load(Ordering::Relaxed),
            forwarded: c.forwarded.load(Ordering::Relaxed),
            worker_restarts: c.worker_restarts.load(Ordering::Relaxed),
            orphan_aborts: c.orphan_aborts.load(Ordering::Relaxed),
            chaos_kills: c.chaos_kills.load(Ordering::Relaxed),
            restart_pause_us: c.restart_pause_us.load(Ordering::Relaxed),
            shutdown_stranded: c.shutdown_stranded.load(Ordering::Relaxed),
            workers: self
                .inner
                .partitions
                .iter()
                .zip(&self.inner.mailboxes)
                .map(|(p, mailbox)| PartitionStatsSnapshot {
                    executed: p.executed.load(Ordering::Relaxed),
                    busy_ns: p.busy_ns.load(Ordering::Relaxed),
                    queue_depth: mailbox.len() as u64,
                    locks: LocalLockStats {
                        acquired: p.lock_acquired.load(Ordering::Relaxed),
                        conflicts: p.lock_conflicts.load(Ordering::Relaxed),
                        released: p.lock_released.load(Ordering::Relaxed),
                    },
                    deferred: p.deferred_depth.load(Ordering::Relaxed),
                    wakeups: p.wakeups.load(Ordering::Relaxed),
                    rescans_avoided: p.rescans_avoided.load(Ordering::Relaxed),
                    outbox_msgs: p.outbox_msgs.load(Ordering::Relaxed),
                    outbox_pushes: p.outbox_pushes.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// Stops accepting work, lets in-flight transactions finish (parked
    /// actions resolve or time out), then joins the supervisor and all
    /// workers. Returns the number of transactions still active when the
    /// backstop deadline expired (0 on every normal shutdown) — also
    /// counted in [`DoraStatsSnapshot::shutdown_stranded`].
    pub fn shutdown(mut self) -> u64 {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> u64 {
        self.inner.accepting.store(false, Ordering::Release);
        // In-flight transactions always terminate: every parked action
        // either acquires its locks or aborts after `lock_timeout`, and a
        // submission blocked on admission resolves within
        // `submit_timeout`. The deadline below is a defensive backstop,
        // not the normal path — and when it *does* fire, that is a
        // liveness bug worth surfacing, not shrugging off silently.
        let deadline = Instant::now()
            + self.inner.config.lock_timeout
            + self.inner.config.submit_timeout
            + self.inner.config.shutdown_grace;
        while self.inner.active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_micros(200));
        }
        let stranded = self.inner.active.load(Ordering::Acquire) as u64;
        if stranded > 0 {
            self.inner
                .counters
                .shutdown_stranded
                .fetch_add(stranded, Ordering::Relaxed);
            eprintln!(
                "dora-core: shutdown backstop expired with {stranded} transaction(s) still \
                 active; closing mailboxes — they will abort visibly as the workers drain"
            );
        }
        for mailbox in &self.inner.mailboxes {
            mailbox.close();
        }
        self.inner.supervision.stop.store(true, Ordering::Release);
        self.inner.supervision.signal.notify_all();
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
        stranded
    }
}

impl Drop for DoraEngine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// All mutable state a partition worker owns. Touched only by its thread;
/// passed down the call tree so RVP logic running on this worker can
/// release locks, wake parked actions, and execute next-phase actions
/// inline.
struct WorkerState {
    id: usize,
    /// The worker's identity for storage-level access tracing.
    ctx: WorkerCtx,
    locks: LocalLockTable,
    waiting: WaitList,
    /// Keys released on this worker since wakeups were last drained
    /// (by local finalizes and incoming finish messages).
    pending_wake: Vec<(TableId, i64)>,
    /// Second wake buffer: `drain_wakeups` ping-pongs it with
    /// `pending_wake` so cascade rounds reuse the same two allocations
    /// instead of reallocating per round.
    wake_scratch: Vec<(TableId, i64)>,
    /// Priority lane: later-phase actions — they can unblock an RVP other
    /// partitions already executed for.
    priority: VecDeque<ActionEnvelope>,
    /// Normal lane: fresh phase-1 actions admitted through the gate.
    fresh: VecDeque<ActionEnvelope>,
    /// Last deferred depth published to the shared snapshot (stats are
    /// exported on transitions, not per loop iteration).
    exported_deferred: u64,
    /// Whether lock/queue counters changed since the last export — the
    /// idle-path export is skipped entirely when nothing moved.
    stats_dirty: bool,
    /// Current nesting of inline own-partition dispatch (report → advance
    /// → handle_action → report …). Bounded so a same-partition
    /// multi-phase chain cannot grow the worker stack without limit.
    inline_depth: u32,
    /// Outbox: cross-partition messages produced during the current drain
    /// batch, buffered per target partition. Flushed once per loop
    /// iteration (and before parking) as **one** mailbox push per target —
    /// same-target sends coalesce into a [`WorkerMsg::Batch`].
    outbox: Vec<Vec<WorkerMsg>>,
    /// Partitions with a non-empty outbox buffer.
    outbox_dirty: Vec<usize>,
    /// Range barriers installed by in-flight migrations targeting this
    /// partition. Fresh arrivals for a barricaded range are held here
    /// until the source's seal token delivers the range's lock state.
    /// Empty except during a migration — the hot path pays one
    /// `is_empty()` check.
    barriers: Vec<RangeBarrier>,
    /// Worker-local per-key execution counts while key sampling is on;
    /// flushed into the shared per-partition map on stats export.
    key_counts: HashMap<(TableId, i64), u64>,
    /// Set by a [`WorkerMsg::Die`] token during intake; the worker panics
    /// at its next dequeue point. Never acted on inside a mailbox drain
    /// callback — unwinding there would drop the rest of the drained
    /// batch on the floor.
    die_requested: bool,
    /// Actions currently between their body run and the completion of
    /// their RVP report, innermost last (inline dispatch nests). Empty at
    /// every dequeue point — where deliberate kills land — so this only
    /// carries state when a *bug* panics inside engine code mid-report;
    /// the supervisor then reports the interrupted slots so no RVP waits
    /// forever on a dead worker.
    executing: Vec<ExecutingAction>,
}

/// One in-flight RVP report on a worker's stack (see
/// [`WorkerState::executing`]).
struct ExecutingAction {
    txn: Arc<TxnCtx>,
    rvp: Arc<Rvp>,
    slot: usize,
    /// True once `Rvp::report` has been entered for this slot: the
    /// supervisor must then *not* report it again (double-reporting a
    /// slot corrupts the rendezvous count) and instead salvage-finalizes
    /// the transaction if the post-report handling never finished.
    reported: bool,
}

/// A destination-side hold on one migrating key range: actions for
/// `[ticket.lo, ticket.hi)` of `ticket.table` arriving between the
/// routing carve and the seal token park here in arrival order.
struct RangeBarrier {
    ticket: Arc<MigrationTicket>,
    held: VecDeque<ActionEnvelope>,
}

impl WorkerState {
    fn new(id: usize, workers: usize, trace: Arc<AccessTrace>) -> Self {
        WorkerState {
            id,
            ctx: WorkerCtx::new(id, trace),
            locks: LocalLockTable::new(),
            waiting: WaitList::new(),
            pending_wake: Vec::new(),
            wake_scratch: Vec::new(),
            priority: VecDeque::new(),
            fresh: VecDeque::new(),
            exported_deferred: 0,
            stats_dirty: false,
            inline_depth: 0,
            outbox: (0..workers).map(|_| Vec::new()).collect(),
            outbox_dirty: Vec::new(),
            barriers: Vec::new(),
            key_counts: HashMap::new(),
            die_requested: false,
            executing: Vec::new(),
        }
    }

    fn has_intake(&self) -> bool {
        !self.priority.is_empty() || !self.fresh.is_empty() || !self.pending_wake.is_empty()
    }

    /// Buffers one cross-partition message for the end-of-iteration flush.
    fn send_later(&mut self, partition: usize, msg: WorkerMsg) {
        if self.outbox[partition].is_empty() {
            self.outbox_dirty.push(partition);
        }
        self.outbox[partition].push(msg);
    }
}

/// Dispatches the next phase of `ctx`'s transaction (or commits it when
/// `specs` is empty). `local` is the calling worker's state when invoked
/// from RVP logic; `None` when invoked from `submit` — which is also what
/// routes fresh phases through mailbox admission (reserving a fresh-ring
/// slot *is* the admission gate).
fn advance(
    inner: &Arc<Inner>,
    ctx: &Arc<TxnCtx>,
    specs: Vec<ActionSpec>,
    local: Option<&mut WorkerState>,
) {
    if specs.is_empty() {
        // An empty phase ends the transaction — but only legitimately when
        // no later phases are queued. Committing while generators wait
        // would silently drop them; surface the flow-graph bug instead.
        let pending = ctx.phases.lock().len();
        let failure = (pending > 0).then(|| {
            StorageError::Internal(format!(
                "empty phase with {pending} phase generator(s) still queued"
            ))
        });
        finalize(inner, ctx, failure, local);
        return;
    }
    let assignments = {
        let routing = inner.routing.read();
        route_phase(
            &routing,
            inner.config.workers,
            &inner.next_secondary,
            &specs,
        )
    };
    let assignments = match assignments {
        Ok(a) => a,
        Err(e) => {
            finalize(inner, ctx, Some(e.into()), local);
            return;
        }
    };
    // A fresh (phase-1) dispatch pays admission: pushing onto a
    // partition's fresh ring reserves the slot, blocking — back-pressure —
    // while the ring is full, with one `submit_timeout` budget shared by
    // the whole phase. Later phases ride the priority lanes (their
    // transactions are already inside the engine, and a worker must never
    // block sending to another worker).
    let mut local = local;
    let local_id = local.as_deref().map(|st| st.id);
    let rvp = Arc::new(Rvp::new(specs.len()));
    let now = Instant::now();
    let admission_deadline = now + inner.config.submit_timeout;
    let mut inline = Vec::new();
    let mut phase_failure = None;
    let mut specs = specs.into_iter().zip(assignments).enumerate();
    for (slot, (spec, partition)) in specs.by_ref() {
        if !spec.aligned {
            inner.counters.secondary.fetch_add(1, Ordering::Relaxed);
        }
        ctx.mark_involved(partition, spec.table, &spec.keys);
        let envelope = ActionEnvelope {
            slot,
            table: spec.table,
            keys: spec.keys,
            body: spec.body,
            txn: ctx.clone(),
            rvp: rvp.clone(),
            dispatched: now,
        };
        // An action for this very worker's partition runs inline below —
        // no queue round-trip; it IS the front of the priority lane.
        if Some(partition) == local_id {
            inline.push(envelope);
            continue;
        }
        if let Some(st) = local.as_deref_mut() {
            // Worker-side send: buffered and coalesced; flushed once per
            // loop iteration as one push per target partition.
            st.send_later(partition, WorkerMsg::Action(envelope));
            continue;
        }
        // Chaos hook: an armed plan may force every Nth client-side fresh
        // push to fail as if the ring were full, exercising the admission
        // back-pressure abort path without actually filling queues.
        #[cfg(any(test, feature = "chaos"))]
        let pushed = {
            let forced = inner
                .chaos
                .read()
                .as_ref()
                .is_some_and(|chaos| chaos.forced_admission_failure());
            if forced {
                Err(PushError::Full(WorkerMsg::Action(envelope)))
            } else {
                inner.mailboxes[partition]
                    .push_fresh(WorkerMsg::Action(envelope), admission_deadline)
            }
        };
        #[cfg(not(any(test, feature = "chaos")))]
        let pushed =
            inner.mailboxes[partition].push_fresh(WorkerMsg::Action(envelope), admission_deadline);
        match pushed {
            Ok(()) => {}
            Err(err) => {
                // Admission failed for this slot: fail it and every
                // not-yet-dispatched sibling at the RVP. Already-enqueued
                // siblings that run observe `rvp.failed()` and skip their
                // doomed work; the transaction aborts visibly, never
                // silently.
                let reason = match err {
                    PushError::Full(_) => StorageError::Aborted(
                        "partition queue full: admission timed out under back-pressure".into(),
                    ),
                    PushError::Closed(_) => StorageError::Aborted("engine is shutting down".into()),
                };
                let mut undispatched = vec![slot];
                undispatched.extend(specs.by_ref().map(|(slot, _)| slot));
                for slot in undispatched {
                    if let PhaseEnd::Last { failure, .. } = rvp.report(slot, Err(reason.clone())) {
                        phase_failure = Some(failure.unwrap_or_else(|| reason.clone()));
                    }
                }
                if phase_failure.is_none() {
                    // Dispatched siblings are still out, and one parked
                    // on a lock would only notice `rvp.failed()` at a key
                    // release or its own lock-timeout — up to lock_timeout
                    // of needless lock-holding and reply latency. Probe
                    // the involved partitions so parked doomed actions
                    // abort now: the client-thread mirror of
                    // `nudge_doomed` (one direct lock-free push each; a
                    // closed mailbox means that worker is already
                    // aborting everything).
                    let remote: Vec<usize> = {
                        let involved = ctx.involved.lock();
                        involved
                            .iter()
                            .filter(|(_, keys)| !keys.is_empty())
                            .map(|(p, _)| *p)
                            .collect()
                    };
                    for partition in remote {
                        let _ = inner.mailboxes[partition]
                            .push_priority(WorkerMsg::Probe { txn: ctx.txn });
                    }
                }
                break;
            }
        }
    }
    if let Some(failure) = phase_failure {
        // Only reachable on the fresh path (no inline actions pending):
        // every slot has reported, so the transaction ends here.
        finalize(inner, ctx, Some(failure), local);
        return;
    }
    if let Some(st) = local {
        for envelope in inline {
            // Inline execution recurses (report → advance → here); past a
            // fixed depth, fall back to the priority lane so an arbitrarily
            // long same-partition phase chain unwinds through the worker
            // loop instead of overflowing the stack. The lane keeps its
            // cut-ahead-of-fresh-work property either way.
            if st.inline_depth >= INLINE_DISPATCH_DEPTH {
                st.priority.push_back(envelope);
            } else {
                st.inline_depth += 1;
                handle_action(inner, st, envelope);
                st.inline_depth -= 1;
            }
        }
    }
}

/// Terminates a transaction: commit (when `failure` is `None`) or abort.
/// Releases the calling worker's local locks directly (queueing wakeups
/// for actions parked on them) and sends every other involved partition
/// one batched `Finish` carrying the keys the transaction touched there —
/// via the worker's outbox (coalesced with any other same-target sends of
/// the drain batch) or, from a client thread, one direct lock-free push.
fn finalize(
    inner: &Arc<Inner>,
    ctx: &Arc<TxnCtx>,
    failure: Option<StorageError>,
    local: Option<&mut WorkerState>,
) {
    // Exactly-once: the supervisor's salvage path can race a worker-side
    // finalize for the same transaction (it steals the transaction when a
    // worker died mid-report); whoever wins the CAS terminates it, the
    // loser backs off without touching counters, reply, or `active`.
    if !ctx.try_finalize() {
        return;
    }
    // A doomed transaction (a worker holding part of its lock state died)
    // must not commit even if its remaining actions all succeeded: the
    // contract is a retryable abort, so the client re-runs it against the
    // recovered partition instead of relying on salvaged state.
    let failure = match failure {
        None if ctx.is_doomed() => Some(StorageError::WorkerUnavailable(
            "transaction straddled a partition worker that died".into(),
        )),
        other => other,
    };
    let outcome = match failure {
        None => match inner.db.commit_policy(ctx.txn, DORA_POLICY) {
            Ok(()) => TxnOutcome::Committed,
            Err(e) => {
                // A durability failure surfaces *before* the transaction
                // is marked committed: roll it back so its writes never
                // become visible, and count the I/O failure distinctly.
                if matches!(e, StorageError::LogIo(_) | StorageError::LogPoisoned(_)) {
                    inner.counters.log_io_errors.fetch_add(1, Ordering::Relaxed);
                }
                let _ = inner.db.abort_policy(ctx.txn, DORA_POLICY);
                TxnOutcome::Aborted {
                    reason: format!("commit failed: {e}"),
                }
            }
        },
        Some(e) => {
            let _ = inner.db.abort_policy(ctx.txn, DORA_POLICY);
            TxnOutcome::Aborted {
                reason: e.to_string(),
            }
        }
    };
    let mut local = local;
    let local_id = local.as_deref().map(|st| st.id);
    // Split the involvement list once: release this worker's keys in
    // place, clone only what must travel to other partitions. The common
    // single-partition transaction clones nothing and sends nothing.
    let mut remote: Vec<(usize, Vec<(TableId, i64)>)> = Vec::new();
    {
        let involved = ctx.involved.lock();
        if let Some(st) = local.as_deref_mut() {
            if let Some((_, keys)) = involved.iter().find(|(p, _)| Some(*p) == local_id) {
                if st
                    .locks
                    .release_keys_into(ctx.txn, keys, &mut st.pending_wake)
                    > 0
                {
                    st.stats_dirty = true;
                }
                // A migration may have moved some of these keys' lock
                // entries to another partition after this worker acquired
                // them (the local release above is a no-op for those).
                // Forward a Finish to the current owner so the transferred
                // entries are released too.
                if inner.migration_epoch.load(Ordering::Relaxed) > 0 {
                    for (owner, keys) in foreign_keys(inner, st.id, keys) {
                        inner.counters.forwarded.fetch_add(1, Ordering::Relaxed);
                        st.send_later(owner, WorkerMsg::Finish { txn: ctx.txn, keys });
                    }
                }
            }
            // A transaction completing here is a natural transition point
            // to publish this worker's counters — when any moved. A worker
            // that only ran keyless secondary probes for this transaction
            // has no lock or queue transition to export, so the dirty flag
            // covers that case uniformly (no special-casing by action
            // kind).
            if st.stats_dirty {
                export_stats(inner, st);
            }
        }
        for (partition, keys) in involved.iter() {
            // An empty key set means the partition only ran secondary
            // probes that never parked on a key (a diverted probe records
            // its park key and is released like any aligned access):
            // nothing to release, no one to wake, no Finish needed.
            if Some(*partition) != local_id && !keys.is_empty() {
                remote.push((*partition, keys.clone()));
            }
        }
    }
    for (partition, keys) in remote {
        let msg = WorkerMsg::Finish { txn: ctx.txn, keys };
        match local.as_deref_mut() {
            Some(st) => st.send_later(partition, msg),
            // Client-thread finalize (admission/routing failure): one
            // lock-free push; a closed mailbox means the engine is gone
            // and its locks with it.
            None => {
                let _ = inner.mailboxes[partition].push_priority(msg);
            }
        }
    }
    match &outcome {
        TxnOutcome::Committed => inner.counters.committed.fetch_add(1, Ordering::Relaxed),
        TxnOutcome::Aborted { .. } => inner.counters.aborted.fetch_add(1, Ordering::Relaxed),
    };
    let _ = ctx.reply.send(outcome);
    inner.registry.remove(ctx.txn);
    inner.active.fetch_sub(1, Ordering::AcqRel);
}

/// Bounded scheduler-yield spin a worker performs on an empty mailbox
/// before committing to the futex park. Sized to a handful of quanta: an
/// idle partition still parks (and burns no CPU), while a partition in a
/// steady message flow rides publication-to-publication without syscalls.
const PARK_SPIN_YIELDS: u32 = 32;

/// The partition worker ("micro-engine") main loop.
///
/// Event-driven: the worker parks on its mailbox when it has nothing
/// actionable (eventcount — parking only on verified-empty), with a
/// deadline only when parked actions exist — sized to the earliest
/// lock-timeout expiry, not a fixed poll interval. Each iteration
/// **batch-drains** the mailbox: the priority lane in one atomic swap
/// (finishes apply their lock releases immediately), the fresh ring's
/// published segment in one pass. It then wakes parked actions whose keys
/// were released, runs one action — priority lane first — and flushes the
/// outbox (one coalesced push per target partition touched this
/// iteration).
fn worker_loop(inner: &Arc<Inner>, st: &mut WorkerState) {
    let id = st.id;
    let mailbox = &inner.mailboxes[id];
    let mut batch: Vec<WorkerMsg> = Vec::new();
    loop {
        // Liveness heartbeat for the supervisor: one relaxed bump per
        // iteration on a line nobody contends.
        inner.supervision.heartbeats[id].fetch_add(1, Ordering::Relaxed);
        if !st.has_intake() && !mailbox.has_pending() {
            // Nothing actionable and nothing visibly queued: publish
            // counters if they moved, then park until a message is
            // published or the earliest parked deadline passes (the sweep
            // below handles expiry). While traffic keeps flowing the
            // `has_pending` probe skips the park handshake entirely.
            if st.stats_dirty {
                export_stats(inner, st);
            }
            // Yield-spin before the futex park: under continuous load the
            // next message typically lands within a few scheduler yields
            // (on an oversubscribed box the yield hands the quantum to the
            // producer directly), so the park handshake — two futex
            // syscalls plus a context switch per message — is paid only by
            // genuinely idle partitions. This is what keeps a *balanced*
            // partition spread from losing to a single hot worker whose
            // never-empty queue amortizes the wakeups away.
            let mut spins = 0;
            while spins < PARK_SPIN_YIELDS && !mailbox.has_pending() && !mailbox.is_closed() {
                std::thread::yield_now();
                spins += 1;
            }
            if !mailbox.has_pending() {
                mailbox.park(st.waiting.next_deadline(inner.config.lock_timeout));
            }
        }
        if mailbox.is_closed() {
            break;
        }
        // Priority lane first: one swap takes the whole segment.
        mailbox.drain_priority_with(|msg| intake(inner, st, msg));
        // Fresh ring: the published segment in one pass, straight into
        // the local lane. Admission slots stay claimed until each action
        // is taken up for processing.
        mailbox.drain_fresh_with(|msg| match msg {
            WorkerMsg::Action(envelope) => st.fresh.push_back(envelope),
            other => intake(inner, st, other),
        });
        drain_wakeups(inner, st);
        // The dequeue point is where deliberate kills land: *after* the
        // drains (every delivered envelope is safely in `st`'s queues for
        // the supervisor to salvage — zero loss) and *before* popping the
        // next action (a popped envelope would die in a local variable).
        // `resume_unwind` skips the panic hook, so an injected death
        // doesn't spray a backtrace; the top-level `catch_unwind` in
        // `spawn_worker` still catches it and files the crash report.
        if st.die_requested {
            std::panic::resume_unwind(Box::new(ChaosKill));
        }
        #[cfg(any(test, feature = "chaos"))]
        if !st.priority.is_empty() || !st.fresh.is_empty() {
            let chaos = inner.chaos.read().clone();
            if let Some(chaos) = chaos {
                if chaos.should_kill(id) {
                    inner.counters.chaos_kills.fetch_add(1, Ordering::Relaxed);
                    std::panic::resume_unwind(Box::new(ChaosKill));
                }
            }
        }
        let next = st.priority.pop_front().or_else(|| {
            // Taking a fresh action up for processing frees its
            // admission slot.
            st.fresh.pop_front().inspect(|_| mailbox.free_fresh_slot())
        });
        if let Some(envelope) = next {
            handle_action(inner, st, envelope);
        }
        // Busy-path backstop: abort parked actions whose lock timeout
        // passed while the worker was occupied (the idle path already
        // wakes up exactly on time).
        if !st.waiting.is_empty()
            && st
                .waiting
                .deadline_passed(inner.config.lock_timeout, Instant::now())
        {
            sweep_expired(inner, st);
        }
        sync_deferred(inner, st);
        flush_outbox(inner, st);
    }
    // Shutdown: whatever is still queued or parked can never complete (no
    // further messages will arrive) — abort those transactions. The
    // mailbox is drained too (see `Mailbox::drain_closed_into`): a close
    // never drops admitted work silently.
    mailbox.drain_closed_into(&mut batch);
    let mut leftovers: Vec<ActionEnvelope> = Vec::new();
    for msg in batch.drain(..) {
        collect_leftover_actions(msg, &mut leftovers);
    }
    let fresh_backlog = st.fresh.len();
    leftovers.extend(st.priority.drain(..));
    leftovers.extend(st.fresh.drain(..));
    for _ in 0..fresh_backlog {
        mailbox.free_fresh_slot();
    }
    leftovers.extend(st.waiting.drain());
    // Barrier-held arrivals are stranded too: their seal token will never
    // come (the source worker is shutting down with everyone else).
    for barrier in st.barriers.drain(..) {
        leftovers.extend(barrier.held);
    }
    for envelope in leftovers {
        complete(
            inner,
            st,
            envelope,
            Err(StorageError::Aborted("engine is shutting down".into())),
        );
    }
    // Completing leftovers can produce finish/probe messages for other
    // partitions; push what still can be delivered, drop the rest (their
    // mailboxes are as dead as this one).
    flush_outbox(inner, st);
    export_stats(inner, st);
}

/// Spawns one partition worker thread around a top-level `catch_unwind`:
/// a panic that escapes the per-body guard (an engine bug, or a
/// deliberate [`ChaosKill`]) does not take the partition's state down
/// with the thread — the dying thread boxes its entire [`WorkerState`]
/// into a [`CrashReport`] and wakes the supervisor, which salvages it and
/// respawns the worker.
fn spawn_worker(inner: Arc<Inner>, st: WorkerState) -> JoinHandle<()> {
    let id = st.id;
    std::thread::Builder::new()
        .name(format!("dora-worker-{id}"))
        .spawn(move || {
            let mut st = st;
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                worker_loop(&inner, &mut st)
            }));
            if let Err(payload) = run {
                let report = CrashReport {
                    id,
                    panic_msg: describe_panic(payload.as_ref()),
                    state: Box::new(st),
                    died_at: Instant::now(),
                };
                inner
                    .supervision
                    .crashed
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(report);
                inner.supervision.signal.notify_all();
            }
        })
        .expect("spawn DORA partition worker")
}

/// Human-readable cause for a crash report.
fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if payload.is::<ChaosKill>() {
        return "injected worker kill".into();
    }
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".into())
}

/// The supervisor thread: owns the worker join handles, sleeps on the
/// crash-report condvar (with a 100 ms liveness tick), and recovers every
/// reported death. On shutdown it joins the workers and handles any crash
/// that raced the close with a final no-respawn recovery, so even a
/// worker dying mid-shutdown strands nothing.
fn supervisor_loop(inner: Arc<Inner>, handles: Vec<JoinHandle<()>>) {
    let mut handles: Vec<Option<JoinHandle<()>>> = handles.into_iter().map(Some).collect();
    loop {
        let (reports, stop) = {
            let mut guard = inner
                .supervision
                .crashed
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if guard.is_empty() && !inner.supervision.stop.load(Ordering::Acquire) {
                guard = inner
                    .supervision
                    .signal
                    .wait_timeout(guard, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
            (
                std::mem::take(&mut *guard),
                inner.supervision.stop.load(Ordering::Acquire),
            )
        };
        for report in reports {
            let id = report.id;
            if let Some(handle) = handles[id].take() {
                // The thread pushed its report as its last act; the join
                // is immediate.
                let _ = handle.join();
            }
            if let Some(seed) = recover_worker(&inner, report, !stop) {
                handles[id] = Some(spawn_worker(inner.clone(), seed));
            }
        }
        if stop {
            for handle in handles.iter_mut().filter_map(|h| h.take()) {
                let _ = handle.join();
            }
            // A worker that crashed while draining its closed mailbox
            // filed a report after the sweep above: recover (abort and
            // reply) without respawning.
            let late = std::mem::take(
                &mut *inner
                    .supervision
                    .crashed
                    .lock()
                    .unwrap_or_else(|e| e.into_inner()),
            );
            for report in late {
                let _ = recover_worker(&inner, report, false);
            }
            break;
        }
        // Silent-death backstop: a worker thread that exited without a
        // crash report and without its mailbox being closed lost its
        // state (nothing to salvage) — respawn it empty so the partition
        // at least serves again; straddling transactions resolve through
        // their lock timeouts.
        for (id, slot) in handles.iter_mut().enumerate() {
            let finished = slot.as_ref().is_some_and(|h| h.is_finished());
            if !finished || inner.mailboxes[id].is_closed() {
                continue;
            }
            let reported = inner
                .supervision
                .crashed
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .any(|r| r.id == id);
            if reported {
                continue; // its crash report is queued; next iteration handles it
            }
            if let Some(handle) = slot.take() {
                let _ = handle.join();
            }
            let report = CrashReport {
                id,
                state: Box::new(WorkerState::new(
                    id,
                    inner.config.workers,
                    inner.trace.clone(),
                )),
                panic_msg: "worker thread exited silently".into(),
                died_at: Instant::now(),
            };
            if let Some(seed) = recover_worker(&inner, report, true) {
                *slot = Some(spawn_worker(inner.clone(), seed));
            }
        }
    }
}

/// Rebuilds a crashed partition worker's state and aborts — retryably —
/// every in-flight transaction that touched the partition. Runs on the
/// supervisor thread while every *other* partition keeps serving; the
/// dead partition's own mailbox stays open the whole time, so clients
/// keep enqueueing (bounded by admission) and nothing sent during the
/// pause is lost.
///
/// The recovery protocol, in order:
///
/// 1. Deliver the dead worker's unflushed outbox (empty when the kill
///    landed at the dequeue point; a panic mid-report may leave messages
///    whose loss would strand other partitions' transactions).
/// 2. Salvage the local lock table with `take_all` and **doom** every
///    holder found through the registry. The salvaged entries seed the
///    fresh table (`absorb`) instead of being dropped: rebuilding empty
///    is only sound once the straddling transactions have aborted, and
///    seeding closes the window in between — a fresh action cannot
///    acquire a key whose doomed writer's data is still uncommitted. The
///    doomed transactions' abort finalizes broadcast `Finish` messages
///    that release the seeded entries through the normal path.
/// 3. Resolve the interrupted-report stack (engine-bug panics only; see
///    [`WorkerState::executing`]): unreported slots get a synthesized
///    `WorkerUnavailable` report so their RVPs always join; reported but
///    unfinalized transactions are salvage-finalized.
/// 4. Abort every salvaged priority-lane, parked, and barrier-held
///    envelope with `WorkerUnavailable` — they belong to transactions
///    already inside the engine whose partition-local context died.
/// 5. Re-admit the salvaged **fresh** backlog (phase-1 work that never
///    started; its transactions lost nothing) unless doomed.
/// 6. Probe every doomed transaction's involved partitions so parked
///    siblings abort *now* — the orphan reaper — instead of waiting out
///    `lock_timeout` on a rendezvous that can never join.
///
/// Returns the seeded state for the replacement worker, or `None` when
/// `respawn` is false (engine shutting down) — then the closed mailbox is
/// drained and aborted here instead, exactly like a worker's own
/// shutdown tail.
fn recover_worker(inner: &Arc<Inner>, crash: CrashReport, respawn: bool) -> Option<WorkerState> {
    let CrashReport {
        id,
        state,
        panic_msg,
        died_at,
    } = crash;
    let mut dead = *state;
    let mut fresh = WorkerState::new(id, inner.config.workers, inner.trace.clone());
    let mut doomed: Vec<Arc<TxnCtx>> = Vec::new();
    fn doom_ctx(ctx: &Arc<TxnCtx>, doomed: &mut Vec<Arc<TxnCtx>>) {
        if !ctx.is_doomed() {
            ctx.doom();
            doomed.push(ctx.clone());
        }
    }
    // 1. Unflushed outbox.
    flush_outbox(inner, &mut dead);
    // 2. Lock-table salvage.
    let moved = dead.locks.take_all();
    for entry in &moved {
        for &reader in &entry.readers {
            if let Some(ctx) = inner.registry.get(reader) {
                doom_ctx(&ctx, &mut doomed);
            }
        }
        if let Some(writer) = entry.writer {
            if let Some(ctx) = inner.registry.get(writer) {
                doom_ctx(&ctx, &mut doomed);
            }
        }
    }
    if !moved.is_empty() {
        fresh.locks.absorb(moved);
    }
    // 3. Interrupted reports, innermost first.
    let unavailable =
        || StorageError::WorkerUnavailable(format!("partition worker {id} died: {panic_msg}"));
    for exec in dead.executing.drain(..).rev() {
        doom_ctx(&exec.txn, &mut doomed);
        if exec.reported {
            salvage_finalize(inner, &exec.txn, unavailable());
        } else {
            report(
                inner,
                &mut fresh,
                &exec.txn,
                &exec.rvp,
                exec.slot,
                Err(unavailable()),
            );
        }
    }
    // 4. Queued later-phase work, parked actions, barrier holds.
    let mut straddlers: Vec<ActionEnvelope> = Vec::new();
    straddlers.extend(dead.priority.drain(..));
    straddlers.extend(dead.waiting.drain());
    for barrier in &mut dead.barriers {
        straddlers.extend(barrier.held.drain(..));
    }
    for envelope in straddlers {
        doom_ctx(&envelope.txn, &mut doomed);
        complete(inner, &mut fresh, envelope, Err(unavailable()));
    }
    // Keep the (emptied) barriers: their migrations are still in flight
    // and the seal tokens arrive through the live mailbox.
    if respawn {
        fresh.barriers = std::mem::take(&mut dead.barriers);
    }
    // 5. Fresh backlog: phase-1 actions that never started. Their
    // admission slots stay claimed until the new worker pops them.
    for envelope in dead.fresh.drain(..) {
        if envelope.txn.is_doomed() {
            complete(inner, &mut fresh, envelope, Err(unavailable()));
            inner.mailboxes[id].free_fresh_slot();
        } else {
            fresh.fresh.push_back(envelope);
        }
    }
    // 6. Orphan reaper: wake the doomed transactions' parked siblings
    // everywhere they are involved (including this partition — the probe
    // rides the live mailbox to the replacement worker).
    inner
        .counters
        .orphan_aborts
        .fetch_add(doomed.len() as u64, Ordering::Relaxed);
    for ctx in &doomed {
        let involved: Vec<usize> = {
            let involved = ctx.involved.lock();
            involved
                .iter()
                .filter(|(_, keys)| !keys.is_empty())
                .map(|(p, _)| *p)
                .collect()
        };
        for partition in involved {
            fresh.send_later(partition, WorkerMsg::Probe { txn: ctx.txn });
        }
    }
    flush_outbox(inner, &mut fresh);
    if !respawn {
        // Shutting down: no replacement worker will ever drain the (now
        // closed) mailbox — run the shutdown tail here so every admitted
        // message still gets a visible abort.
        let mailbox = &inner.mailboxes[id];
        let mut batch: Vec<WorkerMsg> = Vec::new();
        if mailbox.is_closed() {
            mailbox.drain_closed_into(&mut batch);
        }
        let mut leftovers: Vec<ActionEnvelope> = Vec::new();
        for msg in batch {
            collect_leftover_actions(msg, &mut leftovers);
        }
        let fresh_backlog = fresh.fresh.len();
        leftovers.extend(fresh.fresh.drain(..));
        for _ in 0..fresh_backlog {
            mailbox.free_fresh_slot();
        }
        for envelope in leftovers {
            complete(
                inner,
                &mut fresh,
                envelope,
                Err(StorageError::Aborted("engine is shutting down".into())),
            );
        }
        flush_outbox(inner, &mut fresh);
        export_stats(inner, &mut fresh);
        return None;
    }
    inner
        .counters
        .worker_restarts
        .fetch_add(1, Ordering::Relaxed);
    inner
        .counters
        .restart_pause_us
        .fetch_add(died_at.elapsed().as_micros() as u64, Ordering::Relaxed);
    Some(fresh)
}

/// Best-effort finalize for a transaction whose worker died *after*
/// entering its RVP report but before the post-report handling finished.
/// If the normal finalize never started (the CAS wins here), the
/// transaction is rolled back — unless the storage layer says it already
/// reached a terminal state, which means the dead worker committed it and
/// only the reply was lost: then the client is told `Committed`, because
/// the commit is durable and "no acked commit is ever lost" must also
/// hold for commits that were *about* to be acked. If the CAS loses, a
/// finalize was already in flight and its effects stand.
fn salvage_finalize(inner: &Arc<Inner>, ctx: &Arc<TxnCtx>, reason: StorageError) {
    if !ctx.try_finalize() {
        return;
    }
    let outcome = match inner.db.abort_policy(ctx.txn, DORA_POLICY) {
        Ok(()) => TxnOutcome::Aborted {
            reason: reason.to_string(),
        },
        Err(_) => TxnOutcome::Committed,
    };
    // Release the transaction's locks everywhere it was involved; the
    // pushes ride each partition's live mailbox.
    let remote: Vec<(usize, Vec<(TableId, i64)>)> = {
        let involved = ctx.involved.lock();
        involved
            .iter()
            .filter(|(_, keys)| !keys.is_empty())
            .map(|(p, keys)| (*p, keys.clone()))
            .collect()
    };
    for (partition, keys) in remote {
        let _ = inner.mailboxes[partition].push_priority(WorkerMsg::Finish { txn: ctx.txn, keys });
    }
    match &outcome {
        TxnOutcome::Committed => inner.counters.committed.fetch_add(1, Ordering::Relaxed),
        TxnOutcome::Aborted { .. } => inner.counters.aborted.fetch_add(1, Ordering::Relaxed),
    };
    let _ = ctx.reply.send(outcome);
    inner.registry.remove(ctx.txn);
    inner.active.fetch_sub(1, Ordering::AcqRel);
}

/// Pulls the action envelopes out of a message salvaged from a closed
/// mailbox so their transactions can be aborted visibly.
fn collect_leftover_actions(msg: WorkerMsg, out: &mut Vec<ActionEnvelope>) {
    match msg {
        WorkerMsg::Action(envelope) => out.push(envelope),
        WorkerMsg::Batch(msgs) => {
            for msg in msgs {
                collect_leftover_actions(msg, out);
            }
        }
        // Dropping a migration ticket unblocks the coordinator with a
        // `Shutdown` error; a seal token's transferred actions are
        // leftovers to abort like any other stranded envelope.
        WorkerMsg::RangeBegin { .. } | WorkerMsg::RangeDrain { .. } => {}
        WorkerMsg::RangeSealed { parked, .. } => out.extend(parked),
        WorkerMsg::Finish { .. } | WorkerMsg::Probe { .. } | WorkerMsg::Die => {}
    }
}

/// Applies one incoming priority-lane message: finishes release their
/// keys immediately (queueing targeted wakeups), later-phase actions join
/// the priority lane, batches unpack (they are never nested). Migration
/// messages drive the range-handoff protocol (see
/// [`DoraEngine::migrate_range`]).
fn intake(inner: &Arc<Inner>, st: &mut WorkerState, msg: WorkerMsg) {
    match msg {
        WorkerMsg::Action(envelope) => st.priority.push_back(envelope),
        WorkerMsg::Finish { txn, keys } => {
            if st.locks.release_keys_into(txn, &keys, &mut st.pending_wake) > 0 {
                st.stats_dirty = true;
            }
            // Keys a migration moved away release at their current owner.
            if inner.migration_epoch.load(Ordering::Relaxed) > 0 {
                for (owner, keys) in foreign_keys(inner, st.id, &keys) {
                    inner.counters.forwarded.fetch_add(1, Ordering::Relaxed);
                    st.send_later(owner, WorkerMsg::Finish { txn, keys });
                }
            }
        }
        WorkerMsg::Probe { txn } => probe_txn(inner, st, txn),
        // Only a flag: panicking inside a mailbox drain callback would
        // drop the rest of the drained batch. The worker dies at its next
        // dequeue point, after everything delivered alongside the token
        // is safely in the local queues for the supervisor to salvage.
        WorkerMsg::Die => st.die_requested = true,
        WorkerMsg::Batch(msgs) => {
            for msg in msgs {
                intake(inner, st, msg);
            }
        }
        // Destination side, step 1: barricade the incoming range, then ack
        // so the coordinator may carve the routing table.
        WorkerMsg::RangeBegin { ticket } => {
            st.barriers.push(RangeBarrier {
                ticket: ticket.clone(),
                held: VecDeque::new(),
            });
            let _ = ticket.installed.send(());
        }
        // Source side, step 3: extract the range's lock entries and parked
        // actions and ship them. Parked actions whose key set straddles
        // the range boundary cannot move atomically — abort them with a
        // retryable error (their resubmission routes cleanly).
        WorkerMsg::RangeDrain { ticket } => {
            let locks = st.locks.extract_range(ticket.table, ticket.lo, ticket.hi);
            let taken = st.waiting.take_range(ticket.table, ticket.lo, ticket.hi);
            let mut parked = Vec::new();
            let mut straddlers = Vec::new();
            for envelope in taken {
                let fits = envelope
                    .keys
                    .iter()
                    .all(|&(key, _)| key >= ticket.lo && key < ticket.hi);
                if fits {
                    parked.push(envelope);
                } else {
                    straddlers.push(envelope);
                }
            }
            st.stats_dirty = true;
            let dst = ticket.dst;
            let aborted_straddlers = straddlers.len();
            // Seal before completing straddlers: a straddler's abort can
            // emit a Finish for already-extracted keys toward `dst`, and
            // the outbox preserves per-target order — the seal (carrying
            // those entries) must land first or the release would no-op.
            st.send_later(
                dst,
                WorkerMsg::RangeSealed {
                    ticket,
                    locks,
                    parked,
                    aborted_straddlers,
                },
            );
            for envelope in straddlers {
                complete(
                    inner,
                    st,
                    envelope,
                    Err(StorageError::Aborted(
                        "parked action split by a range migration; retry".into(),
                    )),
                );
            }
            sync_deferred(inner, st);
        }
        // Destination side: absorb the transferred lock state, re-admit
        // transferred parked actions then barrier-held arrivals (in that
        // order — the transferred ones parked first at the source), and
        // ack the migration.
        WorkerMsg::RangeSealed {
            ticket,
            locks,
            parked,
            aborted_straddlers,
        } => {
            let moved_locks = locks.len();
            if moved_locks > 0 {
                st.locks.absorb(locks);
                st.stats_dirty = true;
            }
            let moved_parked = parked.len();
            let idx = st
                .barriers
                .iter()
                .position(|b| Arc::ptr_eq(&b.ticket, &ticket));
            let held = match idx {
                Some(i) => st.barriers.remove(i).held,
                None => VecDeque::new(),
            };
            let barrier_held = held.len();
            // Re-admit through `handle_action`, not a direct park: a
            // transferred action whose blocker finished before the
            // extraction must run now — nothing will ever wake it again.
            for envelope in parked {
                handle_action(inner, st, envelope);
            }
            for envelope in held {
                handle_action(inner, st, envelope);
            }
            inner.counters.migrations.fetch_add(1, Ordering::Relaxed);
            let _ = ticket.done.send(SealStats {
                moved_locks,
                moved_parked,
                barrier_held,
                aborted_straddlers,
            });
            sync_deferred(inner, st);
        }
    }
}

/// Groups `keys` the current routing assigns to a partition other than
/// `local` by their owning partition (for post-migration forwarding).
/// Returns an empty vec in the common all-local case without allocating.
fn foreign_keys(
    inner: &Arc<Inner>,
    local: usize,
    keys: &[(TableId, i64)],
) -> Vec<(usize, Vec<(TableId, i64)>)> {
    let workers = inner.config.workers.max(1);
    let mut grouped: Vec<(usize, Vec<(TableId, i64)>)> = Vec::new();
    let routing = inner.routing.read();
    for &(table, key) in keys {
        let owner = routing.owner_of(table, key) % workers;
        if owner == local {
            continue;
        }
        match grouped.iter_mut().find(|(p, _)| *p == owner) {
            Some((_, keys)) => keys.push((table, key)),
            None => grouped.push((owner, vec![(table, key)])),
        }
    }
    grouped
}

/// Delivers the outbox: one priority-lane push per target partition,
/// however many messages this iteration produced for it (same-target
/// sends coalesce into a [`WorkerMsg::Batch`]). A push only fails once
/// the target's mailbox is closed (engine shutdown) — the envelopes it
/// carried are failed at their RVPs so their transactions abort instead
/// of hanging; the loop also covers messages those failures enqueue.
fn flush_outbox(inner: &Arc<Inner>, st: &mut WorkerState) {
    // Chaos hook: an armed plan may stall every Nth non-empty flush,
    // simulating slow cross-partition delivery.
    #[cfg(any(test, feature = "chaos"))]
    if !st.outbox_dirty.is_empty() {
        let delay = inner
            .chaos
            .read()
            .as_ref()
            .and_then(|chaos| chaos.delivery_delay());
        if let Some(delay) = delay {
            std::thread::sleep(delay);
        }
    }
    while let Some(partition) = st.outbox_dirty.pop() {
        let mut msgs = std::mem::take(&mut st.outbox[partition]);
        let batched = msgs.len() as u64;
        let msg = if msgs.len() == 1 {
            msgs.pop().expect("one message")
        } else {
            WorkerMsg::Batch(msgs)
        };
        // Counted before the push so the increments are ordered before
        // the message's effects (an observer who saw the delivered work
        // also sees them); a push rejected by a closed mailbox is not
        // coalescing traffic the engine paid for, so the rare shutdown
        // failure path takes the counts back out.
        let counters = &inner.partitions[st.id];
        counters.outbox_msgs.fetch_add(batched, Ordering::Relaxed);
        counters.outbox_pushes.fetch_add(1, Ordering::Relaxed);
        if let Err(err) = inner.mailboxes[partition].push_priority(msg) {
            counters.outbox_msgs.fetch_sub(batched, Ordering::Relaxed);
            counters.outbox_pushes.fetch_sub(1, Ordering::Relaxed);
            let mut dead = Vec::new();
            collect_leftover_actions(err.into_inner(), &mut dead);
            let reason =
                StorageError::WorkerUnavailable(format!("partition worker {partition} is gone"));
            for envelope in dead {
                complete(inner, st, envelope, Err(reason.clone()));
            }
        }
    }
}

/// Wakes parked actions whose keys were released — and only those: every
/// other parked action stays untouched, which is the wait list's entire
/// win over the old full-rescan (`rescans_avoided` counts it).
///
/// Running a woken action can finish its transaction and release more
/// keys on this worker; the loop drains those cascades too.
fn drain_wakeups(inner: &Arc<Inner>, st: &mut WorkerState) {
    // The common case — keys released with nothing parked (every
    // uncontended transaction) — must not churn allocations: `clear`
    // keeps the buffer for the next release, where `take` would throw it
    // away once per transaction.
    if st.waiting.is_empty() {
        st.pending_wake.clear();
        return;
    }
    while !st.pending_wake.is_empty() {
        // Swap this round's keys into the scratch buffer; releases the
        // woken actions produce accumulate in the (emptied) pending
        // buffer for the next round. Both allocations survive the whole
        // cascade and the next transaction — nothing is reallocated.
        std::mem::swap(&mut st.pending_wake, &mut st.wake_scratch);
        st.pending_wake.clear();
        let parked_before = st.waiting.len() as u64;
        if parked_before == 0 {
            st.wake_scratch.clear();
            return;
        }
        let woken = st.waiting.candidates(&st.wake_scratch);
        let counters = &inner.partitions[st.id];
        counters
            .wakeups
            .fetch_add(woken.len() as u64, Ordering::Relaxed);
        counters
            .rescans_avoided
            .fetch_add(parked_before - woken.len() as u64, Ordering::Relaxed);
        for (seq, envelope) in woken {
            if let Some(envelope) = try_run(inner, st, seq, envelope) {
                // Still blocked: back to the wait list under its original
                // sequence number, keeping its place in the fairness
                // order.
                st.waiting.park_at(seq, envelope);
            }
        }
        st.wake_scratch.clear();
    }
}

/// Aborts (or, if their locks freed up at the last moment, runs) parked
/// actions whose deferral outlived the lock timeout.
fn sweep_expired(inner: &Arc<Inner>, st: &mut WorkerState) {
    let now = Instant::now();
    let expired = st.waiting.expired(inner.config.lock_timeout, now);
    for (seq, envelope) in expired {
        if let Some(envelope) = try_run(inner, st, seq, envelope) {
            st.waiting.park_at(seq, envelope);
        }
    }
}

/// Attempts to run one action: skip it when a sibling already failed,
/// execute it when its local locks are grantable and no earlier-parked
/// conflicting action is waiting, abort its transaction when it outlived
/// the lock timeout. Returns the envelope back when the action must stay
/// parked. `seq` is the action's position in the fairness order
/// ([`FRESH_SEQ`] for actions not parked yet).
#[must_use]
fn try_run(
    inner: &Arc<Inner>,
    st: &mut WorkerState,
    seq: u64,
    envelope: ActionEnvelope,
) -> Option<ActionEnvelope> {
    // A sibling action already failed: the transaction will abort, don't
    // run (or wait for locks on) work whose effects would only be undone.
    if envelope.rvp.failed() {
        wake_successors(st, seq, &envelope);
        complete(
            inner,
            st,
            envelope,
            Err(StorageError::Aborted("sibling action failed".into())),
        );
        return None;
    }
    // The supervisor doomed this transaction: a partition worker holding
    // part of its state died. Abort retryably instead of executing on a
    // transaction whose context is gone.
    if envelope.txn.is_doomed() {
        wake_successors(st, seq, &envelope);
        complete(
            inner,
            st,
            envelope,
            Err(StorageError::WorkerUnavailable(
                "transaction straddled a partition worker that died".into(),
            )),
        );
        return None;
    }
    // Any keyed attempt below moves a lock counter (grant or conflict);
    // a keyless secondary probe touches neither lock table nor wait list.
    if !envelope.keys.is_empty() {
        st.stats_dirty = true;
    }
    if !st.waiting.conflicts_with_earlier(seq, &envelope, &st.locks) {
        let requests: Vec<_> = envelope
            .keys
            .iter()
            .map(|&(key, class)| (envelope.table, key, class))
            .collect();
        if st.locks.try_acquire(envelope.txn.txn, &requests) {
            execute(inner, st, envelope);
            return None;
        }
    }
    if envelope.dispatched.elapsed() >= inner.config.lock_timeout {
        wake_successors(st, seq, &envelope);
        let txn = envelope.txn.txn;
        complete(inner, st, envelope, Err(StorageError::LockTimeout(txn)));
        None
    } else {
        Some(envelope)
    }
}

/// A **parked** action leaving the wait list without running (timeout
/// abort, doomed-sibling skip) held no locks, but it may have been the
/// fairness barrier actions behind it queued on — and some of its keys
/// may have no holder at all, so no future release will ever name them.
/// Queue its keys for a wakeup pass so successors are re-examined now
/// instead of stalling until their own timeouts.
fn wake_successors(st: &mut WorkerState, seq: u64, envelope: &ActionEnvelope) {
    if seq == FRESH_SEQ {
        // Never parked: nothing could be queued behind it.
        return;
    }
    st.pending_wake
        .extend(envelope.keys.iter().map(|&(key, _)| (envelope.table, key)));
}

/// Executes one incoming action, parking it in the wait list when its
/// locks are taken or a parked conflicting action is ahead of it.
///
/// Two migration checks come first, both free in the steady state. A
/// barrier hold: while a migration into this partition is in flight,
/// actions for the moving range wait for its seal token. An ownership
/// re-check (only once any migration has ever happened): an action whose
/// keys the current routing assigns to another partition is forwarded
/// there instead of running on stale authority.
fn handle_action(inner: &Arc<Inner>, st: &mut WorkerState, envelope: ActionEnvelope) {
    if !st.barriers.is_empty() {
        let held = st.barriers.iter().position(|b| {
            b.ticket.table == envelope.table
                && envelope
                    .keys
                    .iter()
                    .any(|&(key, _)| key >= b.ticket.lo && key < b.ticket.hi)
        });
        if let Some(idx) = held {
            st.barriers[idx].held.push_back(envelope);
            return;
        }
    }
    if inner.migration_epoch.load(Ordering::Relaxed) > 0 && !envelope.keys.is_empty() {
        let owner = {
            let workers = inner.config.workers.max(1);
            let routing = inner.routing.read();
            let mut owners = envelope
                .keys
                .iter()
                .map(|&(key, _)| routing.owner_of(envelope.table, key) % workers);
            let first = owners.next().expect("keys checked non-empty");
            if owners.all(|o| o == first) {
                Some(first)
            } else {
                None
            }
        };
        match owner {
            Some(owner) if owner == st.id => {}
            Some(owner) => {
                // Routed before a carve, delivered after the seal: hand it
                // to the range's current owner. Involvement must follow so
                // the finish broadcast releases the locks where they will
                // actually be taken.
                envelope
                    .txn
                    .mark_involved(owner, envelope.table, &envelope.keys);
                inner.counters.forwarded.fetch_add(1, Ordering::Relaxed);
                st.send_later(owner, WorkerMsg::Action(envelope));
                return;
            }
            None => {
                // A migration split this action's key set across owners
                // mid-flight; it can no longer run on any single
                // partition's authority. Abort retryably — the
                // resubmission routes per the current table.
                complete(
                    inner,
                    st,
                    envelope,
                    Err(StorageError::Aborted(
                        "routing changed mid-flight: action keys now span partitions".into(),
                    )),
                );
                return;
            }
        }
    }
    if let Some(envelope) = try_run(inner, st, FRESH_SEQ, envelope) {
        inner.counters.deferrals.fetch_add(1, Ordering::Relaxed);
        if envelope.body.is_retryable() {
            // A diverted secondary action found the conflicting writer
            // still holding its key: parked until the finish releases it.
            inner
                .counters
                .secondary_parked
                .fetch_add(1, Ordering::Relaxed);
        }
        st.waiting.park(envelope);
        sync_deferred(inner, st);
    }
}

/// Runs an action body (locks already held) and reports to its RVP — or,
/// when a retryable (secondary) body's validated read observed an
/// in-flight writer, re-routes the action toward the conflicting key's
/// owning partition instead of reporting.
fn execute(inner: &Arc<Inner>, st: &mut WorkerState, mut envelope: ActionEnvelope) {
    let start = Instant::now();
    // A panicking body must not unwind the worker thread: the partition's
    // queue and lock table would die with it, and the transaction would
    // leak — RVP slot never reported, `active` never decremented, locks on
    // other partitions never released. Convert the panic into an abort.
    let result = catch_panic(
        || envelope.body.run(&inner.db, envelope.txn.txn, &st.ctx),
        "action body",
    );
    let elapsed = start.elapsed().as_nanos() as u64;
    let counters = &inner.partitions[st.id];
    counters.executed.fetch_add(1, Ordering::Relaxed);
    counters.busy_ns.fetch_add(elapsed, Ordering::Relaxed);
    inner.counters.actions.fetch_add(1, Ordering::Relaxed);
    if inner.key_sampling.load(Ordering::Relaxed) {
        if let Some(&(key, _)) = envelope.keys.first() {
            *st.key_counts.entry((envelope.table, key)).or_insert(0) += 1;
            st.stats_dirty = true;
        }
    }
    if let Err(StorageError::ReadUncommitted { table, key, .. }) = &result {
        if envelope.body.is_retryable() && !envelope.rvp.failed() {
            let (table, key) = (*table, key.clone());
            match divert_secondary(inner, st, envelope, table, &key) {
                // Re-routed: the action reports after it re-runs.
                Ok(()) => return,
                Err(env) => envelope = env,
            }
        }
    }
    let ActionEnvelope { slot, txn, rvp, .. } = envelope;
    report(inner, st, &txn, &rvp, slot, result);
}

/// Re-routes a secondary action whose validated read hit the in-flight
/// writer of `(table, key)`: the action gains that record's routing key as
/// a shared read intent and is delivered to the key's owning partition,
/// where the normal lock machinery takes over — the writer still holding
/// its local write lock parks the action in the wait list, the writer's
/// finish wakes it, and the (re-runnable) body executes again. Returns the
/// envelope when the conflict cannot be keyed into the routing space or
/// the action already outlived the lock timeout; the caller then reports
/// the read's error and the transaction aborts **visibly** — dirty data is
/// never returned.
fn divert_secondary(
    inner: &Arc<Inner>,
    st: &mut WorkerState,
    mut envelope: ActionEnvelope,
    table: TableId,
    key: &[dora_storage::types::Value],
) -> Result<(), ActionEnvelope> {
    if envelope.dispatched.elapsed() >= inner.config.lock_timeout {
        return Err(envelope);
    }
    let Some(route_key) = secondary_route_key(inner, table, key) else {
        return Err(envelope);
    };
    let partition = inner.routing.read().owner_of(table, route_key) % inner.config.workers.max(1);
    inner
        .counters
        .secondary_retries
        .fetch_add(1, Ordering::Relaxed);
    envelope.table = table;
    envelope.keys = vec![(route_key, LockClass::Read)];
    // The read intent is held (and released by the finish broadcast) like
    // any aligned key: record the involvement before delivery.
    envelope.txn.mark_involved(partition, table, &envelope.keys);
    if partition == st.id {
        // Own partition: take the inline path, bounded exactly like
        // next-phase inline dispatch.
        if st.inline_depth >= INLINE_DISPATCH_DEPTH {
            st.priority.push_back(envelope);
        } else {
            st.inline_depth += 1;
            handle_action(inner, st, envelope);
            st.inline_depth -= 1;
        }
    } else {
        st.send_later(partition, WorkerMsg::Action(envelope));
    }
    Ok(())
}

/// Maps the primary key of a conflicting record to the table's routing-key
/// space: the position of the routing field within the primary key, then
/// the (integer) value there. `None` when the table routes on a non-key
/// column or a non-integer value — such a conflict cannot be parked on and
/// surfaces as a (retryable) abort instead.
///
/// Resolution goes through the storage layer's lock-free catalog snapshot
/// (`table_handle`) — one atomic load and a borrowed schema, where the old
/// path took the catalog read lock and cloned the whole `TableSchema` per
/// diverted action.
fn secondary_route_key(
    inner: &Arc<Inner>,
    table: TableId,
    key: &[dora_storage::types::Value],
) -> Option<i64> {
    let field = inner.routing.read().rule(table)?.field;
    let handle = inner.db.table_handle(table).ok()?;
    let position = handle
        .schema
        .primary_key
        .iter()
        .position(|&col| col == field)?;
    key.get(position)?.as_i64()
}

/// Reports a result for an action that did not execute (skip/timeout).
fn complete(
    inner: &Arc<Inner>,
    st: &mut WorkerState,
    envelope: ActionEnvelope,
    result: Result<Vec<dora_storage::types::Value>, StorageError>,
) {
    let ActionEnvelope { slot, txn, rvp, .. } = envelope;
    report(inner, st, &txn, &rvp, slot, result);
}

/// Runs a piece of user code (action body or phase generator), converting
/// a panic into a transaction-aborting error so worker threads — which own
/// partition queues and lock tables for the engine's whole lifetime —
/// never unwind.
fn catch_panic<T>(
    f: impl FnOnce() -> Result<T, StorageError>,
    what: &str,
) -> Result<T, StorageError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).unwrap_or_else(|panic| {
        let msg = panic
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "opaque panic payload".into());
        Err(StorageError::Internal(format!("{what} panicked: {msg}")))
    })
}

/// Delivers one action result to the RVP; the last reporter runs the
/// rendezvous logic (next phase, or commit/abort) right here on the
/// worker thread.
fn report(
    inner: &Arc<Inner>,
    st: &mut WorkerState,
    txn: &Arc<TxnCtx>,
    rvp: &Arc<Rvp>,
    slot: usize,
    result: Result<Vec<dora_storage::types::Value>, StorageError>,
) {
    // Crash bookkeeping: if this worker dies anywhere between here and
    // the end of the function (engine-bug panic — deliberate kills never
    // land mid-report), the supervisor finds the entry on the stack and
    // either reports the slot itself (`reported == false`) or
    // salvage-finalizes the transaction (`reported == true`). The flag
    // flips *before* `Rvp::report` runs: a slot must never be reported
    // twice, and an entered-but-interrupted report counts as delivered —
    // the rendezvous then resolves through salvage, not a re-report.
    st.executing.push(ExecutingAction {
        txn: txn.clone(),
        rvp: rvp.clone(),
        slot,
        reported: false,
    });
    let failed_now = result.is_err();
    st.executing.last_mut().expect("just pushed").reported = true;
    match rvp.report(slot, result) {
        PhaseEnd::NotLast => {
            // The phase just became doomed but siblings are still out.
            // Any of them parked on a lock would otherwise only notice
            // `rvp.failed()` at a key release or its own lock-timeout —
            // up to lock_timeout of needless lock-holding and reply
            // latency. Probe the involved partitions so parked doomed
            // actions complete (abort) immediately.
            if failed_now {
                nudge_doomed(inner, st, txn);
            }
        }
        PhaseEnd::Last { outputs, failure } => {
            if let Some(e) = failure {
                finalize(inner, txn, Some(e), Some(st));
            } else {
                let next = txn.phases.lock().pop_front();
                match next {
                    None => finalize(inner, txn, None, Some(st)),
                    // Generators are user code like action bodies: a panic
                    // must abort the transaction, not unwind (and kill)
                    // the worker.
                    Some(gen) => match catch_panic(|| gen(&outputs), "phase generator") {
                        Ok(specs) => advance(inner, txn, specs, Some(st)),
                        Err(e) => finalize(inner, txn, Some(e), Some(st)),
                    },
                }
            }
        }
    }
    st.executing.pop();
}

/// On the first failure of a still-running phase: re-examine this
/// worker's parked actions of the transaction right away and send every
/// other involved partition a [`WorkerMsg::Probe`] to do the same.
/// Rare path (a phase failed) — one small outbox message per partition.
fn nudge_doomed(inner: &Arc<Inner>, st: &mut WorkerState, ctx: &Arc<TxnCtx>) {
    probe_txn(inner, st, ctx.txn);
    let remote: Vec<usize> = {
        let involved = ctx.involved.lock();
        involved
            .iter()
            .filter(|(p, keys)| *p != st.id && !keys.is_empty())
            .map(|(p, _)| *p)
            .collect()
    };
    for partition in remote {
        st.send_later(partition, WorkerMsg::Probe { txn: ctx.txn });
    }
}

/// Re-examines this worker's parked actions belonging to `txn`: a doomed
/// one (failed RVP) completes immediately — waking its successors — and
/// anything else simply re-parks at its old position.
fn probe_txn(inner: &Arc<Inner>, st: &mut WorkerState, txn: dora_storage::types::TxnId) {
    for (seq, envelope) in st.waiting.take_txn(txn) {
        if let Some(envelope) = try_run(inner, st, seq, envelope) {
            st.waiting.park_at(seq, envelope);
        }
    }
    sync_deferred(inner, st);
}

/// Publishes the worker's private counters into the shared snapshot slots
/// (plain stores by the single owner; readers only snapshot). Called on
/// transitions — a transaction finishing here, the worker going idle,
/// shutdown — instead of every loop iteration.
fn export_stats(inner: &Arc<Inner>, st: &mut WorkerState) {
    st.stats_dirty = false;
    let stats = st.locks.stats();
    let counters = &inner.partitions[st.id];
    counters
        .lock_acquired
        .store(stats.acquired, Ordering::Relaxed);
    counters
        .lock_conflicts
        .store(stats.conflicts, Ordering::Relaxed);
    counters
        .lock_released
        .store(stats.released, Ordering::Relaxed);
    let deferred = st.waiting.len() as u64;
    st.exported_deferred = deferred;
    counters.deferred_depth.store(deferred, Ordering::Relaxed);
    if !st.key_counts.is_empty() {
        let mut shared = inner.key_loads[st.id].lock();
        for (key, count) in st.key_counts.drain() {
            *shared.entry(key).or_insert(0) += count;
        }
    }
}

/// Publishes the deferred depth iff it changed since the last export.
fn sync_deferred(inner: &Arc<Inner>, st: &mut WorkerState) {
    let deferred = st.waiting.len() as u64;
    if deferred != st.exported_deferred {
        st.exported_deferred = deferred;
        inner.partitions[st.id]
            .deferred_depth
            .store(deferred, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local_lock::LockClass;
    use crate::routing::RoutingRule;
    use dora_storage::schema::{ColumnDef, TableSchema};
    use dora_storage::types::{DataType, TableId, Value};

    /// A `counters(id BIGINT, value BIGINT)` table pre-loaded with
    /// `rows` zero-valued rows, plus a 4-partition routing rule over it.
    fn setup(rows: i64, workers: usize) -> (Arc<Database>, TableId, RoutingTable) {
        let db = Arc::new(Database::default());
        let t = db
            .create_table(TableSchema::new(
                "counters",
                vec![
                    ColumnDef::new("id", DataType::BigInt),
                    ColumnDef::new("value", DataType::BigInt),
                ],
                vec![0],
            ))
            .unwrap();
        let txn = db.begin();
        for i in 0..rows {
            db.insert(
                txn,
                t,
                vec![Value::BigInt(i), Value::BigInt(0)],
                DORA_POLICY,
            )
            .unwrap();
        }
        db.commit(txn).unwrap();
        let mut routing = RoutingTable::new();
        routing.set_rule(RoutingRule::uniform(
            t,
            0,
            0,
            rows.max(1) - 1,
            workers,
            workers,
        ));
        (db, t, routing)
    }

    fn engine(db: Arc<Database>, routing: RoutingTable, workers: usize) -> DoraEngine {
        DoraEngine::new(
            db,
            routing,
            DoraEngineConfig {
                workers,
                lock_timeout: Duration::from_millis(200),
                ..Default::default()
            },
        )
    }

    fn increment(t: TableId, id: i64) -> FlowGraph {
        FlowGraph::new(
            "Increment",
            vec![ActionSpec::write(t, id, move |db, txn, ctx| {
                ctx.record(t, id, true);
                let row = db
                    .get(txn, t, &[Value::BigInt(id)], DORA_POLICY)?
                    .ok_or(StorageError::NotFound)?;
                let v = row[1].as_i64().unwrap();
                db.update(
                    txn,
                    t,
                    &[Value::BigInt(id)],
                    &[(1, Value::BigInt(v + 1))],
                    DORA_POLICY,
                )?;
                Ok(vec![])
            })],
        )
    }

    fn read_value(db: &Database, t: TableId, id: i64) -> i64 {
        let txn = db.begin();
        let row = db
            .get(txn, t, &[Value::BigInt(id)], DORA_POLICY)
            .unwrap()
            .unwrap();
        db.commit(txn).unwrap();
        row[1].as_i64().unwrap()
    }

    #[test]
    fn commits_single_partition_transactions() {
        let (db, t, routing) = setup(16, 4);
        let e = engine(db.clone(), routing, 4);
        for i in 0..32 {
            assert!(e.execute(increment(t, i % 16)).is_committed());
        }
        let stats = e.stats();
        assert_eq!(stats.committed, 32);
        assert_eq!(stats.aborted, 0);
        assert_eq!(stats.actions, 32);
        assert_eq!(read_value(&db, t, 0), 2);
        e.shutdown();
    }

    #[test]
    fn read_only_transactions_commit_without_touching_the_log() {
        let (db, t, routing) = setup(16, 2);
        let e = engine(db.clone(), routing, 2);
        let before = db.log_stats();
        for i in 0..8 {
            let flow = FlowGraph::new(
                "ReadOnly",
                vec![ActionSpec::read(t, i, move |db, txn, _| {
                    db.get(txn, t, &[Value::BigInt(i)], DORA_POLICY)?
                        .ok_or(StorageError::NotFound)?;
                    Ok(vec![])
                })],
            );
            assert!(e.execute(flow).is_committed());
        }
        let after = db.log_stats();
        // The read-only fast path: no Begin/Commit records, no force.
        assert_eq!(after.appended, before.appended);
        assert_eq!(after.forces, before.forces);
        // A writer still logs and forces.
        assert!(e.execute(increment(t, 0)).is_committed());
        let wrote = db.log_stats();
        assert_eq!(wrote.appended, before.appended + 3);
        assert_eq!(wrote.forces, before.forces + 1);
        e.shutdown();
    }

    #[test]
    fn multi_partition_phase_joins_at_rvp() {
        let (db, t, routing) = setup(16, 4);
        let e = engine(db.clone(), routing, 4);
        // One phase, two actions on different partitions (keys 1 and 13
        // live in partitions 0 and 3 of the uniform 4x4 rule over [0, 15]).
        let flow = FlowGraph::new(
            "TwoPartitionBump",
            vec![
                ActionSpec::write(t, 1, move |db, txn, _| {
                    db.update(
                        txn,
                        t,
                        &[Value::BigInt(1)],
                        &[(1, Value::BigInt(10))],
                        DORA_POLICY,
                    )?;
                    Ok(vec![])
                }),
                ActionSpec::write(t, 13, move |db, txn, _| {
                    db.update(
                        txn,
                        t,
                        &[Value::BigInt(13)],
                        &[(1, Value::BigInt(20))],
                        DORA_POLICY,
                    )?;
                    Ok(vec![])
                }),
            ],
        );
        assert!(e.execute(flow).is_committed());
        assert_eq!(read_value(&db, t, 1), 10);
        assert_eq!(read_value(&db, t, 13), 20);
        e.shutdown();
    }

    #[test]
    fn rvp_carries_outputs_into_the_next_phase() {
        let (db, t, routing) = setup(16, 4);
        let e = engine(db.clone(), routing, 4);
        // Phase 1 reads two counters; phase 2 writes their sum into a third.
        let flow = FlowGraph::new(
            "SumInto",
            vec![
                ActionSpec::read(t, 2, move |db, txn, _| {
                    let row = db.get(txn, t, &[Value::BigInt(2)], DORA_POLICY)?.unwrap();
                    Ok(vec![row[1].clone()])
                }),
                ActionSpec::read(t, 14, move |db, txn, _| {
                    let row = db.get(txn, t, &[Value::BigInt(14)], DORA_POLICY)?.unwrap();
                    Ok(vec![row[1].clone()])
                }),
            ],
        )
        .then(move |outputs| {
            let sum: i64 = outputs.iter().map(|o| o[0].as_i64().unwrap()).sum();
            Ok(vec![ActionSpec::write(t, 5, move |db, txn, _| {
                db.update(
                    txn,
                    t,
                    &[Value::BigInt(5)],
                    &[(1, Value::BigInt(sum + 100))],
                    DORA_POLICY,
                )?;
                Ok(vec![])
            })])
        });
        assert!(e.execute(flow).is_committed());
        assert_eq!(read_value(&db, t, 5), 100);
        e.shutdown();
    }

    #[test]
    fn failed_action_aborts_and_rolls_back_all_partitions() {
        let (db, t, routing) = setup(16, 4);
        let e = engine(db.clone(), routing, 4);
        let flow = FlowGraph::new(
            "HalfBroken",
            vec![
                ActionSpec::write(t, 0, move |db, txn, _| {
                    db.update(
                        txn,
                        t,
                        &[Value::BigInt(0)],
                        &[(1, Value::BigInt(77))],
                        DORA_POLICY,
                    )?;
                    Ok(vec![])
                }),
                ActionSpec::write(t, 15, move |_, _, _| {
                    Err(StorageError::Aborted("business rule".into()))
                }),
            ],
        );
        let outcome = e.execute(flow);
        assert!(!outcome.is_committed(), "{outcome:?}");
        // The update on partition 0 must have been undone.
        assert_eq!(read_value(&db, t, 0), 0);
        assert_eq!(e.stats().aborted, 1);
        e.shutdown();
    }

    #[test]
    fn phase_generator_error_aborts() {
        let (db, t, routing) = setup(16, 4);
        let e = engine(db, routing, 4);
        let flow = FlowGraph::new("BadGen", vec![ActionSpec::read(t, 3, |_, _, _| Ok(vec![]))])
            .then(|_| Err(StorageError::Aborted("generator failed".into())));
        let outcome = e.execute(flow);
        assert!(
            matches!(outcome, TxnOutcome::Aborted { ref reason } if reason.contains("generator"))
        );
        e.shutdown();
    }

    #[test]
    fn empty_flow_graph_commits_immediately() {
        let (db, t, routing) = setup(16, 4);
        let _ = t;
        let e = engine(db, routing, 4);
        assert!(e.execute(FlowGraph::new("Nop", vec![])).is_committed());
        assert_eq!(e.stats().committed, 1);
        e.shutdown();
    }

    #[test]
    fn empty_phase_with_queued_generators_aborts() {
        let (db, t, routing) = setup(16, 4);
        let e = engine(db, routing, 4);
        // An empty first phase followed by a generator is a builder bug:
        // committing would silently skip the generator.
        let never_ran = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = never_ran.clone();
        let flow = FlowGraph::new("EmptyFirst", vec![]).then(move |_| {
            flag.store(true, Ordering::Relaxed);
            Ok(vec![])
        });
        let outcome = e.execute(flow);
        assert!(
            matches!(outcome, TxnOutcome::Aborted { ref reason } if reason.contains("still queued")),
            "{outcome:?}"
        );
        assert!(!never_ran.load(Ordering::Relaxed));
        // Same rule mid-flow: a generator returning no actions while more
        // generators wait is rejected, not silently committed past them.
        let flow = FlowGraph::new(
            "EmptyMiddle",
            vec![ActionSpec::read(t, 1, |_, _, _| Ok(vec![]))],
        )
        .then(|_| Ok(vec![]))
        .then(|_| Ok(vec![]));
        let outcome = e.execute(flow);
        assert!(
            matches!(outcome, TxnOutcome::Aborted { ref reason } if reason.contains("still queued")),
            "{outcome:?}"
        );
        e.shutdown();
    }

    #[test]
    fn panicking_action_body_aborts_without_killing_the_worker() {
        let (db, t, routing) = setup(16, 4);
        let e = engine(db.clone(), routing, 4);
        let flow = FlowGraph::new(
            "Panics",
            vec![
                ActionSpec::write(t, 1, move |db, txn, _| {
                    db.update(
                        txn,
                        t,
                        &[Value::BigInt(1)],
                        &[(1, Value::BigInt(9))],
                        DORA_POLICY,
                    )?;
                    Ok(vec![])
                }),
                ActionSpec::write(t, 13, |_, _, _| panic!("boom in user code")),
            ],
        );
        let outcome = e.execute(flow);
        assert!(
            matches!(outcome, TxnOutcome::Aborted { ref reason } if reason.contains("panicked")),
            "{outcome:?}"
        );
        // The sibling's write was rolled back and the panicking partition's
        // worker is still alive and serving.
        assert_eq!(read_value(&db, t, 1), 0);
        for i in 0..16 {
            assert!(e.execute(increment(t, i)).is_committed());
        }
        e.shutdown();
    }

    #[test]
    fn panicking_phase_generator_aborts_without_killing_the_worker() {
        let (db, t, routing) = setup(16, 4);
        let e = engine(db.clone(), routing, 4);
        let flow = FlowGraph::new(
            "GenPanics",
            vec![ActionSpec::read(t, 3, |_, _, _| Ok(vec![]))],
        )
        .then(|outputs| {
            // The classic mistake: indexing an output that isn't there.
            let _ = outputs[0][7].clone();
            Ok(vec![])
        });
        let outcome = e.execute(flow);
        assert!(
            matches!(outcome, TxnOutcome::Aborted { ref reason } if reason.contains("panicked")),
            "{outcome:?}"
        );
        // The worker that ran the generator is still alive and serving,
        // and nothing leaked: shutdown drains promptly.
        for i in 0..16 {
            assert!(e.execute(increment(t, i)).is_committed());
        }
        let started = Instant::now();
        e.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "no leaked active txns"
        );
    }

    #[test]
    fn read_upgrade_is_not_trapped_behind_parked_stranger() {
        // Regression: T holds a Read on k; a stranger's Write parks behind
        // it; T's phase-2 Write upgrade must cut past the parked stranger
        // (it can never be granted before T finishes) instead of waiting
        // out the lock timeout.
        let (db, t, routing) = setup(16, 4);
        let e = Arc::new(engine(db.clone(), routing, 4));
        let upgrade = FlowGraph::new(
            "ReadThenUpgrade",
            vec![ActionSpec::read(t, 2, move |db, txn, _| {
                let row = db.get(txn, t, &[Value::BigInt(2)], DORA_POLICY)?.unwrap();
                Ok(vec![row[1].clone()])
            })],
        )
        .then(move |outputs| {
            let v = outputs[0][0].as_i64().unwrap();
            // Give the stranger time to park behind our read lock.
            std::thread::sleep(Duration::from_millis(30));
            Ok(vec![ActionSpec::write(t, 2, move |db, txn, _| {
                db.update(
                    txn,
                    t,
                    &[Value::BigInt(2)],
                    &[(1, Value::BigInt(v + 1))],
                    DORA_POLICY,
                )?;
                Ok(vec![])
            })])
        });
        let stranger = {
            let e = e.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                e.execute(increment(t, 2))
            })
        };
        let started = Instant::now();
        let outcome = e.execute(upgrade);
        assert!(outcome.is_committed(), "{outcome:?}");
        assert!(
            started.elapsed() < Duration::from_millis(150),
            "upgrade must not wait out the lock timeout: {:?}",
            started.elapsed()
        );
        assert!(stranger.join().unwrap().is_committed());
        assert_eq!(read_value(&db, t, 2), 2);
    }

    #[test]
    fn hot_key_increments_serialize_on_owner_partition() {
        let (db, t, routing) = setup(16, 4);
        let e = Arc::new(engine(db.clone(), routing, 4));
        let mut clients = Vec::new();
        for _ in 0..4 {
            let e = e.clone();
            clients.push(std::thread::spawn(move || {
                let mut committed = 0;
                for _ in 0..25 {
                    if e.execute(increment(t, 0)).is_committed() {
                        committed += 1;
                    }
                }
                committed
            }));
        }
        let committed: i64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(
            committed, 100,
            "same-key actions serialize, none should abort"
        );
        assert_eq!(read_value(&db, t, 0), 100);
    }

    #[test]
    fn bypasses_the_centralized_lock_manager() {
        let (db, t, routing) = setup(16, 4);
        let before = db.lock_stats().critical_sections;
        let e = engine(db.clone(), routing, 4);
        for i in 0..20 {
            assert!(e.execute(increment(t, i % 16)).is_committed());
        }
        e.shutdown();
        let after = db.lock_stats().critical_sections;
        assert_eq!(
            after, before,
            "DORA must never enter lock-manager critical sections"
        );
    }

    #[test]
    fn cross_partition_lock_conflicts_time_out_not_hang() {
        let (db, t, routing) = setup(16, 2);
        let e = Arc::new(engine(db.clone(), routing, 2));
        // Stress opposing lock orders: transactions that write (a, b) and
        // (b, a) where a and b live on different partitions. The wait list
        // plus the lock-timeout tick guarantees global progress.
        let mut clients = Vec::new();
        for c in 0..2 {
            let e = e.clone();
            clients.push(std::thread::spawn(move || {
                let mut done = 0;
                for _ in 0..20 {
                    let (x, y) = if c == 0 { (1, 15) } else { (15, 1) };
                    let flow = FlowGraph::new(
                        "OpposingOrder",
                        vec![
                            ActionSpec::write(t, x, move |db, txn, _| {
                                let row =
                                    db.get(txn, t, &[Value::BigInt(x)], DORA_POLICY)?.unwrap();
                                let v = row[1].as_i64().unwrap();
                                db.update(
                                    txn,
                                    t,
                                    &[Value::BigInt(x)],
                                    &[(1, Value::BigInt(v + 1))],
                                    DORA_POLICY,
                                )?;
                                Ok(vec![])
                            }),
                            ActionSpec::write(t, y, move |db, txn, _| {
                                let row =
                                    db.get(txn, t, &[Value::BigInt(y)], DORA_POLICY)?.unwrap();
                                let v = row[1].as_i64().unwrap();
                                db.update(
                                    txn,
                                    t,
                                    &[Value::BigInt(y)],
                                    &[(1, Value::BigInt(v + 1))],
                                    DORA_POLICY,
                                )?;
                                Ok(vec![])
                            }),
                        ],
                    );
                    if e.execute(flow).is_committed() {
                        done += 1;
                    }
                }
                done
            }));
        }
        let committed: i64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
        // Both keys were incremented once per committed transaction; the
        // database state must agree exactly with the commit count.
        assert_eq!(
            read_value(&db, t, 1) + read_value(&db, t, 15),
            committed * 2
        );
        assert!(committed > 0, "at least some transactions must get through");
    }

    #[test]
    fn access_trace_shows_thread_to_data_affinity() {
        let (db, t, routing) = setup(16, 4);
        let e = engine(db, routing, 4);
        e.trace().set_enabled(true);
        let pending: Vec<_> = (0..64).map(|i| e.submit(increment(t, i % 16))).collect();
        for p in pending {
            assert!(p.recv().unwrap().is_committed());
        }
        let events = e.trace().snapshot();
        assert_eq!(events.len(), 64);
        // Thread-to-data: a given key is only ever touched by one worker.
        use std::collections::HashMap;
        let mut owner: HashMap<i64, usize> = HashMap::new();
        for ev in &events {
            let prev = owner.insert(ev.key, ev.worker);
            if let Some(prev) = prev {
                assert_eq!(prev, ev.worker, "key {} touched by two workers", ev.key);
            }
        }
        e.shutdown();
    }

    #[test]
    fn secondary_actions_run_without_local_locks() {
        let (db, t, routing) = setup(16, 4);
        let e = engine(db.clone(), routing, 4);
        // A read-only probe not aligned with the routing field.
        let flow = FlowGraph::new(
            "ScanAll",
            vec![ActionSpec::secondary(t, move |db, txn, _| {
                let rows = db.primary_range(
                    txn,
                    t,
                    &[Value::BigInt(0)],
                    &[Value::BigInt(15)],
                    DORA_POLICY,
                )?;
                Ok(vec![Value::BigInt(rows.len() as i64)])
            })],
        );
        assert!(e.execute(flow).is_committed());
        assert_eq!(e.stats().secondary, 1);
        e.shutdown();
    }

    #[test]
    fn secondary_validated_read_parks_until_writer_finishes_never_dirty() {
        // A holder updates key 0 (uncommitted, local write lock held) and
        // wedges. A secondary auditor's validated read must reject the
        // dirty value, divert to key 0's owning partition, park behind the
        // writer's lock, and — once the holder ABORTS and undo restores the
        // original value — re-run and observe 0. The dirty 777 must never
        // surface.
        let (db, t, routing) = setup(16, 2);
        let e = DoraEngine::new(
            db.clone(),
            routing,
            DoraEngineConfig {
                workers: 2,
                lock_timeout: Duration::from_secs(5),
                ..Default::default()
            },
        );
        // The dirty update happens on partition 0 (key 0) and RETURNS, so
        // worker 0 stays free to park the diverted audit; the transaction
        // is kept in flight (write lock on key 0 held) by a sibling action
        // wedged on partition 1, whose eventual failure aborts the txn.
        let (release_tx, release_rx) = crossbeam_channel::bounded::<()>(1);
        let (ready_tx, ready_rx) = crossbeam_channel::bounded::<()>(1);
        let holder = e.submit(FlowGraph::new(
            "DirtyWriterThatAborts",
            vec![
                ActionSpec::write(t, 0, move |db, txn, _| {
                    db.update(
                        txn,
                        t,
                        &[Value::BigInt(0)],
                        &[(1, Value::BigInt(777))],
                        DORA_POLICY,
                    )?;
                    let _ = ready_tx.send(());
                    Ok(vec![])
                }),
                ActionSpec::write(t, 8, move |_, _, _| {
                    let _ = release_rx.recv();
                    Err(StorageError::Aborted("writer changes its mind".into()))
                }),
            ],
        ));
        ready_rx.recv_timeout(Duration::from_secs(5)).unwrap();

        let audit = e.submit(
            FlowGraph::new(
                "Audit",
                vec![ActionSpec::secondary(t, move |db, txn, _| {
                    let row = db
                        .read_validated(txn, t, &[Value::BigInt(0)], DORA_POLICY)?
                        .ok_or(StorageError::NotFound)?;
                    Ok(vec![row[1].clone()])
                })],
            )
            .then(|outputs| {
                let seen = outputs[0][0].as_i64().unwrap();
                if seen == 0 {
                    Ok(vec![])
                } else {
                    Err(StorageError::Internal(format!(
                        "secondary read observed dirty value {seen}"
                    )))
                }
            }),
        );
        // The audit must divert and park behind the holder's write lock.
        let deadline = Instant::now() + Duration::from_secs(5);
        while e.stats().secondary_parked < 1 {
            assert!(Instant::now() < deadline, "audit never parked");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(e.stats().secondary_retries >= 1);
        assert!(
            audit.try_recv().is_err(),
            "audit must wait for the writer, not reply"
        );
        release_tx.send(()).unwrap();
        assert!(!holder.recv().unwrap().is_committed());
        let outcome = audit.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(outcome.is_committed(), "{outcome:?}");
        assert_eq!(e.stats().secondary, 1);
        e.shutdown();
    }

    #[test]
    fn secondary_read_blocked_past_lock_timeout_aborts_visibly() {
        // The writer never finishes within the lock timeout: the parked
        // audit must abort with a retryable error — dirty data is never
        // the fallback.
        let (db, t, routing) = setup(16, 2);
        let e = engine(db, routing, 2); // 200ms lock timeout
                                        // As above: the uncommitted write lands on partition 0 and the
                                        // transaction is pinned in flight by a wedged sibling on partition
                                        // 1, leaving worker 0 free to park (and expire) the audit.
        let (release_tx, release_rx) = crossbeam_channel::bounded::<()>(1);
        let (ready_tx, ready_rx) = crossbeam_channel::bounded::<()>(1);
        let holder = e.submit(FlowGraph::new(
            "SlowWriter",
            vec![
                ActionSpec::write(t, 3, move |db, txn, _| {
                    db.update(
                        txn,
                        t,
                        &[Value::BigInt(3)],
                        &[(1, Value::BigInt(999))],
                        DORA_POLICY,
                    )?;
                    let _ = ready_tx.send(());
                    Ok(vec![])
                }),
                ActionSpec::write(t, 8, move |_, _, _| {
                    let _ = release_rx.recv();
                    Ok(vec![])
                }),
            ],
        ));
        ready_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let outcome = e.execute(FlowGraph::new(
            "Audit",
            vec![ActionSpec::secondary(t, move |db, txn, _| {
                db.read_validated(txn, t, &[Value::BigInt(3)], DORA_POLICY)?;
                Ok(vec![])
            })],
        ));
        assert!(!outcome.is_committed(), "{outcome:?}");
        release_tx.send(()).unwrap();
        assert!(holder.recv().unwrap().is_committed());
        e.shutdown();
    }

    #[test]
    fn secondary_multi_record_read_is_one_consistent_snapshot() {
        // Writers keep moving value between keys 2 and 13 (different
        // partitions) while secondary audits sum both through
        // read_many_validated: every committed audit must observe the
        // conserved total.
        let (db, t, routing) = setup(16, 4);
        let init = db.begin();
        db.update(
            init,
            t,
            &[Value::BigInt(2)],
            &[(1, Value::BigInt(100))],
            DORA_POLICY,
        )
        .unwrap();
        db.commit(init).unwrap();
        let e = Arc::new(engine(db.clone(), routing, 4));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let e = e.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let flow = FlowGraph::new(
                        "Move",
                        vec![
                            ActionSpec::write(t, 2, move |db, txn, _| {
                                let v = db.get(txn, t, &[Value::BigInt(2)], DORA_POLICY)?.unwrap()
                                    [1]
                                .as_i64()
                                .unwrap();
                                db.update(
                                    txn,
                                    t,
                                    &[Value::BigInt(2)],
                                    &[(1, Value::BigInt(v - 1))],
                                    DORA_POLICY,
                                )?;
                                Ok(vec![])
                            }),
                            ActionSpec::write(t, 13, move |db, txn, _| {
                                let v = db.get(txn, t, &[Value::BigInt(13)], DORA_POLICY)?.unwrap()
                                    [1]
                                .as_i64()
                                .unwrap();
                                db.update(
                                    txn,
                                    t,
                                    &[Value::BigInt(13)],
                                    &[(1, Value::BigInt(v + 1))],
                                    DORA_POLICY,
                                )?;
                                Ok(vec![])
                            }),
                        ],
                    );
                    let _ = e.execute(flow);
                }
            })
        };
        let mut audited = 0;
        for _ in 0..50 {
            let flow = FlowGraph::new(
                "SumAudit",
                vec![ActionSpec::secondary(t, move |db, txn, _| {
                    let keys = vec![vec![Value::BigInt(2)], vec![Value::BigInt(13)]];
                    let rows = db.read_many_validated(txn, t, &keys, DORA_POLICY)?;
                    let sum: i64 = rows
                        .iter()
                        .map(|r| r.as_ref().unwrap()[1].as_i64().unwrap())
                        .sum();
                    if sum != 100 {
                        return Err(StorageError::Internal(format!(
                            "torn secondary snapshot: sum {sum}"
                        )));
                    }
                    Ok(vec![])
                })],
            );
            match e.execute(flow) {
                TxnOutcome::Committed => audited += 1,
                TxnOutcome::Aborted { reason } => {
                    assert!(
                        !reason.contains("torn"),
                        "audit observed a torn snapshot: {reason}"
                    );
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        assert!(audited > 0, "no audit ever committed");
    }

    #[test]
    fn shutdown_finishes_in_flight_work_and_rejects_new() {
        let (db, t, routing) = setup(16, 4);
        let e = engine(db.clone(), routing, 4);
        let replies: Vec<_> = (0..20).map(|i| e.submit(increment(t, i % 16))).collect();
        e.shutdown();
        for r in replies {
            assert!(r.recv().unwrap().is_committed());
        }
        let total: i64 = (0..16).map(|i| read_value(&db, t, i)).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let (db, t, routing) = setup(4, 2);
        let e = engine(db.clone(), routing, 2);
        e.shutdown();
        // The engine object is consumed by shutdown; build a second engine,
        // flip it to non-accepting via its own shutdown path, and verify a
        // dropped engine rejects cleanly through `execute`'s fallback.
        let e2 = engine(db, RoutingTable::new(), 2);
        e2.inner.accepting.store(false, Ordering::Release);
        let outcome = e2.execute(increment(t, 0));
        assert!(
            matches!(outcome, TxnOutcome::Aborted { ref reason } if reason.contains("not accepting"))
        );
    }

    #[test]
    fn migrate_range_moves_ownership_for_new_transactions() {
        let (db, t, routing) = setup(16, 2);
        let e = engine(db.clone(), routing, 2);
        assert_eq!(e.routing().owner_of(t, 12) % 2, 1);
        let report = e.migrate_range(t, 8, 16, 0).unwrap();
        assert_eq!((report.from, report.to), (1, 0));
        assert_eq!(report.moved_locks, 0);
        assert_eq!(report.moved_parked, 0);
        assert_eq!(e.routing().owner_of(t, 12) % 2, 0);
        assert!(e.execute(increment(t, 12)).is_committed());
        let stats = e.stats();
        assert_eq!(stats.migrations, 1);
        // The post-migration increment ran on the new owner.
        assert_eq!(stats.workers[0].executed, 1);
        assert_eq!(stats.workers[1].executed, 0);
        e.shutdown();
        assert_eq!(read_value(&db, t, 12), 1);
    }

    #[test]
    fn migrate_range_rejects_invalid_requests() {
        let (db, t, routing) = setup(16, 4);
        let e = engine(db, routing, 4);
        assert_eq!(e.migrate_range(t, 5, 5, 1), Err(MigrateError::EmptyRange));
        assert_eq!(
            e.migrate_range(t, 0, 4, 9),
            Err(MigrateError::InvalidDestination {
                dest: 9,
                workers: 4
            })
        );
        assert_eq!(e.migrate_range(t, 0, 16, 1), Err(MigrateError::SpansOwners));
        let unrouted: TableId = t + 99;
        assert_eq!(
            e.migrate_range(unrouted, 0, 4, 1),
            Err(MigrateError::UnroutedTable(unrouted))
        );
        // Migrating a range onto its current owner is a no-op, not a
        // counted migration.
        let report = e.migrate_range(t, 0, 4, 0).unwrap();
        assert_eq!((report.from, report.to), (0, 0));
        assert_eq!(e.stats().migrations, 0);
        e.shutdown();
    }

    #[test]
    fn key_sampling_feeds_load_snapshot_and_coalesce_merges_ranges() {
        let (db, t, routing) = setup(16, 2);
        let e = engine(db, routing, 2);
        e.set_key_sampling(true);
        for _ in 0..5 {
            assert!(e.execute(increment(t, 3)).is_committed());
        }
        assert!(e.execute(increment(t, 9)).is_committed());
        // Worker-local samples flush on stats export (a transition the
        // finalize above triggers), so the snapshot catches up promptly.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let loads = e.key_load_snapshot();
            if loads.get(&(t, 3)) == Some(&5) && loads.get(&(t, 9)) == Some(&1) {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "samples never flushed: {loads:?}"
            );
            std::thread::yield_now();
        }
        // Migrations fragment the rule; coalesce folds same-owner runs
        // back together without moving any key.
        e.migrate_range(t, 0, 4, 1).unwrap();
        e.migrate_range(t, 4, 8, 1).unwrap();
        assert!(e.routing().rule(t).unwrap().owners.len() >= 3);
        assert!(e.coalesce_routing(t) >= 2);
        // All loaded keys route to partition 1 now; only the phantom
        // below-range interval still points at partition 0.
        assert_eq!(e.routing().rule(t).unwrap().owners, vec![0, 1]);
        assert_eq!(e.routing().owner_of(t, 0) % 2, 1);
        assert_eq!(e.routing().owner_of(t, 15) % 2, 1);
        e.shutdown();
    }

    #[test]
    fn writer_is_not_starved_by_a_reader_stream() {
        let (db, t, routing) = setup(16, 4);
        let e = Arc::new(engine(db.clone(), routing, 4));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        // Two clients keep a continuous stream of read transactions on key
        // 1 flowing; without the fairness barrier the shared read lock
        // would never drain and the writer below would abort with a
        // spurious LockTimeout.
        let mut readers = Vec::new();
        for _ in 0..2 {
            let e = e.clone();
            let stop = stop.clone();
            readers.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let flow = FlowGraph::new(
                        "Read",
                        vec![ActionSpec::read(t, 1, move |db, txn, _| {
                            db.get(txn, t, &[Value::BigInt(1)], DORA_POLICY)?;
                            Ok(vec![])
                        })],
                    );
                    let _ = e.execute(flow);
                }
            }));
        }
        std::thread::sleep(Duration::from_millis(20));
        let started = Instant::now();
        let outcome = e.execute(increment(t, 1));
        let waited = started.elapsed();
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert!(outcome.is_committed(), "{outcome:?}");
        assert!(
            waited < Duration::from_millis(200),
            "writer should cut ahead of later readers, waited {waited:?}"
        );
        assert_eq!(read_value(&db, t, 1), 1);
    }

    #[test]
    fn range_migrations_preserve_isolation_under_concurrent_load() {
        let (db, t, routing) = setup(16, 4);
        let e = Arc::new(engine(db.clone(), routing, 4));
        // Four clients hammer one key while the "load balancer" keeps
        // moving that key's range between partitions. The quiesce-free
        // handoff must keep isolation intact: the final value equals the
        // number of committed increments — no lost or doubled update.
        let mut clients = Vec::new();
        for _ in 0..4 {
            let e = e.clone();
            clients.push(std::thread::spawn(move || {
                let mut committed = 0i64;
                for _ in 0..25 {
                    if e.execute(increment(t, 7)).is_committed() {
                        committed += 1;
                    }
                }
                committed
            }));
        }
        let balancer = {
            let e = e.clone();
            std::thread::spawn(move || {
                let mut moves = 0u64;
                for round in 0..12u64 {
                    let dest = (round % 4) as usize;
                    let report = e.migrate_range(t, 4, 8, dest).unwrap();
                    if report.from != report.to {
                        moves += 1;
                    }
                    std::thread::yield_now();
                }
                moves
            })
        };
        let committed: i64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
        let moves = balancer.join().unwrap();
        assert_eq!(read_value(&db, t, 7), committed);
        assert!(committed > 0, "some increments must land between moves");
        assert!(moves > 0, "the balancer thread never actually migrated");
        assert_eq!(e.stats().migrations, moves);
    }

    #[test]
    fn unaffected_ranges_commit_while_a_migration_is_in_flight() {
        let (db, t, routing) = setup(32, 4);
        let e = Arc::new(engine(db.clone(), routing, 4));
        // Wedge worker 0 (owner of [0,8)) inside an action body so the
        // migration's drain request sits unprocessed in its priority lane:
        // the handoff stays in flight until the body is released.
        let (release_tx, release_rx) = crossbeam_channel::bounded::<()>(1);
        let (ready_tx, ready_rx) = crossbeam_channel::bounded::<()>(1);
        let wedge = e.submit(FlowGraph::new(
            "Wedge",
            vec![ActionSpec::write(t, 0, move |_, _, _| {
                let _ = ready_tx.send(());
                let _ = release_rx.recv();
                Ok(vec![])
            })],
        ));
        ready_rx.recv().unwrap();
        let migration = {
            let e = e.clone();
            std::thread::spawn(move || e.migrate_range(t, 0, 4, 1))
        };
        // Wait for the carve to publish (the barrier is installed first).
        let deadline = Instant::now() + Duration::from_secs(5);
        while e.routing().owner_of(t, 1) % 4 != 1 {
            assert!(Instant::now() < deadline, "carve never published");
            std::thread::yield_now();
        }
        // Quiesce-free: while the migration is in flight, keys outside
        // the moving range — including on the destination partition —
        // commit with no added stall.
        for key in [9, 17, 25, 12] {
            let started = Instant::now();
            assert!(e.execute(increment(t, key)).is_committed());
            assert!(
                started.elapsed() < Duration::from_millis(150),
                "unaffected key {key} stalled during migration: {:?}",
                started.elapsed()
            );
        }
        // A fresh action for the moving range parks behind the barrier
        // and completes once the seal token releases it.
        let parked = e.submit(increment(t, 1));
        release_tx.send(()).unwrap();
        let report = migration.join().unwrap().unwrap();
        assert_eq!((report.from, report.to), (0, 1));
        assert!(parked.recv().unwrap().is_committed());
        assert!(wedge.recv().unwrap().is_committed());
        assert_eq!(read_value(&db, t, 1), 1);
    }

    #[test]
    fn migration_transfers_held_locks_and_parked_actions() {
        let (db, t, routing) = setup(24, 3);
        // Generous lock timeout: the transferred waiter must survive the
        // whole handoff without its park deadline firing.
        let e = DoraEngine::new(
            db.clone(),
            routing,
            DoraEngineConfig {
                workers: 3,
                lock_timeout: Duration::from_secs(5),
                ..Default::default()
            },
        );
        // The holder pins the write lock on key 0 (partition 0) while its
        // second action blocks on partition 2; a waiter then parks on
        // key 0's wait list at partition 0.
        let (holder_rx, release_tx, ready_rx) = holder(&e, t, 0, 16);
        ready_rx.recv().unwrap();
        let waiter = e.submit(increment(t, 0));
        let deadline = Instant::now() + Duration::from_secs(5);
        while e.stats().workers[0].deferred == 0 {
            assert!(Instant::now() < deadline, "waiter never parked");
            std::thread::yield_now();
        }
        let report = e.migrate_range(t, 0, 8, 1).unwrap();
        assert_eq!((report.from, report.to), (0, 1));
        assert!(report.moved_locks >= 1, "{report:?}");
        assert_eq!(report.moved_parked, 1, "{report:?}");
        // Releasing the holder must release the *transferred* lock entry
        // on the new owner (the finish is forwarded there) and wake the
        // transferred waiter.
        release_tx.send(()).unwrap();
        assert!(holder_rx.recv().unwrap().is_committed());
        assert!(waiter.recv().unwrap().is_committed());
        assert_eq!(read_value(&db, t, 0), 1);
        e.shutdown();
    }

    #[test]
    fn per_partition_stats_reflect_work() {
        let (db, t, routing) = setup(16, 4);
        let e = engine(db, routing, 4);
        for i in 0..16 {
            assert!(e.execute(increment(t, i)).is_committed());
        }
        let stats = e.stats();
        assert_eq!(stats.workers.len(), 4);
        assert_eq!(stats.workers.iter().map(|w| w.executed).sum::<u64>(), 16);
        // Uniform keys over a uniform rule: every partition did something.
        assert!(stats.workers.iter().all(|w| w.executed > 0));
        assert!(stats.workers.iter().all(|w| w.locks.acquired > 0));
        e.shutdown();
    }

    /// Parks a transaction's locks on given keys: a two-action phase whose
    /// second action (on the `hold` partition) blocks on a channel until
    /// the test signals it, keeping the first action's locks (on the other
    /// partition) held across messages. Returns `(outcome_rx, release_tx,
    /// ready_rx)`.
    fn holder(
        e: &DoraEngine,
        t: TableId,
        lock_key: i64,
        block_key: i64,
    ) -> (
        oneshot::Receiver<TxnOutcome>,
        crossbeam_channel::Sender<()>,
        crossbeam_channel::Receiver<()>,
    ) {
        let (release_tx, release_rx) = crossbeam_channel::bounded::<()>(1);
        let (ready_tx, ready_rx) = crossbeam_channel::bounded::<()>(1);
        let flow = FlowGraph::new(
            "Holder",
            vec![
                ActionSpec::write(t, lock_key, move |_, _, _| {
                    let _ = ready_tx.send(());
                    Ok(vec![])
                }),
                ActionSpec::write(t, block_key, move |_, _, _| {
                    let _ = release_rx.recv();
                    Ok(vec![])
                }),
            ],
        );
        (e.submit(flow), release_tx, ready_rx)
    }

    #[test]
    fn finish_wakes_only_actions_parked_on_released_keys() {
        // Two workers: keys 0..7 live on partition 0, keys 8..15 on
        // partition 1. Two holder transactions pin write locks on keys 0
        // and 1 of partition 0 (each blocked inside an action on partition
        // 1), and two waiters park behind them. Finishing the first holder
        // must wake ONLY the key-0 waiter — the key-1 waiter stays parked,
        // proving the wait list replaced the full rescan.
        let (db, t, routing) = setup(16, 2);
        let e = engine(db.clone(), routing, 2);
        let (h1_rx, h1_release, h1_ready) = holder(&e, t, 0, 8);
        let (h2_rx, h2_release, h2_ready) = holder(&e, t, 1, 9);
        h1_ready
            .recv_timeout(Duration::from_secs(5))
            .expect("holder 1 locked key 0");
        h2_ready
            .recv_timeout(Duration::from_secs(5))
            .expect("holder 2 locked key 1");

        let waiter_a = e.submit(increment(t, 0));
        let waiter_b = e.submit(increment(t, 1));
        // Both waiters must be parked before any release happens.
        let parked_deadline = Instant::now() + Duration::from_secs(5);
        while e.stats().deferrals < 2 {
            assert!(Instant::now() < parked_deadline, "waiters never parked");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(e.stats().workers[0].wakeups, 0);

        // Finish holder 1: its Finish carries exactly key 0 for partition
        // 0; only waiter A may wake.
        h1_release.send(()).unwrap();
        assert!(h1_rx.recv().unwrap().is_committed());
        assert!(waiter_a
            .recv_timeout(Duration::from_secs(5))
            .expect("waiter A woken by key-0 release")
            .is_committed());
        let w0 = e.stats().workers[0];
        assert_eq!(
            w0.wakeups, 1,
            "exactly one parked action re-tried: the key-0 waiter"
        );
        assert!(
            w0.rescans_avoided >= 1,
            "the key-1 waiter was never re-examined"
        );
        assert!(
            waiter_b.try_recv().is_err(),
            "waiter B must still be parked on key 1"
        );

        // Finish holder 2: now waiter B completes too.
        h2_release.send(()).unwrap();
        assert!(h2_rx.recv().unwrap().is_committed());
        assert!(waiter_b
            .recv_timeout(Duration::from_secs(5))
            .expect("waiter B woken by key-1 release")
            .is_committed());
        assert_eq!(e.stats().workers[0].wakeups, 2);
        assert_eq!(read_value(&db, t, 0), 1);
        assert_eq!(read_value(&db, t, 1), 1);
        e.shutdown();
    }

    #[test]
    fn submit_blocks_under_backpressure_then_succeeds() {
        let (db, t, routing) = setup(4, 1);
        let e = DoraEngine::new(
            db.clone(),
            routing,
            DoraEngineConfig {
                workers: 1,
                lock_timeout: Duration::from_millis(500),
                queue_capacity: 2,
                submit_timeout: Duration::from_secs(10),
                ..Default::default()
            },
        );
        // Each action occupies the single worker for a while, so fresh
        // submissions pile up against the 2-slot admission gate.
        let slow = |t: TableId| {
            FlowGraph::new(
                "Slow",
                vec![ActionSpec::write(t, 0, move |db, txn, _| {
                    std::thread::sleep(Duration::from_millis(30));
                    db.get(txn, t, &[Value::BigInt(0)], DORA_POLICY)?;
                    Ok(vec![])
                })],
            )
        };
        let started = Instant::now();
        let replies: Vec<_> = (0..6).map(|_| e.submit(slow(t))).collect();
        let submit_elapsed = started.elapsed();
        // 6 submissions, 2 admission slots, ~30ms per action: at least the
        // excess beyond (capacity + 1 in flight) must have blocked.
        assert!(
            submit_elapsed >= Duration::from_millis(60),
            "submit never felt back-pressure: {submit_elapsed:?}"
        );
        for r in replies {
            assert!(
                r.recv_timeout(Duration::from_secs(10))
                    .unwrap()
                    .is_committed(),
                "blocked submissions must succeed, not drop"
            );
        }
        e.shutdown();
    }

    #[test]
    fn overloaded_submit_aborts_visibly_after_timeout() {
        let (db, t, routing) = setup(4, 1);
        let e = DoraEngine::new(
            db,
            routing,
            DoraEngineConfig {
                workers: 1,
                lock_timeout: Duration::from_secs(2),
                queue_capacity: 1,
                submit_timeout: Duration::from_millis(50),
                ..Default::default()
            },
        );
        // Wedge the worker inside a body so the gate can never drain.
        let (release_tx, release_rx) = crossbeam_channel::bounded::<()>(1);
        let wedge = e.submit(FlowGraph::new(
            "Wedge",
            vec![ActionSpec::write(t, 0, move |_, _, _| {
                let _ = release_rx.recv();
                Ok(vec![])
            })],
        ));
        // Fill the single admission slot, then one more: that submission
        // must block for ~submit_timeout and come back as a visible abort.
        let _queued = e.submit(increment(t, 1));
        let started = Instant::now();
        let outcome = e.execute(increment(t, 2));
        assert!(
            matches!(outcome, TxnOutcome::Aborted { ref reason } if reason.contains("back-pressure")),
            "{outcome:?}"
        );
        assert!(
            started.elapsed() >= Duration::from_millis(50),
            "rejection must come after blocking, not immediately"
        );
        release_tx.send(()).unwrap();
        assert!(wedge.recv().unwrap().is_committed());
        e.shutdown();
    }

    #[test]
    fn shutdown_drains_a_full_bounded_queue_cleanly() {
        let (db, t, routing) = setup(4, 1);
        let e = DoraEngine::new(
            db.clone(),
            routing,
            DoraEngineConfig {
                workers: 1,
                lock_timeout: Duration::from_millis(500),
                queue_capacity: 2,
                submit_timeout: Duration::from_secs(10),
                ..Default::default()
            },
        );
        let slowish = |t: TableId, id: i64| {
            FlowGraph::new(
                "Slowish",
                vec![ActionSpec::write(t, id, move |db, txn, _| {
                    std::thread::sleep(Duration::from_millis(10));
                    let row = db
                        .get(txn, t, &[Value::BigInt(id)], DORA_POLICY)?
                        .ok_or(StorageError::NotFound)?;
                    let v = row[1].as_i64().unwrap();
                    db.update(
                        txn,
                        t,
                        &[Value::BigInt(id)],
                        &[(1, Value::BigInt(v + 1))],
                        DORA_POLICY,
                    )?;
                    Ok(vec![])
                })],
            )
        };
        // Saturate the bounded queue, then shut down: every admitted
        // transaction must complete (drained, not dropped).
        let replies: Vec<_> = (0..8).map(|i| e.submit(slowish(t, i % 4))).collect();
        e.shutdown();
        for r in replies {
            assert!(r.recv().unwrap().is_committed(), "admitted work must drain");
        }
        let total: i64 = (0..4).map(|i| read_value(&db, t, i)).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn priority_lane_cuts_multi_partition_latency_under_fresh_load() {
        // Partition 0 is flooded with slow fresh actions. A two-phase
        // transaction whose phase 2 lands on partition 0 must ride the
        // priority lane past that backlog instead of queueing behind it.
        let (db, t, routing) = setup(16, 2);
        let e = Arc::new(engine(db.clone(), routing, 2));
        let slow_fill = |t: TableId| {
            FlowGraph::new(
                "Fill",
                vec![ActionSpec::write(t, 2, move |db, txn, _| {
                    std::thread::sleep(Duration::from_millis(5));
                    db.get(txn, t, &[Value::BigInt(2)], DORA_POLICY)?;
                    Ok(vec![])
                })],
            )
        };
        let fillers: Vec<_> = (0..40).map(|_| e.submit(slow_fill(t))).collect();
        // Phase 1 on partition 1 (key 8), phase 2 on partition 0 (key 0).
        let cross = FlowGraph::new(
            "CrossPhase",
            vec![ActionSpec::read(t, 8, move |db, txn, _| {
                db.get(txn, t, &[Value::BigInt(8)], DORA_POLICY)?;
                Ok(vec![])
            })],
        )
        .then(move |_| {
            Ok(vec![ActionSpec::write(t, 0, move |db, txn, _| {
                let row = db.get(txn, t, &[Value::BigInt(0)], DORA_POLICY)?.unwrap();
                let v = row[1].as_i64().unwrap();
                db.update(
                    txn,
                    t,
                    &[Value::BigInt(0)],
                    &[(1, Value::BigInt(v + 1))],
                    DORA_POLICY,
                )?;
                Ok(vec![])
            })])
        });
        let started = Instant::now();
        let outcome = e.execute(cross);
        let waited = started.elapsed();
        assert!(outcome.is_committed(), "{outcome:?}");
        // The backlog needs ~200ms (40 x 5ms) on partition 0; the
        // priority-lane transaction must not wait for it.
        assert!(
            waited < Duration::from_millis(100),
            "phase-2 action should cut ahead of ~200ms of fresh backlog, waited {waited:?}"
        );
        for f in fillers {
            assert!(f.recv().unwrap().is_committed());
        }
        assert_eq!(read_value(&db, t, 0), 1);
    }

    #[test]
    fn aborted_blocker_wakes_successors_parked_on_free_keys() {
        // T2 parks on {key 0 (free), key 1 (held by T1)}; T3 then parks
        // behind T2 on key 0 (fairness barrier). When T2 times out it
        // held nothing — no key release will ever name key 0 — but its
        // departure must still wake T3 promptly, not strand it until its
        // own timeout.
        let (db, t, routing) = setup(16, 2);
        let e = engine(db.clone(), routing, 2);
        let (h_rx, h_release, h_ready) = holder(&e, t, 1, 8);
        h_ready.recv_timeout(Duration::from_secs(5)).unwrap();

        let blocked = e.submit(FlowGraph::new(
            "NeedsBoth",
            vec![ActionSpec::multi(
                t,
                vec![(0, LockClass::Write), (1, LockClass::Write)],
                |_, _, _| Ok(vec![]),
            )],
        ));
        let deadline = Instant::now() + Duration::from_secs(5);
        while e.stats().deferrals < 1 {
            assert!(Instant::now() < deadline, "T2 never parked");
            std::thread::sleep(Duration::from_millis(1));
        }
        // Age T2 so its 200ms lock timeout fires well before T3's would.
        std::thread::sleep(Duration::from_millis(100));
        let started = Instant::now();
        let successor = e.submit(increment(t, 0));
        let outcome = successor
            .recv_timeout(Duration::from_secs(5))
            .expect("successor resolves");
        let waited = started.elapsed();
        assert!(outcome.is_committed(), "{outcome:?}");
        assert!(
            waited < Duration::from_millis(180),
            "successor must ride the aborted blocker's wakeup (~100ms), \
             not its own timeout (~200ms): waited {waited:?}"
        );
        let blocked_outcome = blocked.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(!blocked_outcome.is_committed(), "{blocked_outcome:?}");
        h_release.send(()).unwrap();
        assert!(h_rx.recv().unwrap().is_committed());
        assert_eq!(read_value(&db, t, 0), 1);
        e.shutdown();
    }

    #[test]
    fn failed_sibling_aborts_parked_actions_promptly() {
        // T's action on partition 0 parks behind a holder's lock; 50ms
        // later T's sibling on partition 2 fails. The failure probe must
        // abort the parked action (and deliver T's reply) right away —
        // not after the parked action's own 200ms lock timeout.
        let (db, t, routing) = setup(24, 3);
        let e = engine(db, routing, 3);
        let (h_rx, h_release, h_ready) = holder(&e, t, 0, 8);
        h_ready.recv_timeout(Duration::from_secs(5)).unwrap();

        let started = Instant::now();
        let doomed = e.submit(FlowGraph::new(
            "DoomedPair",
            vec![
                ActionSpec::write(t, 0, |_, _, _| Ok(vec![])),
                ActionSpec::write(t, 16, |_, _, _| {
                    std::thread::sleep(Duration::from_millis(50));
                    Err(StorageError::Aborted("business rule".into()))
                }),
            ],
        ));
        let outcome = doomed
            .recv_timeout(Duration::from_secs(5))
            .expect("doomed txn resolves");
        let waited = started.elapsed();
        assert!(!outcome.is_committed(), "{outcome:?}");
        assert!(
            waited < Duration::from_millis(150),
            "abort must ride the failure probe (~50ms), not the parked \
             action's lock timeout (~250ms): waited {waited:?}"
        );
        h_release.send(()).unwrap();
        assert!(h_rx.recv().unwrap().is_committed());
        e.shutdown();
    }

    #[test]
    fn admission_failure_probes_parked_siblings_promptly() {
        // The client-thread mirror of the failure probe: T's action on
        // partition 0 parks behind a holder's lock, then T's next slot
        // fails *admission* (partition 1's ring is full) on the client
        // thread. The client must probe the dispatched partitions so the
        // parked action aborts right away — not after its own 2s lock
        // timeout.
        let (db, t, routing) = setup(24, 3);
        let e = DoraEngine::new(
            db,
            routing,
            DoraEngineConfig {
                workers: 3,
                lock_timeout: Duration::from_secs(2),
                queue_capacity: 1,
                submit_timeout: Duration::from_millis(50),
                ..Default::default()
            },
        );
        // Holder keeps key 0 (partition 0) locked while wedging partition
        // 1's worker inside a body; one more submission fills partition
        // 1's single admission slot.
        let (h_rx, h_release, h_ready) = holder(&e, t, 0, 8);
        h_ready.recv_timeout(Duration::from_secs(5)).unwrap();
        let queued = e.submit(increment(t, 9));

        let started = Instant::now();
        let outcome = e.execute(FlowGraph::new(
            "DoomedByAdmission",
            vec![
                ActionSpec::write(t, 0, |_, _, _| Ok(vec![])),
                ActionSpec::write(t, 15, |_, _, _| Ok(vec![])),
            ],
        ));
        let waited = started.elapsed();
        assert!(
            matches!(outcome, TxnOutcome::Aborted { ref reason } if reason.contains("back-pressure")),
            "{outcome:?}"
        );
        assert!(
            waited < Duration::from_millis(700),
            "abort must ride the admission-failure probe (~50ms), not the \
             parked action's 2s lock timeout: waited {waited:?}"
        );
        h_release.send(()).unwrap();
        assert!(h_rx.recv().unwrap().is_committed());
        assert!(queued.recv().unwrap().is_committed());
        e.shutdown();
    }

    #[test]
    fn deep_same_partition_phase_chain_does_not_overflow_the_stack() {
        // Every phase lands on the same single partition, so each next
        // phase is dispatched inline by the RVP terminal — past the depth
        // bound it must detour through the priority lane instead of
        // growing the worker stack once per phase.
        let (db, t, routing) = setup(4, 1);
        let e = engine(db.clone(), routing, 1);
        let phases = 2_000;
        let mut flow = FlowGraph::new(
            "DeepChain",
            vec![ActionSpec::write(t, 0, move |db, txn, _| bump(db, txn, t))],
        );
        for _ in 0..phases {
            flow = flow.then(move |_| {
                Ok(vec![ActionSpec::write(t, 0, move |db, txn, _| {
                    bump(db, txn, t)
                })])
            });
        }
        fn bump(
            db: &Database,
            txn: dora_storage::types::TxnId,
            t: TableId,
        ) -> Result<Vec<Value>, StorageError> {
            let row = db
                .get(txn, t, &[Value::BigInt(0)], DORA_POLICY)?
                .ok_or(StorageError::NotFound)?;
            let v = row[1].as_i64().unwrap();
            db.update(
                txn,
                t,
                &[Value::BigInt(0)],
                &[(1, Value::BigInt(v + 1))],
                DORA_POLICY,
            )?;
            Ok(vec![])
        }
        assert!(e.execute(flow).is_committed());
        assert_eq!(read_value(&db, t, 0), phases as i64 + 1);
        e.shutdown();
    }

    #[test]
    fn same_target_sends_coalesce_into_one_push() {
        // Keys 0..7 live on partition 0, keys 8..15 on partition 1. Phase
        // 1 runs on partition 1; its RVP terminal dispatches a phase 2 of
        // TWO actions, both owned by partition 0 — worker 1's outbox must
        // fold them into a single mailbox push (a `Batch`).
        let (db, t, routing) = setup(16, 2);
        let e = engine(db.clone(), routing, 2);
        let flow = FlowGraph::new(
            "FanOutPhase2",
            vec![ActionSpec::read(t, 8, move |db, txn, _| {
                db.get(txn, t, &[Value::BigInt(8)], DORA_POLICY)?;
                Ok(vec![])
            })],
        )
        .then(move |_| {
            Ok(vec![
                ActionSpec::write(t, 0, move |db, txn, _| {
                    db.update(
                        txn,
                        t,
                        &[Value::BigInt(0)],
                        &[(1, Value::BigInt(1))],
                        DORA_POLICY,
                    )?;
                    Ok(vec![])
                }),
                ActionSpec::write(t, 1, move |db, txn, _| {
                    db.update(
                        txn,
                        t,
                        &[Value::BigInt(1)],
                        &[(1, Value::BigInt(2))],
                        DORA_POLICY,
                    )?;
                    Ok(vec![])
                }),
            ])
        });
        assert!(e.execute(flow).is_committed());
        let w1 = e.stats().workers[1];
        assert_eq!(
            w1.outbox_msgs, 2,
            "worker 1 sent exactly the two phase-2 actions"
        );
        assert_eq!(
            w1.outbox_pushes, 1,
            "both same-target actions must ride one coalesced push"
        );
        // The finish travels the other way: worker 0 ran the terminal RVP
        // and sent partition 1 one Finish for its key. The client reply
        // races worker 0's outbox flush, so poll briefly.
        let deadline = Instant::now() + Duration::from_secs(5);
        let w0 = loop {
            let w0 = e.stats().workers[0];
            if w0.outbox_pushes > 0 || Instant::now() >= deadline {
                break w0;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        assert_eq!(w0.outbox_msgs, 1);
        assert_eq!(w0.outbox_pushes, 1);
        assert_eq!(read_value(&db, t, 0), 1);
        assert_eq!(read_value(&db, t, 1), 2);
        e.shutdown();
    }

    #[test]
    fn deferred_depth_exports_on_transitions() {
        let (db, t, routing) = setup(16, 2);
        let e = engine(db, routing, 2);
        let (h_rx, h_release, h_ready) = holder(&e, t, 0, 8);
        h_ready.recv_timeout(Duration::from_secs(5)).unwrap();
        let waiter = e.submit(increment(t, 0));
        let deadline = Instant::now() + Duration::from_secs(5);
        // The park transition must be visible in the exported snapshot.
        while e.stats().workers[0].deferred != 1 {
            assert!(Instant::now() < deadline, "deferred depth never exported");
            std::thread::sleep(Duration::from_millis(1));
        }
        h_release.send(()).unwrap();
        assert!(h_rx.recv().unwrap().is_committed());
        assert!(waiter.recv().unwrap().is_committed());
        // The unpark transition must be visible too.
        let deadline = Instant::now() + Duration::from_secs(5);
        while e.stats().workers[0].deferred != 0 {
            assert!(Instant::now() < deadline, "unpark never exported");
            std::thread::sleep(Duration::from_millis(1));
        }
        e.shutdown();
    }

    /// Blocks until the engine has recorded at least `n` worker restarts.
    fn wait_for_restarts(e: &DoraEngine, n: u64) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while e.stats().worker_restarts < n {
            assert!(
                Instant::now() < deadline,
                "supervisor never restarted the worker: {:?}",
                e.stats()
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn killed_worker_restarts_and_partition_resumes_serving() {
        let (db, t, routing) = setup(16, 2);
        let e = engine(db.clone(), routing, 2);
        for i in 0..16 {
            assert!(e.execute(increment(t, i)).is_committed());
        }

        assert!(e.kill_worker(0), "worker 0 accepts the kill token");
        wait_for_restarts(&e, 1);

        // The respawned worker serves its partition again, and partition 1
        // was never disturbed.
        let hb_before = e.heartbeats();
        assert_eq!(hb_before.len(), 2);
        for i in 0..16 {
            assert!(e.execute(increment(t, i)).is_committed());
        }
        let hb_after = e.heartbeats();
        assert!(
            hb_after[0] > hb_before[0],
            "replacement worker 0 must be alive and beating"
        );

        let stats = e.stats();
        assert_eq!(stats.chaos_kills, 1);
        assert_eq!(stats.worker_restarts, 1);
        assert!(
            stats.restart_pause_us > 0,
            "restart pause must be measured: {stats:?}"
        );
        assert_eq!(read_value(&db, t, 0), 2);
        e.shutdown();

        // An out-of-range kill target is refused, not UB.
        let (db2, _, routing2) = setup(4, 1);
        let e2 = engine(db2, routing2, 1);
        assert!(!e2.kill_worker(7), "out-of-range id is refused");
        e2.shutdown();
    }

    #[test]
    fn worker_death_aborts_straddling_txns_retryably() {
        // Keys 0..7 live on partition 0, 8..15 on partition 1. The holder
        // locks key 0 on partition 0, then blocks inside a body on
        // partition 1; a waiter parks behind key 0. Killing worker 0 must
        // (a) abort the parked waiter retryably, (b) doom the holder so it
        // aborts retryably when its body finally returns, and (c) leave
        // both partitions serving.
        let (db, t, routing) = setup(16, 2);
        let e = engine(db.clone(), routing, 2);
        let (h_rx, h_release, h_ready) = holder(&e, t, 0, 8);
        h_ready
            .recv_timeout(Duration::from_secs(5))
            .expect("holder locked key 0");
        let waiter = e.submit(increment(t, 0));
        let parked_deadline = Instant::now() + Duration::from_secs(5);
        while e.stats().deferrals < 1 {
            assert!(Instant::now() < parked_deadline, "waiter never parked");
            std::thread::sleep(Duration::from_millis(1));
        }

        assert!(e.kill_worker(0));
        wait_for_restarts(&e, 1);

        let w = waiter.recv_timeout(Duration::from_secs(5)).unwrap();
        match w {
            TxnOutcome::Aborted { ref reason } => assert!(
                reason.contains("partition worker unavailable"),
                "waiter abort must carry the retryable infrastructure \
                 taxonomy, got: {reason}"
            ),
            other => panic!("parked waiter must abort, got {other:?}"),
        }

        // Release the holder: it is doomed (its key-0 lock state was
        // salvaged from the dead worker), so even a fully successful run
        // finishes as a retryable abort, never a commit on salvaged state.
        h_release.send(()).unwrap();
        let h = h_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        match h {
            TxnOutcome::Aborted { ref reason } => assert!(
                reason.contains("partition worker unavailable"),
                "holder abort must be retryable, got: {reason}"
            ),
            other => panic!("doomed holder must abort, got {other:?}"),
        }

        let stats = e.stats();
        assert!(stats.orphan_aborts >= 1, "{stats:?}");
        assert_eq!(stats.worker_restarts, 1);

        // Both partitions converge back to serving, and the aborted
        // increments left no trace.
        assert_eq!(read_value(&db, t, 0), 0);
        assert!(e.execute(increment(t, 0)).is_committed());
        assert!(e.execute(increment(t, 8)).is_committed());
        assert_eq!(read_value(&db, t, 0), 1);
        e.shutdown();
    }

    #[test]
    fn shutdown_counts_stranded_transactions_instead_of_hanging_silently() {
        let (db, t, routing) = setup(4, 1);
        let e = DoraEngine::new(
            db,
            routing,
            DoraEngineConfig {
                workers: 1,
                lock_timeout: Duration::from_millis(50),
                submit_timeout: Duration::from_millis(50),
                shutdown_grace: Duration::ZERO,
                ..Default::default()
            },
        );
        let (entered_tx, entered_rx) = crossbeam_channel::bounded::<()>(1);
        let slow = FlowGraph::new(
            "Slow",
            vec![ActionSpec::write(t, 0, move |_, _, _| {
                let _ = entered_tx.send(());
                std::thread::sleep(Duration::from_millis(600));
                Ok(vec![])
            })],
        );
        let rx = e.submit(slow);
        entered_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("slow body entered");
        // The grace window (lock_timeout + submit_timeout + 0) expires
        // while the body is still running: shutdown must surface the
        // stranded transaction instead of pretending the drain was clean.
        let stranded = e.shutdown();
        assert_eq!(stranded, 1);
        // Stranded means reported, not killed: the worker still finished
        // the body during the drain phase and delivered the outcome.
        assert!(rx.recv().unwrap().is_committed());
    }

    #[test]
    fn seeded_chaos_schedules_lose_no_acked_commit() {
        // A deterministic mini chaos campaign: for each seed, run a
        // concurrent increment stream under an installed [`ChaosPlan`]
        // (worker kills at the Nth dequeue, delivery delays, forced
        // admission pressure) and assert the availability contract: every
        // injected kill is detected and the worker restarted, every abort
        // is a retryable class, every ACKED commit survives to storage,
        // and the engine converges back to all partitions serving.
        use crate::chaos::ChaosPlan;
        const WORKERS: usize = 4;
        const CLIENTS: usize = 4;
        const PER_CLIENT: i64 = 40;
        const ROWS: i64 = 32;
        for seed in [1u64, 7, 42] {
            let (db, t, routing) = setup(ROWS, WORKERS);
            let e = Arc::new(DoraEngine::new(
                db.clone(),
                routing,
                DoraEngineConfig {
                    workers: WORKERS,
                    lock_timeout: Duration::from_millis(200),
                    submit_timeout: Duration::from_millis(200),
                    ..Default::default()
                },
            ));
            e.install_chaos(ChaosPlan::seeded(seed, WORKERS, 50));

            let acked: Arc<Vec<std::sync::Mutex<Vec<u64>>>> = Arc::new(
                (0..CLIENTS)
                    .map(|_| std::sync::Mutex::new(vec![0u64; ROWS as usize]))
                    .collect(),
            );
            std::thread::scope(|s| {
                for c in 0..CLIENTS {
                    let e = Arc::clone(&e);
                    let acked = Arc::clone(&acked);
                    s.spawn(move || {
                        for i in 0..PER_CLIENT {
                            // Deterministic per-client key walk.
                            let key = (c as i64 * 13 + i * 7) % ROWS;
                            match e.execute(increment(t, key)) {
                                TxnOutcome::Committed => {
                                    acked[c].lock().unwrap()[key as usize] += 1;
                                }
                                TxnOutcome::Aborted { reason } => {
                                    let r = reason.to_lowercase();
                                    assert!(
                                        r.contains("worker unavailable")
                                            || r.contains("back-pressure")
                                            || r.contains("lock")
                                            || r.contains("timed out")
                                            || r.contains("timeout"),
                                        "seed {seed}: non-retryable abort \
                                         under chaos: {reason}"
                                    );
                                }
                            }
                        }
                    });
                }
            });

            // Every kill the plan actually fired must have been detected
            // and the worker restarted.
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                let s = e.stats();
                if s.worker_restarts >= s.chaos_kills {
                    break;
                }
                assert!(
                    Instant::now() < deadline,
                    "seed {seed}: kills not all recovered: {s:?}"
                );
                std::thread::sleep(Duration::from_millis(2));
            }

            // Convergence: every partition serves again. Undo each probe
            // increment by hand so the audit below stays exact.
            for p in 0..WORKERS as i64 {
                let key = p * (ROWS / WORKERS as i64);
                assert!(
                    e.execute(increment(t, key)).is_committed(),
                    "seed {seed}: partition {p} did not resume serving"
                );
                let txn = db.begin();
                let row = db
                    .get(txn, t, &[Value::BigInt(key)], DORA_POLICY)
                    .unwrap()
                    .unwrap();
                let v = row[1].as_i64().unwrap();
                db.update(
                    txn,
                    t,
                    &[Value::BigInt(key)],
                    &[(1, Value::BigInt(v - 1))],
                    DORA_POLICY,
                )
                .unwrap();
                db.commit(txn).unwrap();
            }

            // The ground truth: each key's stored value equals exactly the
            // number of ACKED increments on it — nothing acked was lost,
            // nothing unacked leaked.
            for key in 0..ROWS {
                let expect: u64 = (0..CLIENTS)
                    .map(|c| acked[c].lock().unwrap()[key as usize])
                    .sum();
                assert_eq!(
                    read_value(&db, t, key),
                    expect as i64,
                    "seed {seed}: key {key} diverged from acked count"
                );
            }
            match Arc::try_unwrap(e) {
                Ok(e) => {
                    e.shutdown();
                }
                Err(_) => panic!("engine still shared after the stream"),
            }
        }
    }
}
