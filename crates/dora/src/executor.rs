//! The DORA partition executor: one worker thread per logical partition.
//!
//! This is the heart of the paper. The [`DoraEngine`] spawns a fixed pool
//! of worker threads ("micro-engines"), each owning
//!
//! * a private **action queue** — its only input, and
//! * a private [`LocalLockTable`] — touched exclusively by that thread, so
//!   it needs no latches at all.
//!
//! Submitted transactions arrive as
//! [`FlowGraph`]s. Each phase's actions are
//! routed to the partitions owning their data
//! ([`dispatcher::route_phase`](crate::dispatcher::route_phase)) and
//! joined at a rendezvous point ([`Rvp`]); the last action to report at an
//! RVP runs the rendezvous logic on its own worker thread — enqueueing the
//! next phase or committing/aborting the transaction. Storage operations
//! execute under [`DORA_POLICY`] (`LockingPolicy::Bypass`): the
//! centralized lock manager is skipped entirely because every access to a
//! partition's keys is funneled through the one thread that owns them.
//!
//! An action whose local locks are unavailable is **deferred** — parked in
//! the worker's deferral list and retried as transactions finish — never
//! blocking the worker thread. A deferral that outlives
//! [`DoraEngineConfig::lock_timeout`] aborts its transaction, which is
//! also how cross-partition deadlocks (two multi-partition transactions
//! acquiring in opposite orders) are resolved.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam_channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use dora_storage::db::{Database, LockingPolicy};
use dora_storage::error::StorageError;
use dora_storage::trace::{AccessTrace, WorkerCtx};

use crate::action::{ActionSpec, FlowGraph};
use crate::dispatcher::{route_phase, ActionEnvelope, PhaseEnd, Rvp, TxnCtx, WorkerMsg};
use crate::local_lock::{LocalLockStats, LocalLockTable};
use crate::routing::RoutingTable;

/// The locking policy DORA passes to every storage operation: bypass the
/// centralized lock manager, isolation is enforced by the partition-local
/// lock tables.
pub const DORA_POLICY: LockingPolicy = LockingPolicy::Bypass;

/// Final status of a submitted transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnOutcome {
    /// Every phase ran and the transaction committed.
    Committed,
    /// The transaction aborted (action failure, local-lock timeout, or
    /// engine shutdown).
    Aborted {
        /// Why the transaction aborted.
        reason: String,
    },
}

impl TxnOutcome {
    /// True when the transaction committed.
    pub fn is_committed(&self) -> bool {
        matches!(self, TxnOutcome::Committed)
    }
}

/// Configuration of the DORA engine.
#[derive(Debug, Clone)]
pub struct DoraEngineConfig {
    /// Number of partition worker threads (micro-engines).
    pub workers: usize,
    /// How long a deferred action may wait for local locks before its
    /// transaction aborts. Also the cross-partition deadlock bound.
    pub lock_timeout: Duration,
    /// How often a worker with deferred actions re-polls its queue.
    pub poll_interval: Duration,
}

impl Default for DoraEngineConfig {
    fn default() -> Self {
        DoraEngineConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            lock_timeout: Duration::from_millis(500),
            poll_interval: Duration::from_micros(100),
        }
    }
}

/// Engine-wide counters (written by workers, read by `stats`).
#[derive(Debug, Default)]
struct EngineCounters {
    committed: AtomicU64,
    aborted: AtomicU64,
    actions: AtomicU64,
    deferrals: AtomicU64,
    secondary: AtomicU64,
}

/// Per-partition counters, written only by the owning worker (plain
/// stores; the worker's local lock table remains latch-free).
#[derive(Debug, Default)]
struct PartitionCounters {
    executed: AtomicU64,
    busy_ns: AtomicU64,
    lock_acquired: AtomicU64,
    lock_conflicts: AtomicU64,
    lock_released: AtomicU64,
    deferred_depth: AtomicU64,
}

/// Snapshot of one partition worker's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionStatsSnapshot {
    /// Actions executed by this worker.
    pub executed: u64,
    /// Nanoseconds spent executing action bodies and RVP logic.
    pub busy_ns: u64,
    /// This worker's local lock table counters.
    pub locks: LocalLockStats,
    /// Actions currently parked waiting for local locks.
    pub deferred: u64,
}

/// Snapshot of the engine's counters plus per-partition breakdown.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DoraStatsSnapshot {
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted.
    pub aborted: u64,
    /// Actions executed across all partitions.
    pub actions: u64,
    /// Times an action was parked because its local locks were taken.
    pub deferrals: u64,
    /// Non-aligned (secondary) actions executed.
    pub secondary: u64,
    /// Per-partition counters.
    pub workers: Vec<PartitionStatsSnapshot>,
}

struct Inner {
    db: Arc<Database>,
    routing: RwLock<RoutingTable>,
    /// Senders to every partition queue. Cleared by shutdown, which is
    /// what lets workers observe disconnection and exit.
    senders: RwLock<Vec<Sender<WorkerMsg>>>,
    counters: EngineCounters,
    partitions: Vec<PartitionCounters>,
    trace: Arc<AccessTrace>,
    /// Transactions begun but not yet finalized.
    active: AtomicUsize,
    /// False once shutdown starts; submissions are rejected for good.
    accepting: AtomicBool,
    /// True while `update_routing` drains in-flight transactions;
    /// submissions wait it out instead of aborting.
    quiescing: AtomicBool,
    /// Serializes concurrent `update_routing` calls — overlapping
    /// quiesce windows would let one caller clear `quiescing` while the
    /// other is still swapping the table.
    rebalance: parking_lot::Mutex<()>,
    /// Round-robin cursor for secondary (non-aligned) actions.
    next_secondary: AtomicUsize,
    config: DoraEngineConfig,
}

/// The data-oriented execution engine.
pub struct DoraEngine {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl DoraEngine {
    /// Creates the engine and spawns one worker thread per partition.
    pub fn new(db: Arc<Database>, routing: RoutingTable, config: DoraEngineConfig) -> Self {
        assert!(config.workers > 0, "need at least one partition worker");
        let mut senders = Vec::with_capacity(config.workers);
        let mut receivers = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            let (tx, rx) = unbounded::<WorkerMsg>();
            senders.push(tx);
            receivers.push(rx);
        }
        let inner = Arc::new(Inner {
            db,
            routing: RwLock::new(routing),
            senders: RwLock::new(senders),
            counters: EngineCounters::default(),
            partitions: (0..config.workers)
                .map(|_| PartitionCounters::default())
                .collect(),
            trace: Arc::new(AccessTrace::new()),
            active: AtomicUsize::new(0),
            accepting: AtomicBool::new(true),
            quiescing: AtomicBool::new(false),
            rebalance: parking_lot::Mutex::new(()),
            next_secondary: AtomicUsize::new(0),
            config,
        });
        let workers = receivers
            .into_iter()
            .enumerate()
            .map(|(id, rx)| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("dora-worker-{id}"))
                    .spawn(move || worker_loop(inner, id, rx))
                    .expect("spawn DORA partition worker")
            })
            .collect();
        DoraEngine { inner, workers }
    }

    /// The underlying database.
    pub fn db(&self) -> &Arc<Database> {
        &self.inner.db
    }

    /// The engine's access trace (disabled unless enabled by the caller).
    pub fn trace(&self) -> &Arc<AccessTrace> {
        &self.inner.trace
    }

    /// Number of partition worker threads.
    pub fn worker_count(&self) -> usize {
        self.inner.config.workers
    }

    /// A copy of the current routing configuration.
    pub fn routing(&self) -> RoutingTable {
        self.inner.routing.read().clone()
    }

    /// Applies `f` to the routing table (run-time re-partitioning hook for
    /// the designer's load balancer).
    ///
    /// The engine **quiesces** first: intake pauses (submissions arriving
    /// during the switch wait for it to finish) and in-flight transactions
    /// drain, so no partition's local lock table still holds state for
    /// keys whose ownership is about to move. Without the barrier, a key
    /// re-routed while a transaction holds its lock on the old owner could
    /// be locked again — fresh and unconflicted — on the new owner,
    /// breaking isolation. Partitions are logical, so the switch itself is
    /// O(1); the wait is bounded by `lock_timeout` like shutdown's.
    pub fn update_routing(&self, f: impl FnOnce(&mut RoutingTable)) {
        // One re-partitioning at a time; overlapping quiesce windows would
        // let one caller resume intake while the other still swaps rules.
        let _serialize = self.inner.rebalance.lock();
        self.inner.quiescing.store(true, Ordering::Release);
        // Clear `quiescing` even if `f` panics — a wedged flag would make
        // every later submit() spin forever.
        struct ResumeIntake<'a>(&'a AtomicBool);
        impl Drop for ResumeIntake<'_> {
            fn drop(&mut self) {
                self.0.store(false, Ordering::Release);
            }
        }
        let _resume = ResumeIntake(&self.inner.quiescing);
        let deadline = Instant::now() + self.inner.config.lock_timeout + Duration::from_secs(30);
        while self.inner.active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_micros(200));
        }
        f(&mut self.inner.routing.write());
    }

    /// Total number of actions waiting in partition queues.
    pub fn queue_len(&self) -> usize {
        self.inner.senders.read().iter().map(|s| s.len()).sum()
    }

    /// Submits a transaction flow graph; the returned channel yields its
    /// outcome once the terminal RVP decides commit or abort.
    pub fn submit(&self, flow: FlowGraph) -> Receiver<TxnOutcome> {
        let (reply_tx, reply_rx) = bounded(1);
        // A routing quiesce is short; wait it out rather than bouncing the
        // client. Shutdown, by contrast, is final: reject immediately.
        // Order matters: become visible in `active` *first*, then re-check
        // `quiescing` — checking before incrementing would let a submission
        // slip past `update_routing`'s drain barrier (it reads `active`
        // after setting `quiescing`) and route with lock state that
        // predates the switch.
        loop {
            while self.inner.quiescing.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_micros(100));
            }
            self.inner.active.fetch_add(1, Ordering::AcqRel);
            if !self.inner.quiescing.load(Ordering::Acquire) {
                break;
            }
            // Raced the start of a quiesce: step back out and wait.
            self.inner.active.fetch_sub(1, Ordering::AcqRel);
        }
        if !self.inner.accepting.load(Ordering::Acquire) {
            self.inner.active.fetch_sub(1, Ordering::AcqRel);
            let _ = reply_tx.send(TxnOutcome::Aborted {
                reason: "engine is not accepting new transactions".into(),
            });
            return reply_rx;
        }
        let txn = self.inner.db.begin();
        let ctx = Arc::new(TxnCtx::new(txn, flow.name, flow.next, reply_tx));
        advance(&self.inner, &ctx, flow.first, None);
        reply_rx
    }

    /// Submits a transaction and blocks until it finishes.
    pub fn execute(&self, flow: FlowGraph) -> TxnOutcome {
        self.submit(flow).recv().unwrap_or(TxnOutcome::Aborted {
            reason: "engine dropped the transaction".into(),
        })
    }

    /// Engine counters plus per-partition breakdown.
    pub fn stats(&self) -> DoraStatsSnapshot {
        let c = &self.inner.counters;
        DoraStatsSnapshot {
            committed: c.committed.load(Ordering::Relaxed),
            aborted: c.aborted.load(Ordering::Relaxed),
            actions: c.actions.load(Ordering::Relaxed),
            deferrals: c.deferrals.load(Ordering::Relaxed),
            secondary: c.secondary.load(Ordering::Relaxed),
            workers: self
                .inner
                .partitions
                .iter()
                .map(|p| PartitionStatsSnapshot {
                    executed: p.executed.load(Ordering::Relaxed),
                    busy_ns: p.busy_ns.load(Ordering::Relaxed),
                    locks: LocalLockStats {
                        acquired: p.lock_acquired.load(Ordering::Relaxed),
                        conflicts: p.lock_conflicts.load(Ordering::Relaxed),
                        released: p.lock_released.load(Ordering::Relaxed),
                    },
                    deferred: p.deferred_depth.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// Stops accepting work, lets in-flight transactions finish (deferred
    /// actions resolve or time out), then joins all workers.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.inner.accepting.store(false, Ordering::Release);
        // In-flight transactions always terminate: every deferred action
        // either acquires its locks or aborts after `lock_timeout`. The
        // deadline below is a defensive backstop, not the normal path.
        let deadline = Instant::now() + self.inner.config.lock_timeout + Duration::from_secs(30);
        while self.inner.active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_micros(200));
        }
        self.inner.senders.write().clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for DoraEngine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Dispatches the next phase of `ctx`'s transaction (or commits it when
/// `specs` is empty). `local` is the calling worker's own lock table when
/// invoked from RVP logic; `None` when invoked from `submit`.
fn advance(
    inner: &Arc<Inner>,
    ctx: &Arc<TxnCtx>,
    specs: Vec<ActionSpec>,
    local: Option<(usize, &mut LocalLockTable)>,
) {
    if specs.is_empty() {
        // An empty phase ends the transaction — but only legitimately when
        // no later phases are queued. Committing while generators wait
        // would silently drop them; surface the flow-graph bug instead.
        let pending = ctx.phases.lock().len();
        let failure = (pending > 0).then(|| {
            StorageError::Internal(format!(
                "empty phase with {pending} phase generator(s) still queued"
            ))
        });
        finalize(inner, ctx, failure, local);
        return;
    }
    let senders = inner.senders.read();
    if senders.is_empty() {
        drop(senders);
        finalize(
            inner,
            ctx,
            Some(StorageError::Aborted("engine is shutting down".into())),
            local,
        );
        return;
    }
    let assignments = {
        let routing = inner.routing.read();
        route_phase(&routing, senders.len(), &inner.next_secondary, &specs)
    };
    let assignments = match assignments {
        Ok(a) => a,
        Err(e) => {
            drop(senders);
            finalize(inner, ctx, Some(e.into()), local);
            return;
        }
    };
    let rvp = Arc::new(Rvp::new(specs.len()));
    let now = Instant::now();
    for (slot, (spec, partition)) in specs.into_iter().zip(assignments).enumerate() {
        if !spec.aligned {
            inner.counters.secondary.fetch_add(1, Ordering::Relaxed);
        }
        ctx.mark_involved(partition);
        let envelope = ActionEnvelope {
            slot,
            table: spec.table,
            keys: spec.keys,
            body: spec.body,
            txn: ctx.clone(),
            rvp: rvp.clone(),
            dispatched: now,
        };
        // Shutdown cannot drop the receivers underneath us (we hold the
        // senders read lock), but a worker whose action body panicked is
        // gone for good — report the slot as failed so the RVP still
        // converges and the transaction aborts instead of the engine
        // panicking or hanging.
        if senders[partition]
            .send(WorkerMsg::Action(envelope))
            .is_err()
        {
            let dead = StorageError::Internal(format!("partition worker {partition} is gone"));
            if let PhaseEnd::Last { failure, .. } = rvp.report(slot, Err(dead.clone())) {
                drop(senders);
                finalize(inner, ctx, Some(failure.unwrap_or(dead)), local);
                return;
            }
        }
    }
}

/// Terminates a transaction: commit (when `failure` is `None`) or abort.
/// Releases the calling worker's local locks directly and broadcasts
/// `Finish` to every other involved partition.
fn finalize(
    inner: &Arc<Inner>,
    ctx: &Arc<TxnCtx>,
    failure: Option<StorageError>,
    local: Option<(usize, &mut LocalLockTable)>,
) {
    let outcome = match failure {
        None => match inner.db.commit_policy(ctx.txn, DORA_POLICY) {
            Ok(()) => TxnOutcome::Committed,
            Err(e) => TxnOutcome::Aborted {
                reason: format!("commit failed: {e}"),
            },
        },
        Some(e) => {
            let _ = inner.db.abort_policy(ctx.txn, DORA_POLICY);
            TxnOutcome::Aborted {
                reason: e.to_string(),
            }
        }
    };
    let local_id = local.as_ref().map(|(id, _)| *id);
    if let Some((_, locks)) = local {
        locks.release_all(ctx.txn);
    }
    {
        let senders = inner.senders.read();
        for partition in ctx.involved() {
            if Some(partition) == local_id {
                continue;
            }
            if let Some(sender) = senders.get(partition) {
                let _ = sender.send(WorkerMsg::Finish(ctx.txn));
            }
        }
    }
    match &outcome {
        TxnOutcome::Committed => inner.counters.committed.fetch_add(1, Ordering::Relaxed),
        TxnOutcome::Aborted { .. } => inner.counters.aborted.fetch_add(1, Ordering::Relaxed),
    };
    let _ = ctx.reply.send(outcome);
    inner.active.fetch_sub(1, Ordering::AcqRel);
}

/// The partition worker ("micro-engine") main loop.
fn worker_loop(inner: Arc<Inner>, id: usize, rx: Receiver<WorkerMsg>) {
    let mut locks = LocalLockTable::new();
    let mut deferred: VecDeque<ActionEnvelope> = VecDeque::new();
    let ctx = WorkerCtx::new(id, inner.trace.clone());
    loop {
        let msg = if deferred.is_empty() {
            match rx.recv() {
                Ok(m) => Some(m),
                Err(_) => break,
            }
        } else {
            match rx.recv_timeout(inner.config.poll_interval) {
                Ok(m) => Some(m),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        };
        match msg {
            Some(WorkerMsg::Action(envelope)) => {
                handle_action(&inner, id, &ctx, &mut locks, &mut deferred, envelope);
            }
            Some(WorkerMsg::Finish(txn)) => {
                locks.release_all(txn);
            }
            None => {}
        }
        retry_deferred(&inner, id, &ctx, &mut locks, &mut deferred);
        export_stats(&inner, id, &locks, deferred.len());
    }
    // Shutdown: whatever is still deferred can never be granted (no new
    // Finish messages will arrive) — abort those transactions.
    for envelope in deferred.drain(..) {
        complete(
            &inner,
            id,
            &mut locks,
            envelope,
            Err(StorageError::Aborted("engine is shutting down".into())),
        );
    }
    export_stats(&inner, id, &locks, 0);
}

/// Whether `envelope` must wait behind an already-parked conflicting
/// action of another transaction. This is the worker's FIFO fairness
/// barrier: without it, a steady stream of newly arriving readers on a
/// key would be granted ahead of a parked writer forever, starving it
/// into a spurious `LockTimeout` abort.
///
/// Keys the envelope's transaction already holds *in any mode* are
/// exempt: a parked stranger wanting such a key cannot be granted until
/// this transaction finishes, so queueing behind it would deadlock —
/// whether the action re-takes its own lock or upgrades its read to a
/// write (`try_acquire` grants a sole-reader upgrade directly).
fn conflicts_with_parked(
    locks: &LocalLockTable,
    parked: &VecDeque<ActionEnvelope>,
    envelope: &ActionEnvelope,
) -> bool {
    let txn = envelope.txn.txn;
    envelope.keys.iter().any(|&(key, class)| {
        !locks.holds_any(txn, envelope.table, key)
            && parked.iter().any(|p| {
                p.txn.txn != txn
                    && p.table == envelope.table
                    && p.keys.iter().any(|&(parked_key, parked_class)| {
                        key == parked_key && class.conflicts(parked_class)
                    })
            })
    })
}

/// Attempts to run one action: skip it when a sibling already failed,
/// execute it when its local locks are grantable and no earlier-parked
/// conflicting action is waiting, abort its transaction when it outlived
/// the lock timeout. Returns the envelope back when the action must stay
/// parked. `parked` holds the actions queued *ahead* of this one.
#[must_use]
fn try_run(
    inner: &Arc<Inner>,
    id: usize,
    ctx: &WorkerCtx,
    locks: &mut LocalLockTable,
    parked: &VecDeque<ActionEnvelope>,
    envelope: ActionEnvelope,
) -> Option<ActionEnvelope> {
    // A sibling action already failed: the transaction will abort, don't
    // run (or wait for locks on) work whose effects would only be undone.
    if envelope.rvp.failed() {
        complete(
            inner,
            id,
            locks,
            envelope,
            Err(StorageError::Aborted("sibling action failed".into())),
        );
        return None;
    }
    if !conflicts_with_parked(locks, parked, &envelope) {
        let requests: Vec<_> = envelope
            .keys
            .iter()
            .map(|&(key, class)| (envelope.table, key, class))
            .collect();
        if locks.try_acquire(envelope.txn.txn, &requests) {
            execute(inner, id, ctx, locks, envelope);
            return None;
        }
    }
    if envelope.dispatched.elapsed() >= inner.config.lock_timeout {
        let txn = envelope.txn.txn;
        complete(
            inner,
            id,
            locks,
            envelope,
            Err(StorageError::LockTimeout(txn)),
        );
        None
    } else {
        Some(envelope)
    }
}

/// Executes one incoming action, deferring it when its locks are taken
/// or a parked conflicting action is ahead of it.
fn handle_action(
    inner: &Arc<Inner>,
    id: usize,
    ctx: &WorkerCtx,
    locks: &mut LocalLockTable,
    deferred: &mut VecDeque<ActionEnvelope>,
    envelope: ActionEnvelope,
) {
    if let Some(envelope) = try_run(inner, id, ctx, locks, deferred, envelope) {
        inner.counters.deferrals.fetch_add(1, Ordering::Relaxed);
        deferred.push_back(envelope);
    }
}

/// Re-examines parked actions in FIFO order: acquire and run those whose
/// locks freed up (unless a conflicting action parked *earlier* is still
/// waiting), abort those that outlived the lock timeout.
fn retry_deferred(
    inner: &Arc<Inner>,
    id: usize,
    ctx: &WorkerCtx,
    locks: &mut LocalLockTable,
    deferred: &mut VecDeque<ActionEnvelope>,
) {
    let mut still_parked = VecDeque::with_capacity(deferred.len());
    while let Some(envelope) = deferred.pop_front() {
        if let Some(envelope) = try_run(inner, id, ctx, locks, &still_parked, envelope) {
            still_parked.push_back(envelope);
        }
    }
    *deferred = still_parked;
}

/// Runs an action body (locks already held) and reports to its RVP.
fn execute(
    inner: &Arc<Inner>,
    id: usize,
    ctx: &WorkerCtx,
    locks: &mut LocalLockTable,
    envelope: ActionEnvelope,
) {
    let start = Instant::now();
    let ActionEnvelope {
        slot,
        body,
        txn,
        rvp,
        ..
    } = envelope;
    // A panicking body must not unwind the worker thread: the partition's
    // queue and lock table would die with it, and the transaction would
    // leak — RVP slot never reported, `active` never decremented, locks on
    // other partitions never released. Convert the panic into an abort.
    let result = catch_panic(|| body(&inner.db, txn.txn, ctx), "action body");
    let elapsed = start.elapsed().as_nanos() as u64;
    let counters = &inner.partitions[id];
    counters.executed.fetch_add(1, Ordering::Relaxed);
    counters.busy_ns.fetch_add(elapsed, Ordering::Relaxed);
    inner.counters.actions.fetch_add(1, Ordering::Relaxed);
    report(inner, id, locks, &txn, &rvp, slot, result);
}

/// Reports a result for an action that did not execute (skip/timeout).
fn complete(
    inner: &Arc<Inner>,
    id: usize,
    locks: &mut LocalLockTable,
    envelope: ActionEnvelope,
    result: Result<Vec<dora_storage::types::Value>, StorageError>,
) {
    let ActionEnvelope { slot, txn, rvp, .. } = envelope;
    report(inner, id, locks, &txn, &rvp, slot, result);
}

/// Runs a piece of user code (action body or phase generator), converting
/// a panic into a transaction-aborting error so worker threads — which own
/// partition queues and lock tables for the engine's whole lifetime —
/// never unwind.
fn catch_panic<T>(
    f: impl FnOnce() -> Result<T, StorageError>,
    what: &str,
) -> Result<T, StorageError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).unwrap_or_else(|panic| {
        let msg = panic
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "opaque panic payload".into());
        Err(StorageError::Internal(format!("{what} panicked: {msg}")))
    })
}

/// Delivers one action result to the RVP; the last reporter runs the
/// rendezvous logic (next phase, or commit/abort) right here on the
/// worker thread.
fn report(
    inner: &Arc<Inner>,
    id: usize,
    locks: &mut LocalLockTable,
    txn: &Arc<TxnCtx>,
    rvp: &Arc<Rvp>,
    slot: usize,
    result: Result<Vec<dora_storage::types::Value>, StorageError>,
) {
    match rvp.report(slot, result) {
        PhaseEnd::NotLast => {}
        PhaseEnd::Last { outputs, failure } => {
            if let Some(e) = failure {
                finalize(inner, txn, Some(e), Some((id, locks)));
                return;
            }
            let next = txn.phases.lock().pop_front();
            match next {
                None => finalize(inner, txn, None, Some((id, locks))),
                // Generators are user code like action bodies: a panic must
                // abort the transaction, not unwind (and kill) the worker.
                Some(gen) => match catch_panic(|| gen(&outputs), "phase generator") {
                    Ok(specs) => advance(inner, txn, specs, Some((id, locks))),
                    Err(e) => finalize(inner, txn, Some(e), Some((id, locks))),
                },
            }
        }
    }
}

/// Publishes the worker's private counters into the shared snapshot slots
/// (plain stores by the single owner; readers only snapshot).
fn export_stats(inner: &Arc<Inner>, id: usize, locks: &LocalLockTable, deferred: usize) {
    let stats = locks.stats();
    let counters = &inner.partitions[id];
    counters
        .lock_acquired
        .store(stats.acquired, Ordering::Relaxed);
    counters
        .lock_conflicts
        .store(stats.conflicts, Ordering::Relaxed);
    counters
        .lock_released
        .store(stats.released, Ordering::Relaxed);
    counters
        .deferred_depth
        .store(deferred as u64, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RoutingRule;
    use dora_storage::schema::{ColumnDef, TableSchema};
    use dora_storage::types::{DataType, TableId, Value};

    /// A `counters(id BIGINT, value BIGINT)` table pre-loaded with
    /// `rows` zero-valued rows, plus a 4-partition routing rule over it.
    fn setup(rows: i64, workers: usize) -> (Arc<Database>, TableId, RoutingTable) {
        let db = Arc::new(Database::default());
        let t = db
            .create_table(TableSchema::new(
                "counters",
                vec![
                    ColumnDef::new("id", DataType::BigInt),
                    ColumnDef::new("value", DataType::BigInt),
                ],
                vec![0],
            ))
            .unwrap();
        let txn = db.begin();
        for i in 0..rows {
            db.insert(
                txn,
                t,
                vec![Value::BigInt(i), Value::BigInt(0)],
                DORA_POLICY,
            )
            .unwrap();
        }
        db.commit(txn).unwrap();
        let mut routing = RoutingTable::new();
        routing.set_rule(RoutingRule::uniform(
            t,
            0,
            0,
            rows.max(1) - 1,
            workers,
            workers,
        ));
        (db, t, routing)
    }

    fn engine(db: Arc<Database>, routing: RoutingTable, workers: usize) -> DoraEngine {
        DoraEngine::new(
            db,
            routing,
            DoraEngineConfig {
                workers,
                lock_timeout: Duration::from_millis(200),
                poll_interval: Duration::from_micros(50),
            },
        )
    }

    fn increment(t: TableId, id: i64) -> FlowGraph {
        FlowGraph::new(
            "Increment",
            vec![ActionSpec::write(t, id, move |db, txn, ctx| {
                ctx.record(t, id, true);
                let row = db
                    .get(txn, t, &[Value::BigInt(id)], DORA_POLICY)?
                    .ok_or(StorageError::NotFound)?;
                let v = row[1].as_i64().unwrap();
                db.update(
                    txn,
                    t,
                    &[Value::BigInt(id)],
                    &[(1, Value::BigInt(v + 1))],
                    DORA_POLICY,
                )?;
                Ok(vec![])
            })],
        )
    }

    fn read_value(db: &Database, t: TableId, id: i64) -> i64 {
        let txn = db.begin();
        let row = db
            .get(txn, t, &[Value::BigInt(id)], DORA_POLICY)
            .unwrap()
            .unwrap();
        db.commit(txn).unwrap();
        row[1].as_i64().unwrap()
    }

    #[test]
    fn commits_single_partition_transactions() {
        let (db, t, routing) = setup(16, 4);
        let e = engine(db.clone(), routing, 4);
        for i in 0..32 {
            assert!(e.execute(increment(t, i % 16)).is_committed());
        }
        let stats = e.stats();
        assert_eq!(stats.committed, 32);
        assert_eq!(stats.aborted, 0);
        assert_eq!(stats.actions, 32);
        assert_eq!(read_value(&db, t, 0), 2);
        e.shutdown();
    }

    #[test]
    fn multi_partition_phase_joins_at_rvp() {
        let (db, t, routing) = setup(16, 4);
        let e = engine(db.clone(), routing, 4);
        // One phase, two actions on different partitions (keys 1 and 13
        // live in partitions 0 and 3 of the uniform 4x4 rule over [0, 15]).
        let flow = FlowGraph::new(
            "TwoPartitionBump",
            vec![
                ActionSpec::write(t, 1, move |db, txn, _| {
                    db.update(
                        txn,
                        t,
                        &[Value::BigInt(1)],
                        &[(1, Value::BigInt(10))],
                        DORA_POLICY,
                    )?;
                    Ok(vec![])
                }),
                ActionSpec::write(t, 13, move |db, txn, _| {
                    db.update(
                        txn,
                        t,
                        &[Value::BigInt(13)],
                        &[(1, Value::BigInt(20))],
                        DORA_POLICY,
                    )?;
                    Ok(vec![])
                }),
            ],
        );
        assert!(e.execute(flow).is_committed());
        assert_eq!(read_value(&db, t, 1), 10);
        assert_eq!(read_value(&db, t, 13), 20);
        e.shutdown();
    }

    #[test]
    fn rvp_carries_outputs_into_the_next_phase() {
        let (db, t, routing) = setup(16, 4);
        let e = engine(db.clone(), routing, 4);
        // Phase 1 reads two counters; phase 2 writes their sum into a third.
        let flow = FlowGraph::new(
            "SumInto",
            vec![
                ActionSpec::read(t, 2, move |db, txn, _| {
                    let row = db.get(txn, t, &[Value::BigInt(2)], DORA_POLICY)?.unwrap();
                    Ok(vec![row[1].clone()])
                }),
                ActionSpec::read(t, 14, move |db, txn, _| {
                    let row = db.get(txn, t, &[Value::BigInt(14)], DORA_POLICY)?.unwrap();
                    Ok(vec![row[1].clone()])
                }),
            ],
        )
        .then(move |outputs| {
            let sum: i64 = outputs.iter().map(|o| o[0].as_i64().unwrap()).sum();
            Ok(vec![ActionSpec::write(t, 5, move |db, txn, _| {
                db.update(
                    txn,
                    t,
                    &[Value::BigInt(5)],
                    &[(1, Value::BigInt(sum + 100))],
                    DORA_POLICY,
                )?;
                Ok(vec![])
            })])
        });
        assert!(e.execute(flow).is_committed());
        assert_eq!(read_value(&db, t, 5), 100);
        e.shutdown();
    }

    #[test]
    fn failed_action_aborts_and_rolls_back_all_partitions() {
        let (db, t, routing) = setup(16, 4);
        let e = engine(db.clone(), routing, 4);
        let flow = FlowGraph::new(
            "HalfBroken",
            vec![
                ActionSpec::write(t, 0, move |db, txn, _| {
                    db.update(
                        txn,
                        t,
                        &[Value::BigInt(0)],
                        &[(1, Value::BigInt(77))],
                        DORA_POLICY,
                    )?;
                    Ok(vec![])
                }),
                ActionSpec::write(t, 15, move |_, _, _| {
                    Err(StorageError::Aborted("business rule".into()))
                }),
            ],
        );
        let outcome = e.execute(flow);
        assert!(!outcome.is_committed(), "{outcome:?}");
        // The update on partition 0 must have been undone.
        assert_eq!(read_value(&db, t, 0), 0);
        assert_eq!(e.stats().aborted, 1);
        e.shutdown();
    }

    #[test]
    fn phase_generator_error_aborts() {
        let (db, t, routing) = setup(16, 4);
        let e = engine(db, routing, 4);
        let flow = FlowGraph::new("BadGen", vec![ActionSpec::read(t, 3, |_, _, _| Ok(vec![]))])
            .then(|_| Err(StorageError::Aborted("generator failed".into())));
        let outcome = e.execute(flow);
        assert!(
            matches!(outcome, TxnOutcome::Aborted { ref reason } if reason.contains("generator"))
        );
        e.shutdown();
    }

    #[test]
    fn empty_flow_graph_commits_immediately() {
        let (db, t, routing) = setup(16, 4);
        let _ = t;
        let e = engine(db, routing, 4);
        assert!(e.execute(FlowGraph::new("Nop", vec![])).is_committed());
        assert_eq!(e.stats().committed, 1);
        e.shutdown();
    }

    #[test]
    fn empty_phase_with_queued_generators_aborts() {
        let (db, t, routing) = setup(16, 4);
        let e = engine(db, routing, 4);
        // An empty first phase followed by a generator is a builder bug:
        // committing would silently skip the generator.
        let never_ran = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = never_ran.clone();
        let flow = FlowGraph::new("EmptyFirst", vec![]).then(move |_| {
            flag.store(true, Ordering::Relaxed);
            Ok(vec![])
        });
        let outcome = e.execute(flow);
        assert!(
            matches!(outcome, TxnOutcome::Aborted { ref reason } if reason.contains("still queued")),
            "{outcome:?}"
        );
        assert!(!never_ran.load(Ordering::Relaxed));
        // Same rule mid-flow: a generator returning no actions while more
        // generators wait is rejected, not silently committed past them.
        let flow = FlowGraph::new(
            "EmptyMiddle",
            vec![ActionSpec::read(t, 1, |_, _, _| Ok(vec![]))],
        )
        .then(|_| Ok(vec![]))
        .then(|_| Ok(vec![]));
        let outcome = e.execute(flow);
        assert!(
            matches!(outcome, TxnOutcome::Aborted { ref reason } if reason.contains("still queued")),
            "{outcome:?}"
        );
        e.shutdown();
    }

    #[test]
    fn panicking_action_body_aborts_without_killing_the_worker() {
        let (db, t, routing) = setup(16, 4);
        let e = engine(db.clone(), routing, 4);
        let flow = FlowGraph::new(
            "Panics",
            vec![
                ActionSpec::write(t, 1, move |db, txn, _| {
                    db.update(
                        txn,
                        t,
                        &[Value::BigInt(1)],
                        &[(1, Value::BigInt(9))],
                        DORA_POLICY,
                    )?;
                    Ok(vec![])
                }),
                ActionSpec::write(t, 13, |_, _, _| panic!("boom in user code")),
            ],
        );
        let outcome = e.execute(flow);
        assert!(
            matches!(outcome, TxnOutcome::Aborted { ref reason } if reason.contains("panicked")),
            "{outcome:?}"
        );
        // The sibling's write was rolled back and the panicking partition's
        // worker is still alive and serving.
        assert_eq!(read_value(&db, t, 1), 0);
        for i in 0..16 {
            assert!(e.execute(increment(t, i)).is_committed());
        }
        e.shutdown();
    }

    #[test]
    fn panicking_phase_generator_aborts_without_killing_the_worker() {
        let (db, t, routing) = setup(16, 4);
        let e = engine(db.clone(), routing, 4);
        let flow = FlowGraph::new(
            "GenPanics",
            vec![ActionSpec::read(t, 3, |_, _, _| Ok(vec![]))],
        )
        .then(|outputs| {
            // The classic mistake: indexing an output that isn't there.
            let _ = outputs[0][7].clone();
            Ok(vec![])
        });
        let outcome = e.execute(flow);
        assert!(
            matches!(outcome, TxnOutcome::Aborted { ref reason } if reason.contains("panicked")),
            "{outcome:?}"
        );
        // The worker that ran the generator is still alive and serving,
        // and nothing leaked: shutdown drains promptly.
        for i in 0..16 {
            assert!(e.execute(increment(t, i)).is_committed());
        }
        let started = Instant::now();
        e.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "no leaked active txns"
        );
    }

    #[test]
    fn read_upgrade_is_not_trapped_behind_parked_stranger() {
        // Regression: T holds a Read on k; a stranger's Write parks behind
        // it; T's phase-2 Write upgrade must cut past the parked stranger
        // (it can never be granted before T finishes) instead of waiting
        // out the lock timeout.
        let (db, t, routing) = setup(16, 4);
        let e = Arc::new(engine(db.clone(), routing, 4));
        let upgrade = FlowGraph::new(
            "ReadThenUpgrade",
            vec![ActionSpec::read(t, 2, move |db, txn, _| {
                let row = db.get(txn, t, &[Value::BigInt(2)], DORA_POLICY)?.unwrap();
                Ok(vec![row[1].clone()])
            })],
        )
        .then(move |outputs| {
            let v = outputs[0][0].as_i64().unwrap();
            // Give the stranger time to park behind our read lock.
            std::thread::sleep(Duration::from_millis(30));
            Ok(vec![ActionSpec::write(t, 2, move |db, txn, _| {
                db.update(
                    txn,
                    t,
                    &[Value::BigInt(2)],
                    &[(1, Value::BigInt(v + 1))],
                    DORA_POLICY,
                )?;
                Ok(vec![])
            })])
        });
        let stranger = {
            let e = e.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                e.execute(increment(t, 2))
            })
        };
        let started = Instant::now();
        let outcome = e.execute(upgrade);
        assert!(outcome.is_committed(), "{outcome:?}");
        assert!(
            started.elapsed() < Duration::from_millis(150),
            "upgrade must not wait out the lock timeout: {:?}",
            started.elapsed()
        );
        assert!(stranger.join().unwrap().is_committed());
        assert_eq!(read_value(&db, t, 2), 2);
    }

    #[test]
    fn hot_key_increments_serialize_on_owner_partition() {
        let (db, t, routing) = setup(16, 4);
        let e = Arc::new(engine(db.clone(), routing, 4));
        let mut clients = Vec::new();
        for _ in 0..4 {
            let e = e.clone();
            clients.push(std::thread::spawn(move || {
                let mut committed = 0;
                for _ in 0..25 {
                    if e.execute(increment(t, 0)).is_committed() {
                        committed += 1;
                    }
                }
                committed
            }));
        }
        let committed: i64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(
            committed, 100,
            "same-key actions serialize, none should abort"
        );
        assert_eq!(read_value(&db, t, 0), 100);
    }

    #[test]
    fn bypasses_the_centralized_lock_manager() {
        let (db, t, routing) = setup(16, 4);
        let before = db.lock_stats().critical_sections;
        let e = engine(db.clone(), routing, 4);
        for i in 0..20 {
            assert!(e.execute(increment(t, i % 16)).is_committed());
        }
        e.shutdown();
        let after = db.lock_stats().critical_sections;
        assert_eq!(
            after, before,
            "DORA must never enter lock-manager critical sections"
        );
    }

    #[test]
    fn cross_partition_lock_conflicts_time_out_not_hang() {
        let (db, t, routing) = setup(16, 2);
        let e = Arc::new(engine(db.clone(), routing, 2));
        // Stress opposing lock orders: transactions that write (a, b) and
        // (b, a) where a and b live on different partitions. Deferral plus
        // the lock timeout guarantees global progress.
        let mut clients = Vec::new();
        for c in 0..2 {
            let e = e.clone();
            clients.push(std::thread::spawn(move || {
                let mut done = 0;
                for _ in 0..20 {
                    let (x, y) = if c == 0 { (1, 15) } else { (15, 1) };
                    let flow = FlowGraph::new(
                        "OpposingOrder",
                        vec![
                            ActionSpec::write(t, x, move |db, txn, _| {
                                let row =
                                    db.get(txn, t, &[Value::BigInt(x)], DORA_POLICY)?.unwrap();
                                let v = row[1].as_i64().unwrap();
                                db.update(
                                    txn,
                                    t,
                                    &[Value::BigInt(x)],
                                    &[(1, Value::BigInt(v + 1))],
                                    DORA_POLICY,
                                )?;
                                Ok(vec![])
                            }),
                            ActionSpec::write(t, y, move |db, txn, _| {
                                let row =
                                    db.get(txn, t, &[Value::BigInt(y)], DORA_POLICY)?.unwrap();
                                let v = row[1].as_i64().unwrap();
                                db.update(
                                    txn,
                                    t,
                                    &[Value::BigInt(y)],
                                    &[(1, Value::BigInt(v + 1))],
                                    DORA_POLICY,
                                )?;
                                Ok(vec![])
                            }),
                        ],
                    );
                    if e.execute(flow).is_committed() {
                        done += 1;
                    }
                }
                done
            }));
        }
        let committed: i64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
        // Both keys were incremented once per committed transaction; the
        // database state must agree exactly with the commit count.
        assert_eq!(
            read_value(&db, t, 1) + read_value(&db, t, 15),
            committed * 2
        );
        assert!(committed > 0, "at least some transactions must get through");
    }

    #[test]
    fn access_trace_shows_thread_to_data_affinity() {
        let (db, t, routing) = setup(16, 4);
        let e = engine(db, routing, 4);
        e.trace().set_enabled(true);
        let pending: Vec<_> = (0..64).map(|i| e.submit(increment(t, i % 16))).collect();
        for p in pending {
            assert!(p.recv().unwrap().is_committed());
        }
        let events = e.trace().snapshot();
        assert_eq!(events.len(), 64);
        // Thread-to-data: a given key is only ever touched by one worker.
        use std::collections::HashMap;
        let mut owner: HashMap<i64, usize> = HashMap::new();
        for ev in &events {
            let prev = owner.insert(ev.key, ev.worker);
            if let Some(prev) = prev {
                assert_eq!(prev, ev.worker, "key {} touched by two workers", ev.key);
            }
        }
        e.shutdown();
    }

    #[test]
    fn secondary_actions_run_without_local_locks() {
        let (db, t, routing) = setup(16, 4);
        let e = engine(db.clone(), routing, 4);
        // A read-only probe not aligned with the routing field.
        let flow = FlowGraph::new(
            "ScanAll",
            vec![ActionSpec::secondary(t, move |db, txn, _| {
                let rows = db.primary_range(
                    txn,
                    t,
                    &[Value::BigInt(0)],
                    &[Value::BigInt(15)],
                    DORA_POLICY,
                )?;
                Ok(vec![Value::BigInt(rows.len() as i64)])
            })],
        );
        assert!(e.execute(flow).is_committed());
        assert_eq!(e.stats().secondary, 1);
        e.shutdown();
    }

    #[test]
    fn shutdown_finishes_in_flight_work_and_rejects_new() {
        let (db, t, routing) = setup(16, 4);
        let e = engine(db.clone(), routing, 4);
        let replies: Vec<_> = (0..20).map(|i| e.submit(increment(t, i % 16))).collect();
        e.shutdown();
        for r in replies {
            assert!(r.recv().unwrap().is_committed());
        }
        let total: i64 = (0..16).map(|i| read_value(&db, t, i)).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let (db, t, routing) = setup(4, 2);
        let e = engine(db.clone(), routing, 2);
        e.shutdown();
        // The engine object is consumed by shutdown; build a second engine,
        // flip it to non-accepting via its own shutdown path, and verify a
        // dropped engine rejects cleanly through `execute`'s fallback.
        let e2 = engine(db, RoutingTable::new(), 2);
        e2.inner.accepting.store(false, Ordering::Release);
        let outcome = e2.execute(increment(t, 0));
        assert!(
            matches!(outcome, TxnOutcome::Aborted { ref reason } if reason.contains("not accepting"))
        );
    }

    #[test]
    fn routing_updates_apply_to_new_transactions() {
        let (db, t, routing) = setup(16, 2);
        let e = engine(db, routing, 2);
        e.update_routing(|rt| {
            rt.rule_mut(t).unwrap().set_boundaries(vec![4]);
        });
        assert_eq!(e.routing().rule(t).unwrap().boundaries, vec![4]);
        assert!(e.execute(increment(t, 12)).is_committed());
        e.shutdown();
    }

    #[test]
    fn writer_is_not_starved_by_a_reader_stream() {
        let (db, t, routing) = setup(16, 4);
        let e = Arc::new(engine(db.clone(), routing, 4));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        // Two clients keep a continuous stream of read transactions on key
        // 1 flowing; without the FIFO fairness barrier the shared read
        // lock would never drain and the writer below would abort with a
        // spurious LockTimeout.
        let mut readers = Vec::new();
        for _ in 0..2 {
            let e = e.clone();
            let stop = stop.clone();
            readers.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let flow = FlowGraph::new(
                        "Read",
                        vec![ActionSpec::read(t, 1, move |db, txn, _| {
                            db.get(txn, t, &[Value::BigInt(1)], DORA_POLICY)?;
                            Ok(vec![])
                        })],
                    );
                    let _ = e.execute(flow);
                }
            }));
        }
        std::thread::sleep(Duration::from_millis(20));
        let started = Instant::now();
        let outcome = e.execute(increment(t, 1));
        let waited = started.elapsed();
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert!(outcome.is_committed(), "{outcome:?}");
        assert!(
            waited < Duration::from_millis(200),
            "writer should cut ahead of later readers, waited {waited:?}"
        );
        assert_eq!(read_value(&db, t, 1), 1);
    }

    #[test]
    fn routing_updates_quiesce_under_concurrent_load() {
        let (db, t, routing) = setup(16, 4);
        let e = Arc::new(engine(db.clone(), routing, 4));
        // Four clients hammer one key while the "load balancer" keeps
        // moving boundaries around. Quiescing must keep isolation intact
        // (the final value equals the number of committed increments) and
        // submissions racing a re-partition wait it out rather than abort.
        let mut clients = Vec::new();
        for _ in 0..4 {
            let e = e.clone();
            clients.push(std::thread::spawn(move || {
                let mut committed = 0i64;
                for _ in 0..25 {
                    if e.execute(increment(t, 7)).is_committed() {
                        committed += 1;
                    }
                }
                committed
            }));
        }
        let balancer = {
            let e = e.clone();
            std::thread::spawn(move || {
                for round in 0..10 {
                    e.update_routing(|rt| {
                        let boundary = 1 + (round % 14);
                        rt.rule_mut(t).unwrap().set_boundaries(vec![boundary]);
                    });
                    std::thread::yield_now();
                }
            })
        };
        let committed: i64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
        balancer.join().unwrap();
        assert_eq!(read_value(&db, t, 7), committed);
        assert!(committed > 0, "some increments must land between moves");
    }

    #[test]
    fn per_partition_stats_reflect_work() {
        let (db, t, routing) = setup(16, 4);
        let e = engine(db, routing, 4);
        for i in 0..16 {
            assert!(e.execute(increment(t, i)).is_committed());
        }
        let stats = e.stats();
        assert_eq!(stats.workers.len(), 4);
        assert_eq!(stats.workers.iter().map(|w| w.executed).sum::<u64>(), 16);
        // Uniform keys over a uniform rule: every partition did something.
        assert!(stats.workers.iter().all(|w| w.executed > 0));
        assert!(stats.workers.iter().all(|w| w.locks.acquired > 0));
        e.shutdown();
    }
}
