//! Logical partitioning: routing rules and the routing table.
//!
//! DORA decomposes the database into *logical* partitions enforced by a set
//! of routing rules, one per table. A routing rule names the routing field
//! and a sorted list of range boundaries; each resulting key range is owned
//! by exactly one worker thread (micro-engine). Partitions are purely
//! logical — nothing moves on disk when the boundaries change — so the load
//! balancer can re-partition cheaply at run time.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use dora_storage::types::TableId;

/// Identifier of a partition owner: the index of a worker thread.
pub type PartitionId = usize;

/// A routing rule for one table: routing field + range boundaries + owners.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingRule {
    /// Table the rule applies to.
    pub table: TableId,
    /// Column position of the routing field (must be an integer column).
    pub field: usize,
    /// Sorted, exclusive upper boundaries between ranges. With `n` workers
    /// there are `n - 1` boundaries; range `i` covers
    /// `[boundaries[i-1], boundaries[i])` (unbounded at the ends).
    pub boundaries: Vec<i64>,
    /// Owner worker of each range; `owners.len() == boundaries.len() + 1`.
    pub owners: Vec<PartitionId>,
}

impl RoutingRule {
    /// Builds a rule that splits `[key_min, key_max]` into `partitions`
    /// equal ranges assigned round-robin to `workers` worker threads.
    pub fn uniform(
        table: TableId,
        field: usize,
        key_min: i64,
        key_max: i64,
        partitions: usize,
        workers: usize,
    ) -> Self {
        assert!(partitions > 0 && workers > 0);
        assert!(key_max >= key_min);
        let span = (key_max - key_min + 1).max(1);
        let mut boundaries = Vec::with_capacity(partitions.saturating_sub(1));
        for i in 1..partitions {
            boundaries.push(key_min + (span * i as i64) / partitions as i64);
        }
        let owners = (0..partitions).map(|i| i % workers).collect();
        RoutingRule {
            table,
            field,
            boundaries,
            owners,
        }
    }

    /// Number of ranges.
    pub fn range_count(&self) -> usize {
        self.owners.len()
    }

    /// Index of the range covering `key`.
    pub fn range_of(&self, key: i64) -> usize {
        self.boundaries.partition_point(|&b| b <= key)
    }

    /// Worker that owns `key`.
    pub fn owner_of(&self, key: i64) -> PartitionId {
        self.owners[self.range_of(key)]
    }

    /// Replaces the boundaries, keeping the same owner list length by
    /// reassigning ranges round-robin over the previous set of distinct
    /// owners. Used by the load balancer when it recomputes an even split.
    pub fn set_boundaries(&mut self, boundaries: Vec<i64>) {
        assert!(
            boundaries.windows(2).all(|w| w[0] <= w[1]),
            "boundaries must be sorted"
        );
        let workers = self.distinct_owners();
        let nworkers = workers.len().max(1);
        self.owners = (0..boundaries.len() + 1)
            .map(|i| workers.get(i % nworkers).copied().unwrap_or(0))
            .collect();
        self.boundaries = boundaries;
    }

    /// The distinct workers that own at least one range, in first-seen order.
    pub fn distinct_owners(&self) -> Vec<PartitionId> {
        let mut seen = Vec::new();
        for &o in &self.owners {
            if !seen.contains(&o) {
                seen.push(o);
            }
        }
        seen
    }

    /// Splits range `idx` at `split_key`, assigning the new right half to
    /// `new_owner`. Used when a single range becomes a hot spot.
    pub fn split_range(&mut self, idx: usize, split_key: i64, new_owner: PartitionId) {
        assert!(idx < self.owners.len());
        self.boundaries.insert(idx, split_key);
        self.owners.insert(idx + 1, new_owner);
    }

    /// Merges range `idx` with the range to its right (they become one range
    /// owned by the owner of the left range). Used to coalesce idle ranges.
    pub fn merge_with_next(&mut self, idx: usize) {
        assert!(idx + 1 < self.owners.len(), "no next range to merge with");
        self.boundaries.remove(idx);
        self.owners.remove(idx + 1);
    }

    /// Reassigns every key in `[lo, hi)` to `new_owner`, inserting
    /// boundaries at `lo` and `hi` where the cut falls inside an existing
    /// range. Keys outside the interval keep their owner — this is the
    /// routing-swap half of a range migration.
    pub fn carve(&mut self, lo: i64, hi: i64, new_owner: PartitionId) {
        assert!(lo < hi, "carve needs a non-empty interval");
        let first = self.range_of(lo);
        let starts_at_lo = first > 0 && self.boundaries[first - 1] == lo;
        if !starts_at_lo {
            // Split so the interval's first range begins exactly at `lo`;
            // the left remainder keeps the old owner.
            self.split_range(first, lo, self.owners[first]);
        }
        let last = self.range_of(hi - 1);
        let ends_at_hi = self.boundaries.get(last) == Some(&hi);
        if !ends_at_hi {
            // Split so the interval's last range ends exactly at `hi`; the
            // right remainder keeps the old owner.
            self.split_range(last, hi, self.owners[last]);
        }
        for idx in self.range_of(lo)..=self.range_of(hi - 1) {
            self.owners[idx] = new_owner;
        }
    }

    /// Merges every run of adjacent ranges with the same owner into one
    /// range. Ownership of every key is unchanged, so — unlike a
    /// migration — this needs no handoff protocol. Returns the number of
    /// merges performed.
    pub fn coalesce(&mut self) -> usize {
        let mut merged = 0;
        let mut idx = 0;
        while idx + 1 < self.owners.len() {
            if self.owners[idx] == self.owners[idx + 1] {
                self.merge_with_next(idx);
                merged += 1;
            } else {
                idx += 1;
            }
        }
        merged
    }
}

/// The complete routing configuration: one rule per routed table.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingTable {
    rules: HashMap<TableId, RoutingRule>,
}

impl RoutingTable {
    /// Creates an empty routing table.
    pub fn new() -> Self {
        RoutingTable {
            rules: HashMap::new(),
        }
    }

    /// Adds or replaces the rule for a table.
    pub fn set_rule(&mut self, rule: RoutingRule) {
        self.rules.insert(rule.table, rule);
    }

    /// The rule for a table, if routed.
    pub fn rule(&self, table: TableId) -> Option<&RoutingRule> {
        self.rules.get(&table)
    }

    /// Mutable access to the rule for a table.
    pub fn rule_mut(&mut self, table: TableId) -> Option<&mut RoutingRule> {
        self.rules.get_mut(&table)
    }

    /// Worker owning `key` of `table`. Unrouted tables fall back to worker 0
    /// (they behave like a single-partition table).
    pub fn owner_of(&self, table: TableId, key: i64) -> PartitionId {
        self.rules.get(&table).map(|r| r.owner_of(key)).unwrap_or(0)
    }

    /// Whether routing the given column of the table would be
    /// partition-aligned (i.e. the column *is* the routing field).
    pub fn is_aligned(&self, table: TableId, column: usize) -> bool {
        self.rules
            .get(&table)
            .map(|r| r.field == column)
            .unwrap_or(false)
    }

    /// All routed tables.
    pub fn tables(&self) -> Vec<TableId> {
        let mut t: Vec<TableId> = self.rules.keys().copied().collect();
        t.sort_unstable();
        t
    }

    /// Number of routed tables.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no table is routed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_rule_covers_domain_evenly() {
        let r = RoutingRule::uniform(1, 0, 0, 99, 4, 4);
        assert_eq!(r.range_count(), 4);
        assert_eq!(r.boundaries, vec![25, 50, 75]);
        assert_eq!(r.owner_of(0), 0);
        assert_eq!(r.owner_of(24), 0);
        assert_eq!(r.owner_of(25), 1);
        assert_eq!(r.owner_of(60), 2);
        assert_eq!(r.owner_of(99), 3);
        // Keys outside the declared domain still route deterministically.
        assert_eq!(r.owner_of(-5), 0);
        assert_eq!(r.owner_of(1000), 3);
    }

    #[test]
    fn more_partitions_than_workers_round_robin() {
        let r = RoutingRule::uniform(1, 0, 0, 79, 8, 4);
        assert_eq!(r.range_count(), 8);
        assert_eq!(r.distinct_owners(), vec![0, 1, 2, 3]);
        assert_eq!(r.owner_of(0), 0);
        assert_eq!(r.owner_of(45), (45 / 10) % 4);
    }

    #[test]
    fn split_and_merge() {
        let mut r = RoutingRule::uniform(1, 0, 0, 99, 2, 2);
        assert_eq!(r.boundaries, vec![50]);
        // Worker 0's range [0, 50) is hot around 20: split it.
        r.split_range(0, 20, 1);
        assert_eq!(r.boundaries, vec![20, 50]);
        assert_eq!(r.owner_of(10), 0);
        assert_eq!(r.owner_of(30), 1);
        assert_eq!(r.owner_of(70), 1);
        // Merge the last two back.
        r.merge_with_next(1);
        assert_eq!(r.boundaries, vec![20]);
        assert_eq!(r.owner_of(70), 1);
    }

    #[test]
    fn carve_reassigns_exactly_the_interval() {
        let mut r = RoutingRule::uniform(1, 0, 0, 99, 4, 4);
        assert_eq!(r.boundaries, vec![25, 50, 75]);
        // Move [30, 40) — strictly inside worker 1's range — to worker 3.
        r.carve(30, 40, 3);
        assert_eq!(r.boundaries, vec![25, 30, 40, 50, 75]);
        for k in 0..100 {
            let expected = if (30..40).contains(&k) {
                3
            } else {
                // The pre-carve uniform assignment.
                RoutingRule::uniform(1, 0, 0, 99, 4, 4).owner_of(k)
            };
            assert_eq!(r.owner_of(k), expected, "key {k}");
        }
        // Carving along existing boundaries inserts nothing new.
        r.carve(50, 75, 0);
        assert_eq!(r.boundaries, vec![25, 30, 40, 50, 75]);
        assert_eq!(r.owner_of(60), 0);
        // Carving across several ranges rewrites all of them.
        r.carve(25, 75, 2);
        for k in 25..75 {
            assert_eq!(r.owner_of(k), 2);
        }
        assert_eq!(r.owner_of(10), 0);
        assert_eq!(r.owner_of(80), 3);
        // Unbounded edges: carve into the first and last ranges.
        r.carve(-100, 0, 1);
        assert_eq!(r.owner_of(-50), 1);
        assert_eq!(r.owner_of(-200), 0, "below the carve keeps old owner");
        r.carve(90, 200, 1);
        assert_eq!(r.owner_of(95), 1);
        assert_eq!(r.owner_of(300), 3, "above the carve keeps old owner");
    }

    #[test]
    fn coalesce_merges_same_owner_runs_without_moving_keys() {
        let mut r = RoutingRule::uniform(1, 0, 0, 99, 4, 4);
        r.carve(30, 40, 3);
        r.carve(25, 30, 3);
        r.carve(40, 50, 3);
        // Ranges now: [.,25)=0 [25,30)=3 [30,40)=3 [40,50)=3 [50,75)=2 [75,.)=3
        let before: Vec<(i64, PartitionId)> = (0..100).map(|k| (k, r.owner_of(k))).collect();
        let merged = r.coalesce();
        assert_eq!(merged, 2);
        assert_eq!(r.boundaries, vec![25, 50, 75]);
        for (k, owner) in before {
            assert_eq!(r.owner_of(k), owner, "coalesce moved key {k}");
        }
        assert_eq!(r.coalesce(), 0, "idempotent");
    }

    #[test]
    fn set_boundaries_reassigns_round_robin() {
        let mut r = RoutingRule::uniform(1, 0, 0, 99, 4, 4);
        r.set_boundaries(vec![10, 20, 30]);
        assert_eq!(r.range_count(), 4);
        assert_eq!(r.distinct_owners().len(), 4);
        assert_eq!(r.owner_of(5), 0);
        assert_eq!(r.owner_of(15), 1);
        assert_eq!(r.owner_of(25), 2);
        assert_eq!(r.owner_of(95), 3);
    }

    #[test]
    fn routing_table_lookup_and_alignment() {
        let mut rt = RoutingTable::new();
        rt.set_rule(RoutingRule::uniform(7, 0, 0, 999, 4, 4));
        rt.set_rule(RoutingRule::uniform(8, 2, 0, 999, 4, 4));
        assert_eq!(rt.len(), 2);
        assert!(!rt.is_empty());
        assert_eq!(rt.tables(), vec![7, 8]);
        assert_eq!(rt.owner_of(7, 600), 2);
        // Unrouted table routes to worker 0.
        assert_eq!(rt.owner_of(99, 600), 0);
        assert!(rt.is_aligned(7, 0));
        assert!(!rt.is_aligned(7, 1));
        assert!(rt.is_aligned(8, 2));
        assert!(!rt.is_aligned(99, 0));
        // Rules can be mutated in place.
        rt.rule_mut(7).unwrap().split_range(0, 100, 1);
        assert_eq!(rt.rule(7).unwrap().range_count(), 5);
    }

    #[test]
    fn uniform_owns_domain_edges() {
        // key_min and key_max always belong to the first and last range.
        for (min, max, parts) in [(0i64, 99i64, 4usize), (10, 20, 3), (-50, 49, 4), (5, 5, 1)] {
            let r = RoutingRule::uniform(1, 0, min, max, parts, parts);
            assert_eq!(r.range_of(min), 0, "key_min must open range 0");
            assert_eq!(
                r.range_of(max),
                parts - 1,
                "key_max ({max}) must close the last range of {parts}"
            );
            assert_eq!(r.owner_of(min), 0);
            assert_eq!(r.owner_of(max), parts - 1);
        }
    }

    #[test]
    fn uniform_boundaries_are_exclusive_upper_edges() {
        let r = RoutingRule::uniform(1, 0, 0, 99, 4, 4);
        for (i, &b) in r.boundaries.iter().enumerate() {
            // The boundary key itself belongs to the range on its right...
            assert_eq!(r.range_of(b), i + 1, "boundary {b} opens range {}", i + 1);
            // ...and the key just below it to the range on its left.
            assert_eq!(r.range_of(b - 1), i, "key {} closes range {i}", b - 1);
        }
    }

    #[test]
    fn uniform_non_divisible_spans_cover_every_key() {
        // 10 keys over 4 partitions: sizes 2/3/2/3 with the seed formula.
        let r = RoutingRule::uniform(1, 0, 0, 9, 4, 4);
        assert_eq!(r.boundaries, vec![2, 5, 7]);
        let sizes: Vec<i64> = {
            let mut edges = vec![0];
            edges.extend(&r.boundaries);
            edges.push(10);
            edges.windows(2).map(|w| w[1] - w[0]).collect()
        };
        assert_eq!(sizes.iter().sum::<i64>(), 10);
        assert!(sizes.iter().all(|&s| (2..=3).contains(&s)), "{sizes:?}");

        // A domain smaller than the partition count leaves empty ranges
        // but still assigns every key exactly once.
        let tiny = RoutingRule::uniform(1, 0, 0, 2, 4, 4);
        assert_eq!(tiny.range_count(), 4);
        for k in 0..3 {
            assert!(tiny.owner_of(k) < 4);
        }
    }

    #[test]
    fn uniform_negative_domains_split_evenly() {
        let r = RoutingRule::uniform(1, 0, -50, 49, 4, 4);
        assert_eq!(r.boundaries, vec![-25, 0, 25]);
        assert_eq!(r.owner_of(-50), 0);
        assert_eq!(r.owner_of(-26), 0);
        assert_eq!(r.owner_of(-25), 1);
        assert_eq!(r.owner_of(-1), 1);
        assert_eq!(r.owner_of(0), 2);
        assert_eq!(r.owner_of(49), 3);
    }

    #[test]
    fn uniform_single_partition_has_no_boundaries() {
        let r = RoutingRule::uniform(1, 0, 0, 1_000_000, 1, 8);
        assert!(r.boundaries.is_empty());
        assert_eq!(r.range_count(), 1);
        for k in [0, 500_000, 1_000_000, -3, 2_000_000] {
            assert_eq!(r.owner_of(k), 0);
        }
    }

    #[test]
    fn every_key_has_exactly_one_owner() {
        let r = RoutingRule::uniform(1, 0, 0, 9999, 7, 3);
        for key in (0..10_000).step_by(13) {
            let owner = r.owner_of(key);
            assert!(owner < 3);
            // Owner is stable.
            assert_eq!(owner, r.owner_of(key));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Routing is a total function: every key maps to exactly one range
        /// whose owner is a valid worker, and range boundaries are honored.
        #[test]
        fn routing_is_total_and_consistent(
            key in -10_000i64..10_000,
            partitions in 1usize..16,
            workers in 1usize..8,
        ) {
            let r = RoutingRule::uniform(1, 0, 0, 999, partitions, workers);
            let range = r.range_of(key);
            prop_assert!(range < r.range_count());
            prop_assert!(r.owner_of(key) < workers);
            if range > 0 {
                prop_assert!(key >= r.boundaries[range - 1]);
            }
            if range < r.boundaries.len() {
                prop_assert!(key < r.boundaries[range]);
            }
        }

        /// Splitting a range never changes the owner of keys outside it and
        /// keys inside it map to either the old or the new owner.
        #[test]
        fn split_preserves_other_ranges(split_key in 1i64..998) {
            let mut r = RoutingRule::uniform(1, 0, 0, 999, 4, 4);
            let idx = r.range_of(split_key);
            let old_owner = r.owners[idx];
            let mut expected: Vec<(i64, PartitionId)> = Vec::new();
            for k in (0..1000).step_by(37) {
                expected.push((k, r.owner_of(k)));
            }
            r.split_range(idx, split_key, 99);
            for (k, owner) in expected {
                let now = r.owner_of(k);
                let in_split_range = r.range_of(k) == idx + 1 || r.range_of(k) == idx;
                if in_split_range {
                    prop_assert!(now == owner || now == 99 || now == old_owner);
                } else {
                    prop_assert_eq!(now, owner);
                }
            }
        }
    }
}
