//! Actions, rendezvous points and transaction flow graphs.
//!
//! DORA breaks each transaction into **actions** — pieces of transaction
//! logic that each touch data of a single logical partition — separated by
//! **rendezvous points (RVPs)** wherever a data dependency forces
//! serialization. The resulting directed graph of actions and RVPs is the
//! transaction's **flow graph**. Actions of the same phase run in parallel
//! on their partitions' worker threads; the last action to report at an RVP
//! either enqueues the next phase or decides commit/abort.

use dora_storage::db::Database;
use dora_storage::error::{StorageError, StorageResult};
use dora_storage::trace::WorkerCtx;
use dora_storage::types::{TableId, TxnId, Value};

use crate::local_lock::LockClass;

/// The executable body of an action. It receives the shared database, the
/// storage transaction id (shared by all actions of the transaction) and the
/// executing worker's context, and returns the values it wants to hand to
/// the next phase through the RVP.
pub type ActionBody =
    Box<dyn FnOnce(&Database, TxnId, &WorkerCtx) -> StorageResult<Vec<Value>> + Send>;

/// A re-runnable action body. Secondary (non-aligned) actions use this
/// form: a validated read that hits an in-flight writer makes the executor
/// park the action and **run the body again** once the writer finishes, so
/// the logic must be a `Fn`, not a `FnOnce`.
pub type RetryableActionBody =
    Box<dyn Fn(&Database, TxnId, &WorkerCtx) -> StorageResult<Vec<Value>> + Send>;

/// How an action's logic may be invoked by the executor.
pub enum ActionLogic {
    /// Runs exactly once — the aligned-action form. Locks are held before
    /// the body starts, so it never needs to re-execute.
    Once(ActionBody),
    /// May run several times — the secondary form. The executor re-runs
    /// the body after a [`StorageError::ReadUncommitted`] conflict parked
    /// the action and the conflicting writer finished.
    Retryable(RetryableActionBody),
}

impl ActionLogic {
    /// Whether the executor may run this body more than once.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ActionLogic::Retryable(_))
    }

    /// Runs the body. A consumed `Once` body returns an internal error —
    /// the executor never re-runs one; the stub guards the invariant.
    pub fn run(&mut self, db: &Database, txn: TxnId, ctx: &WorkerCtx) -> StorageResult<Vec<Value>> {
        match self {
            ActionLogic::Once(body) => {
                let body = std::mem::replace(
                    body,
                    Box::new(|_, _, _| {
                        Err(StorageError::Internal(
                            "one-shot action body already consumed".into(),
                        ))
                    }),
                );
                body(db, txn, ctx)
            }
            ActionLogic::Retryable(body) => body(db, txn, ctx),
        }
    }
}

impl std::fmt::Debug for ActionLogic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ActionLogic::Once(_) => "Once",
            ActionLogic::Retryable(_) => "Retryable",
        })
    }
}

/// A phase generator: invoked by the last action of the previous phase (at
/// the RVP) with the outputs of that phase, it produces the actions of the
/// next phase. Returning an empty vector from the *last* generator ends
/// the transaction successfully; an empty phase while later generators are
/// still queued is a flow-graph bug and aborts the transaction (the
/// executor refuses to silently skip them).
pub type PhaseGen = Box<dyn FnOnce(&[Vec<Value>]) -> StorageResult<Vec<ActionSpec>> + Send>;

/// Specification of one action before it is enqueued.
pub struct ActionSpec {
    /// Table whose partition the action is routed to.
    pub table: TableId,
    /// Routing-key values the action touches, each with its access intent.
    /// The action is routed by the first key. All keys must belong to the
    /// same logical partition (the flow-graph builder is responsible for
    /// splitting work that spans partitions into separate actions).
    pub keys: Vec<(i64, LockClass)>,
    /// Whether the access is aligned with the table's routing field. A
    /// non-aligned ("secondary") action cannot be routed by key; it is sent
    /// to an arbitrary partition and reads through the storage layer's
    /// validated (versioned) API instead of local key locks. Only
    /// read-only logic may be non-aligned.
    pub aligned: bool,
    /// The action body.
    pub body: ActionLogic,
}

impl ActionSpec {
    /// A partition-aligned action reading a single routing key.
    pub fn read(
        table: TableId,
        key: i64,
        body: impl FnOnce(&Database, TxnId, &WorkerCtx) -> StorageResult<Vec<Value>> + Send + 'static,
    ) -> Self {
        ActionSpec {
            table,
            keys: vec![(key, LockClass::Read)],
            aligned: true,
            body: ActionLogic::Once(Box::new(body)),
        }
    }

    /// A partition-aligned action that may modify a single routing key.
    pub fn write(
        table: TableId,
        key: i64,
        body: impl FnOnce(&Database, TxnId, &WorkerCtx) -> StorageResult<Vec<Value>> + Send + 'static,
    ) -> Self {
        ActionSpec {
            table,
            keys: vec![(key, LockClass::Write)],
            aligned: true,
            body: ActionLogic::Once(Box::new(body)),
        }
    }

    /// A partition-aligned action over several routing keys of the same
    /// partition (e.g. a range of order lines of one order).
    ///
    /// Duplicate keys are normalized away, keeping the strongest access
    /// intent per key (`Write` dominates `Read`): the executor's local
    /// lock table and wait-list index both key on distinct `(table, key)`
    /// pairs, and duplicates would inflate their bookkeeping.
    pub fn multi(
        table: TableId,
        keys: Vec<(i64, LockClass)>,
        body: impl FnOnce(&Database, TxnId, &WorkerCtx) -> StorageResult<Vec<Value>> + Send + 'static,
    ) -> Self {
        let mut normalized: Vec<(i64, LockClass)> = Vec::with_capacity(keys.len());
        for (key, class) in keys {
            match normalized.iter_mut().find(|(k, _)| *k == key) {
                Some(entry) => {
                    if class == LockClass::Write {
                        entry.1 = LockClass::Write;
                    }
                }
                None => normalized.push((key, class)),
            }
        }
        ActionSpec {
            table,
            keys: normalized,
            aligned: true,
            body: ActionLogic::Once(Box::new(body)),
        }
    }

    /// A non-partition-aligned (secondary), read-only action: the table is
    /// being probed by a field other than its routing field, so the action
    /// cannot be routed to a key owner up front and runs on an arbitrary
    /// partition.
    ///
    /// **Isolation — the validated-read/park protocol.** The body must do
    /// its reads through the storage layer's versioned API
    /// ([`Database::read_validated`](dora_storage::db::Database::read_validated),
    /// `read_many_validated`, `scan_validated`, under
    /// `LockingPolicy::Bypass`): every record's seqlock-style version word
    /// and writer stamp are checked before and after decoding, so the body
    /// only ever observes a **consistent committed snapshot** — never a
    /// torn tuple or another transaction's uncommitted write. When a read
    /// hits an in-flight writer it returns
    /// [`StorageError::ReadUncommitted`] naming the conflicting record;
    /// the executor then, after the storage layer's bounded retry, parks
    /// the action on the **owning partition's** wait list under that
    /// record's routing key (a shared read intent) and re-runs the body
    /// when the writer's finish releases the key — which is why the body
    /// is a re-runnable [`RetryableActionBody`]. The engine's
    /// `secondary_retries` / `secondary_parked` counters expose the
    /// protocol's cost.
    pub fn secondary(
        table: TableId,
        body: impl Fn(&Database, TxnId, &WorkerCtx) -> StorageResult<Vec<Value>> + Send + 'static,
    ) -> Self {
        ActionSpec {
            table,
            keys: Vec::new(),
            aligned: false,
            body: ActionLogic::Retryable(Box::new(body)),
        }
    }

    /// Whether the action writes any key.
    pub fn is_write(&self) -> bool {
        self.keys.iter().any(|(_, c)| *c == LockClass::Write)
    }
}

impl std::fmt::Debug for ActionSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActionSpec")
            .field("table", &self.table)
            .field("keys", &self.keys)
            .field("aligned", &self.aligned)
            .finish()
    }
}

/// A transaction flow graph: the actions of the first phase plus a generator
/// per subsequent phase (each generator corresponds to one RVP).
pub struct FlowGraph {
    /// Transaction name (for statistics and the designer tools).
    pub name: &'static str,
    /// Actions of the first phase.
    pub first: Vec<ActionSpec>,
    /// Generators for subsequent phases, applied in order.
    pub next: Vec<PhaseGen>,
}

impl FlowGraph {
    /// Creates a flow graph with a single phase.
    pub fn new(name: &'static str, first: Vec<ActionSpec>) -> Self {
        FlowGraph {
            name,
            first,
            next: Vec::new(),
        }
    }

    /// Appends a phase separated from the previous one by an RVP. The
    /// generator receives the previous phase's outputs, one vector per
    /// action in action order: `outputs[i]` is what the phase's `i`-th
    /// `ActionSpec` returned, regardless of which partition finished
    /// first.
    pub fn then(
        mut self,
        gen: impl FnOnce(&[Vec<Value>]) -> StorageResult<Vec<ActionSpec>> + Send + 'static,
    ) -> Self {
        self.next.push(Box::new(gen));
        self
    }

    /// Number of phases (1 + number of RVP-separated follow-up phases).
    pub fn phase_count(&self) -> usize {
        1 + self.next.len()
    }

    /// Number of actions in the first phase.
    pub fn first_phase_len(&self) -> usize {
        self.first.len()
    }

    /// Number of rendezvous points in the graph. Every inter-phase boundary
    /// is an RVP, and the terminal commit/abort decision is one as well.
    pub fn rvp_count(&self) -> usize {
        self.next.len() + 1
    }
}

impl std::fmt::Debug for FlowGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowGraph")
            .field("name", &self.name)
            .field("first", &self.first)
            .field("later_phases", &self.next.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_constructors_set_intents() {
        let r = ActionSpec::read(1, 5, |_, _, _| Ok(vec![]));
        assert_eq!(r.keys, vec![(5, LockClass::Read)]);
        assert!(r.aligned);
        assert!(!r.is_write());

        let w = ActionSpec::write(1, 5, |_, _, _| Ok(vec![]));
        assert!(w.is_write());

        let m = ActionSpec::multi(
            2,
            vec![(1, LockClass::Read), (2, LockClass::Write)],
            |_, _, _| Ok(vec![]),
        );
        assert!(m.is_write());
        assert_eq!(m.keys.len(), 2);

        let s = ActionSpec::secondary(3, |_, _, _| Ok(vec![]));
        assert!(!s.aligned);
        assert!(s.keys.is_empty());
        assert!(!s.is_write());
        assert!(s.body.is_retryable(), "secondary bodies are re-runnable");
        assert!(!r.body.is_retryable(), "aligned bodies run exactly once");
    }

    #[test]
    fn retryable_logic_reruns_and_consumed_once_logic_errors() {
        let db = Database::default();
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let c = counter.clone();
        let mut retryable = ActionLogic::Retryable(Box::new(move |_, _, _| {
            c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Ok(vec![])
        }));
        let trace = std::sync::Arc::new(dora_storage::trace::AccessTrace::new());
        let ctx = WorkerCtx::new(0, trace);
        assert!(retryable.run(&db, 1, &ctx).is_ok());
        assert!(retryable.run(&db, 1, &ctx).is_ok());
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 2);
        assert_eq!(format!("{retryable:?}"), "Retryable");

        let mut once = ActionLogic::Once(Box::new(|_, _, _| Ok(vec![])));
        assert_eq!(format!("{once:?}"), "Once");
        assert!(once.run(&db, 1, &ctx).is_ok());
        assert!(
            matches!(once.run(&db, 1, &ctx), Err(StorageError::Internal(_))),
            "a consumed one-shot body must fail loudly, not re-run"
        );
    }

    #[test]
    fn multi_normalizes_duplicate_keys_to_strongest_intent() {
        let m = ActionSpec::multi(
            2,
            vec![
                (1, LockClass::Read),
                (2, LockClass::Read),
                (1, LockClass::Write),
                (2, LockClass::Read),
            ],
            |_, _, _| Ok(vec![]),
        );
        assert_eq!(m.keys, vec![(1, LockClass::Write), (2, LockClass::Read)]);
        // Write is never weakened by a later Read on the same key.
        let m = ActionSpec::multi(
            2,
            vec![(5, LockClass::Write), (5, LockClass::Read)],
            |_, _, _| Ok(vec![]),
        );
        assert_eq!(m.keys, vec![(5, LockClass::Write)]);
    }

    #[test]
    fn flow_graph_phases_and_rvps() {
        let g = FlowGraph::new(
            "two-phase",
            vec![ActionSpec::read(1, 1, |_, _, _| Ok(vec![Value::Int(7)]))],
        )
        .then(|outputs| {
            assert_eq!(outputs.len(), 1);
            Ok(vec![ActionSpec::write(2, 9, |_, _, _| Ok(vec![]))])
        });
        assert_eq!(g.phase_count(), 2);
        assert_eq!(g.rvp_count(), 2);
        assert_eq!(g.first_phase_len(), 1);
        assert_eq!(g.name, "two-phase");
        let single = FlowGraph::new("single", vec![]);
        assert_eq!(single.phase_count(), 1);
        assert_eq!(single.rvp_count(), 1);
    }

    #[test]
    fn debug_output_is_informative() {
        let g = FlowGraph::new("t", vec![ActionSpec::read(4, 2, |_, _, _| Ok(vec![]))]);
        let s = format!("{g:?}");
        assert!(s.contains("\"t\""));
        assert!(s.contains("table: 4"));
    }
}
