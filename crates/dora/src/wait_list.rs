//! Lock-keyed wait lists for deferred actions.
//!
//! The original executor parked lock-blocked actions in a FIFO `VecDeque`
//! and **rescanned the whole list** after every worker message — O(deferred)
//! lock probes per event, the exact per-transaction overhead DORA exists to
//! remove. The [`WaitList`] replaces that: parked actions are indexed by
//! the `(table, key)` pairs they wait on, so a lock release wakes **only**
//! the actions parked on the released keys, and everything else is never
//! re-examined (the executor's `rescans_avoided` counter measures this).
//!
//! Fairness is preserved across the rewrite. Every parked action keeps a
//! monotonically increasing sequence number; a woken action may only run
//! if no *earlier-parked* conflicting action of another transaction is
//! still waiting on one of its keys ([`WaitList::conflicts_with_earlier`]).
//! Keys the action's transaction already holds in any mode are exempt —
//! a parked stranger wanting such a key cannot be granted until this
//! transaction finishes, so queueing behind it would deadlock (this covers
//! re-acquisition and the sole-reader write upgrade).
//!
//! Lock-timeout expiry no longer rides on a poll loop either: the wait
//! list tracks the earliest parked deadline in a lazy min-heap, and the
//! worker sleeps exactly until a message arrives or that deadline passes
//! ([`WaitList::next_deadline`] / [`WaitList::expired`]).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};
use std::time::{Duration, Instant};

use dora_storage::types::TableId;

use crate::dispatcher::ActionEnvelope;
use crate::local_lock::LocalLockTable;

/// Sequence number used for the fairness probe of an action that has not
/// been parked yet: every already-parked action counts as "earlier".
pub(crate) const FRESH_SEQ: u64 = u64::MAX;

/// A single worker's parked actions, indexed by the lock keys they wait
/// on. Like the [`LocalLockTable`], it is owned by exactly one worker
/// thread and needs no synchronization.
#[derive(Default)]
pub(crate) struct WaitList {
    /// Parked actions in park order (the BTreeMap keeps sequence order for
    /// fair candidate iteration).
    parked: BTreeMap<u64, ActionEnvelope>,
    /// `(table, key)` → sequence numbers of parked actions touching it.
    by_key: HashMap<(TableId, i64), Vec<u64>>,
    /// Lazy min-heap of `(dispatch instant, seq)`; entries whose seq is no
    /// longer parked are skipped on pop. Re-parking pushes a duplicate,
    /// which is harmless (same deadline, first pop wins).
    deadlines: BinaryHeap<Reverse<(Instant, u64)>>,
    next_seq: u64,
}

impl WaitList {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.parked.len()
    }

    pub fn is_empty(&self) -> bool {
        self.parked.is_empty()
    }

    /// Parks an action under a fresh sequence number.
    pub fn park(&mut self, envelope: ActionEnvelope) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.index(seq, &envelope);
        self.deadlines.push(Reverse((envelope.dispatched, seq)));
        self.parked.insert(seq, envelope);
        seq
    }

    /// Re-parks a woken action under its **original** sequence number so
    /// it keeps its place in the fairness order.
    pub fn park_at(&mut self, seq: u64, envelope: ActionEnvelope) {
        self.index(seq, &envelope);
        self.deadlines.push(Reverse((envelope.dispatched, seq)));
        self.parked.insert(seq, envelope);
    }

    fn index(&mut self, seq: u64, envelope: &ActionEnvelope) {
        for &(key, _) in &envelope.keys {
            self.by_key
                .entry((envelope.table, key))
                .or_default()
                .push(seq);
        }
    }

    fn unindex(&mut self, seq: u64, envelope: &ActionEnvelope) {
        for &(key, _) in &envelope.keys {
            if let Some(seqs) = self.by_key.get_mut(&(envelope.table, key)) {
                seqs.retain(|&s| s != seq);
                if seqs.is_empty() {
                    self.by_key.remove(&(envelope.table, key));
                }
            }
        }
    }

    /// Removes and returns, in park order, every action parked on at least
    /// one of `keys`. Actions parked on other keys are not touched — that
    /// is the whole point of the structure.
    pub fn candidates(&mut self, keys: &[(TableId, i64)]) -> Vec<(u64, ActionEnvelope)> {
        let mut seqs = BTreeSet::new();
        for key in keys {
            if let Some(list) = self.by_key.get(key) {
                seqs.extend(list.iter().copied());
            }
        }
        seqs.into_iter()
            .filter_map(|seq| {
                let envelope = self.parked.remove(&seq)?;
                self.unindex(seq, &envelope);
                Some((seq, envelope))
            })
            .collect()
    }

    /// The executor's fairness barrier: whether `envelope` (probing at
    /// position `seq`; use [`FRESH_SEQ`] for a not-yet-parked action) must
    /// wait behind an earlier-parked conflicting action of another
    /// transaction. Keys the envelope's transaction already holds in any
    /// mode are exempt (see the module docs).
    pub fn conflicts_with_earlier(
        &self,
        seq: u64,
        envelope: &ActionEnvelope,
        locks: &LocalLockTable,
    ) -> bool {
        // The overwhelmingly common case on an uncontended partition:
        // nothing parked, nothing to conflict with, no index probes.
        if self.parked.is_empty() {
            return false;
        }
        let txn = envelope.txn.txn;
        envelope.keys.iter().any(|&(key, class)| {
            !locks.holds_any(txn, envelope.table, key)
                && self.by_key.get(&(envelope.table, key)).is_some_and(|seqs| {
                    seqs.iter().any(|&earlier| {
                        earlier < seq
                            && self.parked.get(&earlier).is_some_and(|parked| {
                                parked.txn.txn != txn
                                    && parked.keys.iter().any(|&(parked_key, parked_class)| {
                                        parked_key == key && class.conflicts(parked_class)
                                    })
                            })
                    })
                })
        })
    }

    /// The instant the earliest-dispatched parked action hits the lock
    /// timeout — how long the owning worker may sleep without missing an
    /// expiry. `None` when nothing is parked.
    pub fn next_deadline(&mut self, timeout: Duration) -> Option<Instant> {
        while let Some(&Reverse((dispatched, seq))) = self.deadlines.peek() {
            if self.parked.contains_key(&seq) {
                return Some(dispatched + timeout);
            }
            self.deadlines.pop();
        }
        None
    }

    /// Whether the earliest parked deadline has already passed — the cheap
    /// per-iteration probe deciding if an expiry sweep is due.
    pub fn deadline_passed(&mut self, timeout: Duration, now: Instant) -> bool {
        self.next_deadline(timeout).is_some_and(|d| d <= now)
    }

    /// Removes and returns every parked action whose deferral outlived
    /// `timeout`, in park order.
    pub fn expired(&mut self, timeout: Duration, now: Instant) -> Vec<(u64, ActionEnvelope)> {
        let mut out = Vec::new();
        while let Some(&Reverse((dispatched, seq))) = self.deadlines.peek() {
            if dispatched + timeout > now {
                break;
            }
            self.deadlines.pop();
            if let Some(envelope) = self.parked.remove(&seq) {
                self.unindex(seq, &envelope);
                out.push((seq, envelope));
            }
        }
        out
    }

    /// Removes and returns, in park order, every action belonging to
    /// `txn` — the doomed-transaction probe. A linear scan, but it only
    /// runs on the rare phase-failure path and parked lists are small.
    pub fn take_txn(&mut self, txn: dora_storage::types::TxnId) -> Vec<(u64, ActionEnvelope)> {
        let seqs: Vec<u64> = self
            .parked
            .iter()
            .filter(|(_, env)| env.txn.txn == txn)
            .map(|(&seq, _)| seq)
            .collect();
        seqs.into_iter()
            .filter_map(|seq| {
                let envelope = self.parked.remove(&seq)?;
                self.unindex(seq, &envelope);
                Some((seq, envelope))
            })
            .collect()
    }

    /// Removes and returns, in park order, every action parked with at
    /// least one key of `table` in `[lo, hi)` — the source half of a range
    /// migration's seal token. The caller transfers the returned actions
    /// to the destination partition (or aborts the rare multi-key action
    /// straddling the cut); their conflict peers' lock state travels in
    /// the same token, so relative order is preserved at the new owner.
    pub fn take_range(&mut self, table: TableId, lo: i64, hi: i64) -> Vec<ActionEnvelope> {
        let seqs: Vec<u64> = self
            .parked
            .iter()
            .filter(|(_, env)| {
                env.table == table && env.keys.iter().any(|&(key, _)| key >= lo && key < hi)
            })
            .map(|(&seq, _)| seq)
            .collect();
        seqs.into_iter()
            .filter_map(|seq| {
                let envelope = self.parked.remove(&seq)?;
                self.unindex(seq, &envelope);
                Some(envelope)
            })
            .collect()
    }

    /// Removes and returns everything. Two callers: engine shutdown
    /// (aborting what is still parked), and the supervisor's worker
    /// recovery — a dead worker's parked actions cannot survive into the
    /// replacement (the locks they waited on belong to doomed holders),
    /// so the supervisor drains them and completes each with a retryable
    /// `WorkerUnavailable` abort.
    pub fn drain(&mut self) -> Vec<ActionEnvelope> {
        self.by_key.clear();
        self.deadlines.clear();
        std::mem::take(&mut self.parked).into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatcher::{Rvp, TxnCtx};
    use crate::local_lock::LockClass;
    use std::sync::Arc;

    fn envelope(txn: u64, table: TableId, keys: Vec<(i64, LockClass)>) -> ActionEnvelope {
        // The receiver is dropped, but nothing in these tests reports.
        let (reply, _rx) = crate::oneshot::channel();
        ActionEnvelope {
            slot: 0,
            table,
            keys,
            body: crate::action::ActionLogic::Once(Box::new(|_, _, _| Ok(vec![]))),
            txn: Arc::new(TxnCtx::new(txn, "wait-list-test", Vec::new(), reply)),
            rvp: Arc::new(Rvp::new(1)),
            dispatched: Instant::now(),
        }
    }

    #[test]
    fn candidates_wake_only_matching_keys_in_park_order() {
        let mut wl = WaitList::new();
        let a = wl.park(envelope(1, 7, vec![(10, LockClass::Write)]));
        let b = wl.park(envelope(2, 7, vec![(11, LockClass::Write)]));
        let c = wl.park(envelope(3, 7, vec![(10, LockClass::Read)]));
        assert_eq!(wl.len(), 3);

        let woken = wl.candidates(&[(7, 10)]);
        let seqs: Vec<u64> = woken.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![a, c], "only key-10 waiters, in park order");
        assert_eq!(wl.len(), 1, "key-11 waiter untouched");

        // Unknown keys and a different table wake nothing.
        assert!(wl.candidates(&[(7, 99), (8, 11)]).is_empty());
        let woken = wl.candidates(&[(7, 11)]);
        assert_eq!(woken.len(), 1);
        assert_eq!(woken[0].0, b);
        assert!(wl.is_empty());
    }

    #[test]
    fn fairness_barrier_orders_by_sequence_and_exempts_own_locks() {
        let mut locks = LocalLockTable::new();
        let mut wl = WaitList::new();
        let writer = envelope(1, 7, vec![(10, LockClass::Write)]);
        let writer_seq = wl.park(writer);

        // A fresh reader on the same key conflicts with the parked writer.
        let reader = envelope(2, 7, vec![(10, LockClass::Read)]);
        assert!(wl.conflicts_with_earlier(FRESH_SEQ, &reader, &locks));
        // A fresh reader on another key does not.
        let other = envelope(2, 7, vec![(11, LockClass::Read)]);
        assert!(!wl.conflicts_with_earlier(FRESH_SEQ, &other, &locks));
        // The parked writer itself probes at its own seq: nothing earlier.
        let probe = envelope(1, 7, vec![(10, LockClass::Write)]);
        assert!(!wl.conflicts_with_earlier(writer_seq, &probe, &locks));
        // A transaction that already holds the key in any mode is exempt
        // (upgrade / re-acquire must not queue behind strangers).
        assert!(locks.try_acquire(2, &[(7, 10, LockClass::Read)]));
        let upgrade = envelope(2, 7, vec![(10, LockClass::Write)]);
        assert!(!wl.conflicts_with_earlier(FRESH_SEQ, &upgrade, &locks));
    }

    #[test]
    fn deadlines_expire_in_dispatch_order_and_tolerate_reparking() {
        let mut wl = WaitList::new();
        let timeout = Duration::from_millis(50);
        let a = wl.park(envelope(1, 7, vec![(10, LockClass::Write)]));
        std::thread::sleep(Duration::from_millis(2));
        let _b = wl.park(envelope(2, 7, vec![(11, LockClass::Write)]));
        let now = Instant::now();
        assert!(!wl.deadline_passed(timeout, now));
        assert!(wl.expired(timeout, now).is_empty());

        // Wake the first action and re-park it: the duplicate heap entry
        // must not confuse expiry.
        let woken = wl.candidates(&[(7, 10)]);
        assert_eq!(woken.len(), 1);
        let (seq, env) = woken.into_iter().next().unwrap();
        assert_eq!(seq, a);
        wl.park_at(seq, env);

        let late = now + Duration::from_millis(100);
        assert!(wl.deadline_passed(timeout, late));
        let expired = wl.expired(timeout, late);
        let seqs: Vec<u64> = expired.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs.len(), 2, "both outlived the timeout");
        assert_eq!(seqs[0], a, "earliest dispatch expires first");
        assert!(wl.is_empty());
        assert!(wl.next_deadline(timeout).is_none());
    }

    #[test]
    fn take_txn_removes_only_that_transactions_actions() {
        let mut wl = WaitList::new();
        let a = wl.park(envelope(1, 7, vec![(10, LockClass::Write)]));
        let _b = wl.park(envelope(2, 7, vec![(10, LockClass::Read)]));
        let c = wl.park(envelope(1, 7, vec![(11, LockClass::Write)]));
        let taken = wl.take_txn(1);
        let seqs: Vec<u64> = taken.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![a, c], "both of txn 1's actions, park order");
        assert_eq!(wl.len(), 1, "txn 2's action stays");
        assert!(wl.take_txn(1).is_empty());
        // The index was cleaned: only txn 2's key-10 entry can wake.
        assert_eq!(wl.candidates(&[(7, 10), (7, 11)]).len(), 1);
    }

    #[test]
    fn take_range_extracts_only_matching_parked_actions_in_order() {
        let mut wl = WaitList::new();
        wl.park(envelope(1, 7, vec![(10, LockClass::Write)]));
        wl.park(envelope(2, 7, vec![(50, LockClass::Write)]));
        wl.park(envelope(3, 7, vec![(11, LockClass::Read)]));
        wl.park(envelope(4, 8, vec![(10, LockClass::Write)]));
        // A multi-key action with one foot in the range is taken too —
        // the executor decides whether it can move or must abort.
        wl.park(envelope(
            5,
            7,
            vec![(12, LockClass::Write), (80, LockClass::Write)],
        ));

        let taken = wl.take_range(7, 10, 20);
        let txns: Vec<u64> = taken.iter().map(|e| e.txn.txn).collect();
        assert_eq!(txns, vec![1, 3, 5], "range waiters only, park order");
        assert_eq!(wl.len(), 2, "key 50 and table 8 stay parked");
        // Indexes were cleaned: waking the taken keys finds nothing, the
        // untouched keys still wake, including the straddler's other key.
        assert!(wl
            .candidates(&[(7, 10), (7, 11), (7, 12), (7, 80)])
            .is_empty());
        assert_eq!(wl.candidates(&[(7, 50), (8, 10)]).len(), 2);
        assert!(wl.take_range(7, 0, 100).is_empty());
    }

    #[test]
    fn drain_empties_everything() {
        let mut wl = WaitList::new();
        wl.park(envelope(1, 7, vec![(10, LockClass::Write)]));
        wl.park(envelope(2, 7, vec![(11, LockClass::Write)]));
        assert_eq!(wl.drain().len(), 2);
        assert!(wl.is_empty());
        assert!(wl.candidates(&[(7, 10)]).is_empty());
        assert!(wl.next_deadline(Duration::from_millis(1)).is_none());
    }
}
