//! One-shot outcome delivery: the reply half of
//! [`DoraEngine::submit`](crate::executor::DoraEngine::submit).
//!
//! Every submitted transaction needs exactly one value delivered exactly
//! once to exactly one waiter. The general-purpose MPMC channel shim used
//! for that previously allocates a queue, tracks sender/receiver counts,
//! and signals two condvars per hand-off — all capability the reply path
//! cannot use. This purpose-built one-shot cell is a single allocation
//! (one mutex-guarded slot plus one condvar) and is measurably cheaper on
//! the per-transaction hot path.
//!
//! Semantics mirror the channel subset the engine and its callers rely
//! on: a dropped-without-send sender wakes the receiver with a
//! disconnect error (an engine that dies mid-transaction must not strand
//! its client), a second send is rejected, and receiving is
//! level-triggered (a value sent before `recv` is simply taken).

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// Slot contents over the cell's lifetime.
enum State<T> {
    /// Nothing delivered yet; the sender is still alive.
    Pending,
    /// A value is waiting to be taken.
    Ready(T),
    /// The sender dropped without sending (or the value was already
    /// taken) — nothing will ever arrive.
    Disconnected,
}

struct Cell<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

/// Creates a connected one-shot sender/receiver pair.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let cell = Arc::new(Cell {
        state: Mutex::new(State::Pending),
        ready: Condvar::new(),
    });
    (Sender { cell: cell.clone() }, Receiver { cell })
}

/// The sending half: delivers at most one value.
pub struct Sender<T> {
    cell: Arc<Cell<T>>,
}

impl<T> Sender<T> {
    /// Delivers the value and wakes the receiver. Fails (returning the
    /// value) if something was already sent.
    pub fn send(&self, value: T) -> Result<(), T> {
        let mut state = self.cell.state.lock();
        match *state {
            State::Pending => {
                *state = State::Ready(value);
                drop(state);
                self.cell.ready.notify_all();
                Ok(())
            }
            _ => Err(value),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.cell.state.lock();
        if matches!(*state, State::Pending) {
            // Dropped without sending: wake the receiver with a
            // disconnect instead of stranding it.
            *state = State::Disconnected;
            drop(state);
            self.cell.ready.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("oneshot::Sender { .. }")
    }
}

/// Error returned by [`Receiver::recv`]: the sender dropped without
/// sending (or the value was already taken).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("one-shot sender dropped without delivering")
    }
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with nothing delivered.
    Timeout,
    /// The sender dropped without sending (or the value was taken).
    Disconnected,
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing delivered yet (the sender is still alive).
    Empty,
    /// The sender dropped without sending (or the value was taken).
    Disconnected,
}

/// The receiving half: yields the value once.
pub struct Receiver<T> {
    cell: Arc<Cell<T>>,
}

impl<T> Receiver<T> {
    /// Blocks until the value arrives (or the sender disappears).
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.cell.state.lock();
        loop {
            match std::mem::replace(&mut *state, State::Disconnected) {
                State::Ready(value) => return Ok(value),
                State::Disconnected => return Err(RecvError),
                State::Pending => {
                    *state = State::Pending;
                    self.cell.ready.wait(&mut state);
                }
            }
        }
    }

    /// Blocks until the value arrives, the sender disappears, or
    /// `timeout` elapses.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.cell.state.lock();
        loop {
            match std::mem::replace(&mut *state, State::Disconnected) {
                State::Ready(value) => return Ok(value),
                State::Disconnected => return Err(RecvTimeoutError::Disconnected),
                State::Pending => {
                    *state = State::Pending;
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(RecvTimeoutError::Timeout);
                    }
                    self.cell.ready.wait_for(&mut state, deadline - now);
                }
            }
        }
    }

    /// Takes the value if it has already arrived.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.cell.state.lock();
        match std::mem::replace(&mut *state, State::Disconnected) {
            State::Ready(value) => Ok(value),
            State::Disconnected => Err(TryRecvError::Disconnected),
            State::Pending => {
                *state = State::Pending;
                Err(TryRecvError::Empty)
            }
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("oneshot::Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_once_and_only_once() {
        let (tx, rx) = channel();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(7).unwrap();
        assert_eq!(tx.send(8), Err(8), "second send is rejected");
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn dropped_sender_wakes_a_blocked_receiver() {
        let (tx, rx) = channel::<u32>();
        let waiter = std::thread::spawn(move || rx.recv());
        std::thread::sleep(Duration::from_millis(10));
        drop(tx);
        assert_eq!(waiter.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_times_out_then_succeeds() {
        let (tx, rx) = channel();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(3).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(3));
    }

    #[test]
    fn cross_thread_handoff() {
        let (tx, rx) = channel();
        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            tx.send(42).unwrap();
        });
        assert_eq!(rx.recv(), Ok(42));
        sender.join().unwrap();
    }
}
