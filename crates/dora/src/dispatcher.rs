//! Routing of decomposed transactions to partition queues and rendezvous
//! point (RVP) bookkeeping.
//!
//! The dispatcher is the piece between a submitted
//! [`FlowGraph`](crate::action::FlowGraph) and the partition worker
//! threads of the [`executor`](crate::executor): it assigns every
//! [`ActionSpec`] of a phase to the worker that
//! owns the data the action touches (per the
//! [`RoutingTable`]), and it manufactures
//! the [`Rvp`] the actions of the phase will report to. The *last* action
//! to report at an RVP executes the rendezvous logic on its own worker
//! thread: enqueue the next phase, or decide commit/abort.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use dora_storage::error::{StorageError, StorageResult};
use dora_storage::types::{TableId, TxnId, Value};

use crate::action::{ActionLogic, ActionSpec, PhaseGen};
use crate::executor::TxnOutcome;
use crate::local_lock::{LockClass, MovedLock};
use crate::oneshot;
use crate::routing::{PartitionId, RoutingTable};

/// Identity and rendezvous state of one in-flight range migration. The
/// coordinating thread (`DoraEngine::migrate_range`) holds the receiver
/// halves; the ticket travels to the destination (inside
/// [`WorkerMsg::RangeBegin`]) and the source (inside
/// [`WorkerMsg::RangeDrain`]) so both workers can identify the migration
/// and signal progress. Dropping the ticket without signalling (engine
/// shutdown discards worker queues) unblocks the coordinator with an
/// error instead of hanging it.
pub struct MigrationTicket {
    /// Table whose range is moving.
    pub table: TableId,
    /// Inclusive lower bound of the moving key range.
    pub lo: i64,
    /// Exclusive upper bound of the moving key range.
    pub hi: i64,
    /// Worker the range moves away from.
    pub src: usize,
    /// Worker the range moves to.
    pub dst: usize,
    /// Signalled by the destination once its range barrier is installed;
    /// only then may the coordinator publish the new routing (otherwise a
    /// newly-routed action could execute at the destination ahead of the
    /// barrier and jump the drain queue).
    pub installed: oneshot::Sender<()>,
    /// Signalled by the destination once the seal token has been absorbed
    /// and the barrier released — the migration is complete.
    pub done: oneshot::Sender<SealStats>,
}

/// What a completed migration moved, reported through
/// [`MigrationTicket::done`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SealStats {
    /// Lock-table entries transferred with the seal token.
    pub moved_locks: usize,
    /// Parked actions transferred with the seal token.
    pub moved_parked: usize,
    /// Parked multi-key actions that straddled the range cut and were
    /// aborted (retryably) instead of transferred.
    pub aborted_straddlers: usize,
    /// Actions the barrier held at the destination until the seal.
    pub barrier_held: usize,
}

/// A message consumed by a partition worker thread.
pub enum WorkerMsg {
    /// Execute one action of some transaction.
    Action(ActionEnvelope),
    /// A transaction finished system-wide. One message per involved
    /// partition per transaction, carrying **every key the transaction
    /// touched there** (batched across all its actions and phases): the
    /// receiving worker releases exactly those keys and wakes only the
    /// actions parked on them — no lock-table scan, no deferral-list
    /// rescan.
    Finish {
        /// The finished transaction.
        txn: TxnId,
        /// Keys the transaction touched on the receiving partition.
        keys: Vec<(TableId, i64)>,
    },
    /// A phase of the transaction failed while siblings are still out:
    /// re-examine any of its actions parked here so doomed work aborts
    /// now instead of waiting out a lock timeout. Releases nothing — the
    /// transaction is not finished yet.
    Probe {
        /// The transaction whose phase failed.
        txn: TxnId,
    },
    /// Kill token ([`crate::executor::DoraEngine::kill_worker`] and the
    /// chaos injector): the receiving worker panics at its next dequeue
    /// point, exactly as if a stray panic escaped the user-body guard, and
    /// the supervisor recovers the partition. Intake only sets a flag —
    /// a worker must never unwind inside a mailbox drain callback, or the
    /// rest of the drained batch would be lost with it.
    Die,
    /// Several messages for the same partition coalesced into one mailbox
    /// push: a worker's drain batch can produce multiple sends to one
    /// target (next-phase actions plus finishes), and its outbox folds
    /// them into a single priority-lane reservation. Never nested.
    Batch(Vec<WorkerMsg>),
    /// First leg of a range migration, sent to the **destination** worker:
    /// install a barrier that holds fresh arrivals for the moving range
    /// until the seal token lands, then ack on
    /// [`MigrationTicket::installed`].
    RangeBegin {
        /// The migration this barrier belongs to.
        ticket: Arc<MigrationTicket>,
    },
    /// Second leg, sent to the **source** worker after the routing swap:
    /// extract the moving range's lock-table entries and parked actions
    /// and forward them to the destination as a [`WorkerMsg::RangeSealed`]
    /// token.
    RangeDrain {
        /// The migration being drained.
        ticket: Arc<MigrationTicket>,
    },
    /// The seal token, sent source → destination: carries the moving
    /// range's lock state and parked actions. The destination absorbs
    /// both, releases the range barrier (running held actions in arrival
    /// order), and acks on [`MigrationTicket::done`].
    RangeSealed {
        /// The migration being sealed.
        ticket: Arc<MigrationTicket>,
        /// Lock-table entries extracted at the source.
        locks: Vec<MovedLock>,
        /// Actions that were parked on the moving range at the source, in
        /// park order.
        parked: Vec<ActionEnvelope>,
        /// Straddling multi-key parked actions the source aborted.
        aborted_straddlers: usize,
    },
}

/// Per-partition involvement of a transaction: each involved partition
/// with the routing keys the transaction touched there.
pub type InvolvedKeys = Vec<(PartitionId, Vec<(TableId, i64)>)>;

/// Shared, per-transaction execution state.
pub struct TxnCtx {
    /// Storage transaction id shared by every action of the transaction.
    pub txn: TxnId,
    /// Transaction name (for statistics).
    pub name: &'static str,
    /// Generators of the phases that have not been dispatched yet; the RVP
    /// terminal pops from the front.
    pub phases: Mutex<VecDeque<PhaseGen>>,
    /// Partitions that have executed (or will execute) actions of this
    /// transaction, each with the routing keys the transaction touched
    /// there (accumulated across phases, deduplicated). The finish
    /// broadcast sends each partition its own key set so release and
    /// wakeup are targeted.
    pub involved: Mutex<InvolvedKeys>,
    /// One-shot cell the final [`TxnOutcome`] is delivered on.
    pub reply: oneshot::Sender<TxnOutcome>,
    /// Set by the supervisor when a partition worker holding state of
    /// this transaction died: the transaction must abort (retryably)
    /// instead of executing further actions, because the dead worker's
    /// volatile lock/wait state can no longer vouch for its isolation.
    doomed: AtomicBool,
    /// Claimed (exactly once) by whichever thread finalizes the
    /// transaction — the RVP terminal on the normal path, or the
    /// supervisor when it reaps a transaction stranded by a worker
    /// crash. Protects against a double commit/abort/reply.
    finalized: AtomicBool,
}

impl TxnCtx {
    /// Creates the context for a freshly begun transaction.
    pub fn new(
        txn: TxnId,
        name: &'static str,
        phases: Vec<PhaseGen>,
        reply: oneshot::Sender<TxnOutcome>,
    ) -> Self {
        TxnCtx {
            txn,
            name,
            phases: Mutex::new(phases.into()),
            involved: Mutex::new(Vec::new()),
            reply,
            doomed: AtomicBool::new(false),
            finalized: AtomicBool::new(false),
        }
    }

    /// Marks the transaction as doomed by a worker crash. Idempotent.
    pub fn doom(&self) {
        self.doomed.store(true, Ordering::Release);
    }

    /// Whether a worker crash doomed this transaction. Workers check this
    /// before executing or granting locks to an action so doomed work
    /// aborts promptly instead of waiting out a lock timeout.
    pub fn is_doomed(&self) -> bool {
        self.doomed.load(Ordering::Acquire)
    }

    /// Claims the right to finalize (commit/abort + reply). Returns `true`
    /// to exactly one caller; everyone else must leave the transaction
    /// alone.
    pub fn try_finalize(&self) -> bool {
        self.finalized
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Records that `partition` runs an action of this transaction
    /// touching `keys` of `table` (empty for a secondary action that has
    /// not parked on a conflicting key yet).
    pub fn mark_involved(&self, partition: PartitionId, table: TableId, keys: &[(i64, LockClass)]) {
        let mut involved = self.involved.lock();
        let entry = match involved.iter_mut().find(|(p, _)| *p == partition) {
            Some(entry) => entry,
            None => {
                involved.push((partition, Vec::new()));
                involved.last_mut().expect("just pushed")
            }
        };
        for &(key, _) in keys {
            if !entry.1.contains(&(table, key)) {
                entry.1.push((table, key));
            }
        }
    }

    /// The partitions involved so far.
    pub fn involved(&self) -> Vec<PartitionId> {
        self.involved.lock().iter().map(|(p, _)| *p).collect()
    }

    /// A snapshot of the partitions involved so far, each with the keys
    /// the transaction touched there. Observability/testing helper — the
    /// executor's finish broadcast reads [`TxnCtx::involved`] directly to
    /// avoid cloning on the hot path.
    pub fn involved_keys(&self) -> InvolvedKeys {
        self.involved.lock().clone()
    }
}

/// What the RVP reports when an action completes.
pub enum PhaseEnd {
    /// Other actions of the phase are still running; nothing to do.
    NotLast,
    /// This was the last action of the phase: the reporting worker must run
    /// the rendezvous logic with the collected state.
    Last {
        /// Outputs of the phase's actions, indexed by action position in
        /// the phase (`outputs[i]` belongs to the `i`-th `ActionSpec`),
        /// regardless of completion order. Actions that failed or were
        /// skipped leave an empty vector (only reachable on the abort
        /// path, where outputs are not consumed).
        outputs: Vec<Vec<Value>>,
        /// First failure observed in the phase, if any (forces abort).
        failure: Option<StorageError>,
    },
}

/// A rendezvous point: the synchronization barrier between two phases of a
/// transaction (or between its last phase and commit). Actions report here;
/// the last one to arrive carries the phase's combined result forward.
pub struct Rvp {
    remaining: AtomicUsize,
    outputs: Mutex<Vec<Option<Vec<Value>>>>,
    failure: Mutex<Option<StorageError>>,
}

impl Rvp {
    /// Creates an RVP awaiting `actions` reports.
    pub fn new(actions: usize) -> Self {
        assert!(actions > 0, "an RVP must await at least one action");
        Rvp {
            remaining: AtomicUsize::new(actions),
            outputs: Mutex::new(vec![None; actions]),
            failure: Mutex::new(None),
        }
    }

    /// Reports the result of the action at position `slot` in the phase.
    /// Returns [`PhaseEnd::Last`] to exactly one caller — the one that
    /// must run the rendezvous logic.
    pub fn report(&self, slot: usize, result: StorageResult<Vec<Value>>) -> PhaseEnd {
        match result {
            Ok(values) => self.outputs.lock()[slot] = Some(values),
            Err(e) => {
                let mut failure = self.failure.lock();
                if failure.is_none() {
                    *failure = Some(e);
                }
            }
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            PhaseEnd::Last {
                outputs: std::mem::take(&mut *self.outputs.lock())
                    .into_iter()
                    .map(Option::unwrap_or_default)
                    .collect(),
                failure: self.failure.lock().take(),
            }
        } else {
            PhaseEnd::NotLast
        }
    }

    /// Number of actions that have not reported yet.
    pub fn pending(&self) -> usize {
        self.remaining.load(Ordering::Acquire)
    }

    /// Whether some action of the phase has already failed. Workers use
    /// this to skip executing (and lock-waiting for) actions whose
    /// transaction is doomed to abort anyway.
    pub fn failed(&self) -> bool {
        self.failure.lock().is_some()
    }
}

/// One routed action in flight: the body plus everything the executing
/// worker needs to lock, run, and rendezvous.
pub struct ActionEnvelope {
    /// Position of this action within its phase; outputs are delivered to
    /// the RVP slot of the same index.
    pub slot: usize,
    /// Table the action touches.
    pub table: TableId,
    /// Routing keys with access intents. Empty for a freshly dispatched
    /// secondary action; the executor fills in a conflicting record's
    /// routing key (as a read intent) when it parks the action on that
    /// key's owning partition.
    pub keys: Vec<(i64, LockClass)>,
    /// The action body (one-shot for aligned actions, re-runnable for
    /// secondary ones).
    pub body: ActionLogic,
    /// Shared transaction state.
    pub txn: Arc<TxnCtx>,
    /// The RVP this action reports to.
    pub rvp: Arc<Rvp>,
    /// When the action was dispatched — deferral waits are measured from
    /// here, so a conflicting action times out rather than waiting forever
    /// (DORA's cross-partition deadlock resolution).
    pub dispatched: Instant,
}

/// Failure modes of routing a phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// An aligned action listed keys owned by different partitions; the
    /// flow-graph builder must split it into per-partition actions.
    SpansPartitions {
        /// Table whose rule was consulted.
        table: TableId,
        /// The two partitions the keys straddle.
        partitions: (PartitionId, PartitionId),
    },
    /// An aligned action carried no keys at all.
    NoKeys {
        /// Table whose rule was consulted.
        table: TableId,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::SpansPartitions { table, partitions } => write!(
                f,
                "aligned action on table {table} spans partitions {} and {}",
                partitions.0, partitions.1
            ),
            RouteError::NoKeys { table } => {
                write!(
                    f,
                    "aligned action on table {table} declares no routing keys"
                )
            }
        }
    }
}

impl From<RouteError> for StorageError {
    fn from(e: RouteError) -> Self {
        StorageError::Internal(e.to_string())
    }
}

/// Decides which partition each action of a phase runs on.
///
/// Aligned actions go to the owner of their first routing key (after
/// validating that *all* their keys belong to that owner). Secondary
/// (non-aligned) actions can run anywhere; `next_secondary` spreads them
/// round-robin over the `workers` partitions. Validation happens for the
/// whole phase before anything is dispatched, so a routing error never
/// leaves a half-dispatched phase behind.
pub fn route_phase(
    routing: &RoutingTable,
    workers: usize,
    next_secondary: &AtomicUsize,
    specs: &[ActionSpec],
) -> Result<Vec<PartitionId>, RouteError> {
    let mut assignments = Vec::with_capacity(specs.len());
    for spec in specs {
        if spec.aligned {
            let Some(&(first_key, _)) = spec.keys.first() else {
                return Err(RouteError::NoKeys { table: spec.table });
            };
            let owner = routing.owner_of(spec.table, first_key);
            for &(key, _) in &spec.keys[1..] {
                let other = routing.owner_of(spec.table, key);
                if other != owner {
                    return Err(RouteError::SpansPartitions {
                        table: spec.table,
                        partitions: (owner, other),
                    });
                }
            }
            // A routing table may name more partitions than this engine has
            // workers; fold the logical owner onto a real thread.
            assignments.push(owner % workers.max(1));
        } else {
            let slot = next_secondary.fetch_add(1, Ordering::Relaxed);
            assignments.push(slot % workers.max(1));
        }
    }
    Ok(assignments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RoutingRule;
    use dora_storage::types::Value;

    fn routing_4x4(table: TableId) -> RoutingTable {
        let mut rt = RoutingTable::new();
        rt.set_rule(RoutingRule::uniform(table, 0, 0, 99, 4, 4));
        rt
    }

    #[test]
    fn aligned_actions_route_to_key_owner() {
        let rt = routing_4x4(1);
        let rr = AtomicUsize::new(0);
        let specs = vec![
            ActionSpec::read(1, 0, |_, _, _| Ok(vec![])),
            ActionSpec::read(1, 30, |_, _, _| Ok(vec![])),
            ActionSpec::write(1, 99, |_, _, _| Ok(vec![])),
        ];
        let parts = route_phase(&rt, 4, &rr, &specs).unwrap();
        assert_eq!(parts, vec![0, 1, 3]);
    }

    #[test]
    fn multi_key_actions_must_stay_inside_one_partition() {
        let rt = routing_4x4(1);
        let rr = AtomicUsize::new(0);
        let ok = vec![ActionSpec::multi(
            1,
            vec![(26, LockClass::Read), (49, LockClass::Write)],
            |_, _, _| Ok(vec![]),
        )];
        assert_eq!(route_phase(&rt, 4, &rr, &ok).unwrap(), vec![1]);

        let bad = vec![ActionSpec::multi(
            1,
            vec![(26, LockClass::Read), (51, LockClass::Write)],
            |_, _, _| Ok(vec![]),
        )];
        let err = route_phase(&rt, 4, &rr, &bad).unwrap_err();
        assert_eq!(
            err,
            RouteError::SpansPartitions {
                table: 1,
                partitions: (1, 2)
            }
        );
    }

    #[test]
    fn aligned_action_without_keys_is_rejected() {
        let rt = routing_4x4(1);
        let rr = AtomicUsize::new(0);
        let mut spec = ActionSpec::read(1, 5, |_, _, _| Ok(vec![]));
        spec.keys.clear();
        let err = route_phase(&rt, 4, &rr, &[spec]).unwrap_err();
        assert_eq!(err, RouteError::NoKeys { table: 1 });
    }

    #[test]
    fn secondary_actions_round_robin() {
        let rt = routing_4x4(1);
        let rr = AtomicUsize::new(0);
        let specs: Vec<ActionSpec> = (0..5)
            .map(|_| ActionSpec::secondary(1, |_, _, _| Ok(vec![])))
            .collect();
        let parts = route_phase(&rt, 4, &rr, &specs).unwrap();
        assert_eq!(parts, vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn unrouted_tables_fall_back_to_partition_zero() {
        let rt = RoutingTable::new();
        let rr = AtomicUsize::new(0);
        let specs = vec![ActionSpec::write(9, 1234, |_, _, _| Ok(vec![]))];
        assert_eq!(route_phase(&rt, 4, &rr, &specs).unwrap(), vec![0]);
    }

    #[test]
    fn more_partitions_than_workers_fold_onto_threads() {
        let mut rt = RoutingTable::new();
        rt.set_rule(RoutingRule::uniform(1, 0, 0, 99, 8, 8));
        let rr = AtomicUsize::new(0);
        // Key 99 lives in partition 7; with only 2 worker threads it must
        // land on thread 1.
        let specs = vec![ActionSpec::read(1, 99, |_, _, _| Ok(vec![]))];
        assert_eq!(route_phase(&rt, 2, &rr, &specs).unwrap(), vec![1]);
    }

    #[test]
    fn rvp_reports_last_exactly_once_with_slot_ordered_outputs() {
        let rvp = Rvp::new(3);
        // Completion order 2, 0, 1 — outputs still come back slot-ordered.
        assert!(matches!(
            rvp.report(2, Ok(vec![Value::Int(30)])),
            PhaseEnd::NotLast
        ));
        assert_eq!(rvp.pending(), 2);
        assert!(matches!(
            rvp.report(0, Ok(vec![Value::Int(10)])),
            PhaseEnd::NotLast
        ));
        match rvp.report(1, Ok(vec![Value::Int(20)])) {
            PhaseEnd::Last { outputs, failure } => {
                assert_eq!(
                    outputs,
                    vec![
                        vec![Value::Int(10)],
                        vec![Value::Int(20)],
                        vec![Value::Int(30)]
                    ]
                );
                assert!(failure.is_none());
            }
            PhaseEnd::NotLast => panic!("third report must be last"),
        }
    }

    #[test]
    fn rvp_keeps_first_failure() {
        let rvp = Rvp::new(2);
        rvp.report(0, Err(StorageError::NotFound));
        match rvp.report(1, Err(StorageError::PageFull)) {
            PhaseEnd::Last { outputs, failure } => {
                // Failed slots are empty placeholders.
                assert_eq!(outputs, vec![Vec::<Value>::new(), Vec::new()]);
                assert_eq!(failure, Some(StorageError::NotFound));
            }
            PhaseEnd::NotLast => panic!("second report must be last"),
        }
    }

    #[test]
    fn txn_ctx_tracks_involved_partitions_with_their_keys() {
        let (tx, _rx) = crate::oneshot::channel();
        let ctx = TxnCtx::new(7, "t", Vec::new(), tx);
        ctx.mark_involved(2, 1, &[(10, LockClass::Write)]);
        ctx.mark_involved(0, 1, &[]);
        // Re-marking accumulates and deduplicates keys per partition.
        ctx.mark_involved(2, 1, &[(10, LockClass::Read), (11, LockClass::Read)]);
        ctx.mark_involved(2, 3, &[(10, LockClass::Read)]);
        assert_eq!(ctx.involved(), vec![2, 0]);
        assert_eq!(
            ctx.involved_keys(),
            vec![(2, vec![(1, 10), (1, 11), (3, 10)]), (0, vec![]),]
        );
    }
}
