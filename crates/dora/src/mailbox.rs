//! Lock-free partition mailboxes: the intake structure of a DORA worker.
//!
//! DORA's premise is that a partition worker's hot loop touches no
//! centralized synchronization — yet the previous executor funneled every
//! message into a partition through a `Mutex<VecDeque>` channel (the
//! crossbeam shim), a separate SeqCst admission gate, and a `senders`
//! read-write lock. The [`Mailbox`] replaces all three with one
//! purpose-built structure per partition:
//!
//! * **Fresh lane** — a bounded MPSC ring. *Admission is fused into ring
//!   capacity*: reserving a slot (one CAS on the tail counter) **is** the
//!   admission gate, so there is no separate used/waiting handshake. A
//!   producer facing a full ring blocks — back-pressure — until the
//!   consumer frees slots or a deadline passes; the message is then handed
//!   back for a *visible* rejection, never silently dropped. Slots are
//!   freed one per message *taken up for processing* (not per drain), so
//!   the admitted-but-unprocessed bound the old gate enforced is
//!   preserved exactly.
//! * **Priority lane** — an unbounded lock-free list for worker-to-worker
//!   traffic (later-phase actions, finishes, probes). Push is a CAS; a
//!   worker can never block sending to another worker, which rules out
//!   send-side deadlock by construction. The whole lane is drained with a
//!   **single atomic swap** and reversed into FIFO order — the
//!   batch-drain the ring-side consumer mirrors (one lazily published
//!   head counter per segment instead of one lock acquisition per
//!   message).
//! * **Parking** — eventcount-style: the consumer advertises it is about
//!   to sleep, re-verifies both lanes are empty, and only then waits on a
//!   condvar; producers check the advertisement *after* publishing. The
//!   two sides are ordered by `SeqCst` fences (the classic store-buffer
//!   pairing), so a wakeup can never be lost, and the mutex/condvar pair
//!   is touched only when someone actually sleeps.
//! * **Close protocol** — [`Mailbox::close`] sets a bit *in the ring's
//!   tail counter* so no slot can be claimed afterwards, and the
//!   consumer's final drain seals the priority lane by swapping in a
//!   sentinel ([`Mailbox::seal_priority_into`]). Both ends linearize with
//!   producers on the lane atomics themselves — not on a separate flag —
//!   so a send racing shutdown either lands before the final drain (and
//!   is failed visibly with the rest of the backlog) or is rejected with
//!   [`PushError::Closed`]; it can never strand unobserved.
//!
//! FIFO order is guaranteed *within a lane per producer* — the property
//! the executor relies on — and the ring additionally preserves global
//! claim order across producers.
//!
//! The mailbox is generic over the message type so its concurrency
//! properties can be property-tested with plain integers; the executor
//! instantiates it with `WorkerMsg`.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::ptr;
use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

/// Why a push did not enqueue. The message is handed back so the caller
/// can fail it visibly (abort the transaction) instead of dropping it.
pub enum PushError<T> {
    /// The fresh ring stayed full past the caller's deadline.
    Full(T),
    /// The mailbox was closed (engine shutdown).
    Closed(T),
}

impl<T> PushError<T> {
    /// Recovers the message that was not enqueued.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(msg) | PushError::Closed(msg) => msg,
        }
    }
}

impl<T> std::fmt::Debug for PushError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(match self {
            PushError::Full(_) => "PushError::Full(..)",
            PushError::Closed(_) => "PushError::Closed(..)",
        })
    }
}

/// Why [`Mailbox::park`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parked {
    /// A message may be available (or a spurious wakeup) — drain again.
    Woken,
    /// The caller's deadline passed with no message.
    TimedOut,
    /// The mailbox is closed.
    Closed,
}

/// One ring slot: a message cell plus the publication sequence. A slot at
/// ring position `pos` is published by storing `pos + 1` — a value unique
/// to that position across all wrap-arounds, so no reset store is needed
/// when the consumer takes the message out.
struct Slot<T> {
    seq: AtomicU64,
    msg: UnsafeCell<MaybeUninit<T>>,
}

/// One node of the priority lane's swap list.
struct Node<T> {
    msg: T,
    next: *mut Node<T>,
}

/// Sentinel installed in `prio` by [`Mailbox::seal_priority_into`]. Never
/// dereferenced; no heap allocation can sit at `usize::MAX`, so it cannot
/// collide with a real node. Once installed, a producer's CAS can only
/// observe it and fail — sealing and pushing linearize on the same
/// atomic, which is what makes a post-seal strand impossible.
fn sealed<T>() -> *mut Node<T> {
    usize::MAX as *mut Node<T>
}

/// High bit of `tail`: set by [`Mailbox::close`] so that no fresh-ring
/// position can be claimed afterwards (every claim CAS expects a value
/// without the bit). Ring positions are monotonically increasing message
/// counts and never get near 2^63.
const TAIL_CLOSED: u64 = 1 << 63;

/// A partition worker's input: bounded MPSC fresh ring + unbounded
/// priority list + eventcount parking. See the module docs for the
/// design; one instance per partition, single consumer (the owning
/// worker), any number of producers.
pub struct Mailbox<T> {
    /// Fresh-lane ring storage; length is a power of two.
    slots: Box<[Slot<T>]>,
    /// `slots.len() - 1`, for cheap position-to-index masking.
    mask: u64,
    /// Next ring position a producer may claim (CAS to claim).
    tail: AtomicU64,
    /// Ring positions freed up to here. Published by the consumer one per
    /// message taken up for processing; producers read it for the
    /// capacity check — `tail - head` is the live admission count.
    head: AtomicU64,
    /// Consumer-only cursor: next unread ring position (`head <= read <=
    /// tail`). Messages between `head` and `read` were drained into the
    /// worker but still hold their admission slots.
    read: AtomicU64,
    /// Priority lane: LIFO swap list, reversed into FIFO on drain.
    prio: AtomicPtr<Node<T>>,
    /// Priority-lane length (observability only).
    prio_len: AtomicUsize,
    /// True while the consumer is in (or committing to) `park`.
    sleeping: AtomicBool,
    recv_mutex: Mutex<()>,
    recv_cond: Condvar,
    /// Producers blocked on a full fresh ring.
    space_waiters: AtomicUsize,
    space_mutex: Mutex<()>,
    space_cond: Condvar,
    closed: AtomicBool,
}

// SAFETY: the UnsafeCell slots are handed between threads under the ring
// protocol (a slot is written by exactly the producer that claimed its
// position and read by the single consumer only after the `seq` release
// store), and raw list nodes are owned by exactly one side at a time
// (producers until the CAS publishes, the consumer after the swap).
unsafe impl<T: Send> Send for Mailbox<T> {}
unsafe impl<T: Send> Sync for Mailbox<T> {}

impl<T> Mailbox<T> {
    /// Creates a mailbox whose fresh lane admits at most
    /// `capacity.next_power_of_two()` messages (rounded up so positions
    /// can be masked instead of divided; at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1).next_power_of_two();
        let slots = (0..capacity)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                msg: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Mailbox {
            slots,
            mask: capacity as u64 - 1,
            tail: AtomicU64::new(0),
            head: AtomicU64::new(0),
            read: AtomicU64::new(0),
            prio: AtomicPtr::new(ptr::null_mut()),
            prio_len: AtomicUsize::new(0),
            sleeping: AtomicBool::new(false),
            recv_mutex: Mutex::new(()),
            recv_cond: Condvar::new(),
            space_waiters: AtomicUsize::new(0),
            space_mutex: Mutex::new(()),
            space_cond: Condvar::new(),
            closed: AtomicBool::new(false),
        }
    }

    /// Fresh-lane capacity (after power-of-two rounding).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Messages currently admitted to the fresh lane — drained-but-
    /// unprocessed ones included, which is exactly the bound admission
    /// enforces.
    pub fn fresh_len(&self) -> usize {
        let h = self.head.load(Ordering::Acquire);
        let t = self.tail.load(Ordering::Acquire) & !TAIL_CLOSED;
        t.wrapping_sub(h) as usize
    }

    /// Messages currently queued in the priority lane.
    pub fn priority_len(&self) -> usize {
        self.prio_len.load(Ordering::Relaxed)
    }

    /// Total queued messages across both lanes (observability).
    pub fn len(&self) -> usize {
        self.fresh_len() + self.priority_len()
    }

    /// Whether both lanes are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`Mailbox::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Closes the mailbox: every later push fails with
    /// [`PushError::Closed`], blocked producers and a parked consumer are
    /// woken. Already-enqueued messages stay drainable — shutdown drains
    /// a full ring, it never drops admitted work.
    ///
    /// Closing linearizes against ring claims on `tail` itself (the
    /// `TAIL_CLOSED` bit): a producer that raced past the `closed` flag
    /// still cannot claim a slot afterwards, so once the consumer drains
    /// past the post-close `tail` the ring is quiescent forever (see
    /// [`Mailbox::fresh_is_quiescent`]). The priority lane is sealed
    /// separately, by the consumer, via [`Mailbox::seal_priority_into`].
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.tail.fetch_or(TAIL_CLOSED, Ordering::SeqCst);
        {
            let _guard = self.recv_mutex.lock();
            self.recv_cond.notify_all();
        }
        {
            let _guard = self.space_mutex.lock();
            self.space_cond.notify_all();
        }
    }

    /// One ring-claim attempt: a CAS on `tail` fused with the capacity
    /// check against `head`. Claiming the position *is* admission.
    fn try_push_fresh(&self, msg: T) -> Result<(), PushError<T>> {
        let cap = self.slots.len() as u64;
        let mut t = self.tail.load(Ordering::Relaxed);
        loop {
            if t & TAIL_CLOSED != 0 {
                return Err(PushError::Closed(msg));
            }
            let h = self.head.load(Ordering::Acquire);
            if t.wrapping_sub(h) >= cap {
                return Err(PushError::Full(msg));
            }
            match self
                .tail
                .compare_exchange_weak(t, t + 1, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => {
                    // The capacity check above guarantees the consumer is
                    // done with this slot (head moved past its previous
                    // round), so the claimant owns it exclusively.
                    let slot = &self.slots[(t & self.mask) as usize];
                    unsafe { (*slot.msg.get()).write(msg) };
                    slot.seq.store(t + 1, Ordering::Release);
                    return Ok(());
                }
                Err(current) => t = current,
            }
        }
    }

    /// Enqueues onto the fresh lane, blocking while the ring is full up to
    /// `deadline` — admission back-pressure. The uncontended path is one
    /// CAS plus the publication store; the clock and the mutex/condvar are
    /// only consulted once the ring is actually full.
    pub fn push_fresh(&self, msg: T, deadline: Instant) -> Result<(), PushError<T>> {
        if self.is_closed() {
            return Err(PushError::Closed(msg));
        }
        let mut msg = msg;
        loop {
            match self.try_push_fresh(msg) {
                Ok(()) => {
                    self.wake_consumer();
                    return Ok(());
                }
                Err(PushError::Closed(back)) => return Err(PushError::Closed(back)),
                Err(PushError::Full(back)) => msg = back,
            }
            // Full. Register as a waiter, then re-try *while holding the
            // space mutex*: the consumer's notify also takes it, so a slot
            // freed between this re-try and the wait cannot be missed.
            self.space_waiters.fetch_add(1, Ordering::SeqCst);
            let mut guard = self.space_mutex.lock();
            match self.try_push_fresh(msg) {
                Ok(()) => {
                    drop(guard);
                    self.space_waiters.fetch_sub(1, Ordering::SeqCst);
                    self.wake_consumer();
                    return Ok(());
                }
                Err(PushError::Closed(back)) => {
                    drop(guard);
                    self.space_waiters.fetch_sub(1, Ordering::SeqCst);
                    return Err(PushError::Closed(back));
                }
                Err(PushError::Full(back)) => msg = back,
            }
            let now = Instant::now();
            if now >= deadline {
                drop(guard);
                self.space_waiters.fetch_sub(1, Ordering::SeqCst);
                return Err(PushError::Full(msg));
            }
            self.space_cond.wait_for(&mut guard, deadline - now);
            drop(guard);
            self.space_waiters.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Enqueues onto the priority lane: one allocation and one CAS, never
    /// blocks — a worker must never wait on another worker's mailbox.
    ///
    /// The `closed` flag check is only a fast path: the authoritative
    /// rejection is the CAS observing the `sealed` sentinel, which the
    /// consumer installs with its *final* drain
    /// ([`Mailbox::seal_priority_into`]). A producer that raced past the
    /// flag check before [`Mailbox::close`] still cannot link a node in
    /// after that drain — its CAS sees the sentinel and fails — so a
    /// message can never slip in behind the final drain and strand.
    pub fn push_priority(&self, msg: T) -> Result<(), PushError<T>> {
        if self.is_closed() {
            return Err(PushError::Closed(msg));
        }
        let node = Box::into_raw(Box::new(Node {
            msg,
            next: ptr::null_mut(),
        }));
        let mut head = self.prio.load(Ordering::Relaxed);
        loop {
            if head == sealed::<T>() {
                let boxed = unsafe { Box::from_raw(node) };
                return Err(PushError::Closed(boxed.msg));
            }
            unsafe { (*node).next = head };
            match self
                .prio
                .compare_exchange_weak(head, node, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(current) => head = current,
            }
        }
        self.prio_len.fetch_add(1, Ordering::Relaxed);
        self.wake_consumer();
        Ok(())
    }

    /// Producer half of the eventcount: after publishing, check whether
    /// the consumer advertised a park. The `SeqCst` fence pairs with the
    /// consumer's fence in [`Mailbox::park`] (store-buffer pattern): either
    /// this load sees `sleeping` or the consumer's emptiness check sees
    /// the message just published.
    fn wake_consumer(&self) {
        fence(Ordering::SeqCst);
        if self.sleeping.load(Ordering::Relaxed) {
            let _guard = self.recv_mutex.lock();
            self.recv_cond.notify_all();
        }
    }

    /// Swings the priority lane's entire ready segment into `out` with a
    /// single atomic swap (reversed into FIFO order). Returns the number
    /// of messages appended. Consumer-only.
    pub fn drain_priority_into(&self, out: &mut Vec<T>) -> usize {
        if self.prio.load(Ordering::Acquire) == sealed::<T>() {
            return 0;
        }
        let mut node = self.prio.swap(ptr::null_mut(), Ordering::Acquire);
        if node.is_null() {
            return 0;
        }
        let start = out.len();
        while !node.is_null() {
            let boxed = unsafe { Box::from_raw(node) };
            node = boxed.next;
            out.push(boxed.msg);
        }
        let n = out.len() - start;
        out[start..].reverse();
        self.prio_len.fetch_sub(n, Ordering::Relaxed);
        n
    }

    /// The consumer's **final** priority drain: swings the remaining
    /// segment into `out` and installs the `sealed` sentinel in the
    /// same atomic swap, so every producer CAS from this point on fails
    /// with [`PushError::Closed`]. Pushes that won their CAS before the
    /// swap are in the returned segment by construction — the shutdown
    /// drain and late sends linearize on the lane head itself, closing
    /// the check-then-act window a separate `closed` flag would leave.
    /// Consumer-only; idempotent.
    pub fn seal_priority_into(&self, out: &mut Vec<T>) -> usize {
        let mut node = self.prio.swap(sealed::<T>(), Ordering::AcqRel);
        if node == sealed::<T>() || node.is_null() {
            return 0;
        }
        let start = out.len();
        while !node.is_null() {
            let boxed = unsafe { Box::from_raw(node) };
            node = boxed.next;
            out.push(boxed.msg);
        }
        let n = out.len() - start;
        out[start..].reverse();
        self.prio_len.fetch_sub(n, Ordering::Relaxed);
        n
    }

    /// Like [`Mailbox::drain_priority_into`], but hands each message to
    /// `f` in FIFO order without an intermediate buffer (the segment is
    /// reversed in place on the detached list first). Consumer-only.
    pub fn drain_priority_with(&self, mut f: impl FnMut(T)) -> usize {
        if self.prio.load(Ordering::Acquire) == sealed::<T>() {
            return 0;
        }
        let node = self.prio.swap(ptr::null_mut(), Ordering::Acquire);
        if node.is_null() {
            return 0;
        }
        // Reverse the detached LIFO chain; it is exclusively ours now.
        let mut prev: *mut Node<T> = ptr::null_mut();
        let mut cur = node;
        while !cur.is_null() {
            let next = unsafe { (*cur).next };
            unsafe { (*cur).next = prev };
            prev = cur;
            cur = next;
        }
        let mut n = 0;
        let mut cur = prev;
        while !cur.is_null() {
            let boxed = unsafe { Box::from_raw(cur) };
            cur = boxed.next;
            f(boxed.msg);
            n += 1;
        }
        self.prio_len.fetch_sub(n, Ordering::Relaxed);
        n
    }

    /// Drains every *published* fresh message into `out` in claim order
    /// and returns how many were appended. Consumer-only. Admission slots
    /// are **not** freed here — the caller frees one per message it takes
    /// up for processing via [`Mailbox::free_fresh_slot`], preserving the
    /// admitted-but-unprocessed bound. A claimed-but-unpublished slot
    /// (a producer between its CAS and its publication store) ends the
    /// batch early; the messages behind it surface on the next drain.
    pub fn drain_fresh_into(&self, out: &mut Vec<T>) -> usize {
        let mut r = self.read.load(Ordering::Relaxed);
        let t = self.tail.load(Ordering::Acquire) & !TAIL_CLOSED;
        let mut n = 0;
        while r < t {
            let slot = &self.slots[(r & self.mask) as usize];
            if slot.seq.load(Ordering::Acquire) != r + 1 {
                break;
            }
            out.push(unsafe { (*slot.msg.get()).assume_init_read() });
            r += 1;
            n += 1;
        }
        if n > 0 {
            self.read.store(r, Ordering::Relaxed);
        }
        n
    }

    /// Like [`Mailbox::drain_fresh_into`], but hands each published
    /// message to `f` directly — no intermediate buffer. Consumer-only;
    /// the same slot-freeing contract applies.
    pub fn drain_fresh_with(&self, mut f: impl FnMut(T)) -> usize {
        let mut r = self.read.load(Ordering::Relaxed);
        let t = self.tail.load(Ordering::Acquire) & !TAIL_CLOSED;
        let mut n = 0;
        while r < t {
            let slot = &self.slots[(r & self.mask) as usize];
            if slot.seq.load(Ordering::Acquire) != r + 1 {
                break;
            }
            let msg = unsafe { (*slot.msg.get()).assume_init_read() };
            r += 1;
            n += 1;
            // Advance the cursor before the callback: if `f` panics the
            // message is already accounted as taken, not double-readable.
            self.read.store(r, Ordering::Relaxed);
            f(msg);
        }
        n
    }

    /// The complete shutdown drain of a **closed** mailbox, used by a
    /// worker's shutdown tail and by the supervisor when a worker died
    /// after the close (no replacement will ever drain it): seals the
    /// priority lane — making the drain final, nothing can slip in behind
    /// the sealing swap — then loops the fresh ring to quiescence, since a
    /// producer that claimed its slot before the close may still be
    /// mid-publication on the first pass. Fresh admission slots are freed
    /// here (the messages will never be "taken up for processing" — they
    /// are aborted wholesale). Appends every salvaged message to `out`.
    /// Consumer-only; idempotent.
    pub fn drain_closed_into(&self, out: &mut Vec<T>) {
        debug_assert!(self.is_closed(), "final drain is only defined after close");
        self.seal_priority_into(out);
        loop {
            let drained = self.drain_fresh_into(out);
            for _ in 0..drained {
                self.free_fresh_slot();
            }
            if self.fresh_is_quiescent() {
                break;
            }
            std::thread::yield_now();
        }
    }

    /// Frees one fresh-lane admission slot — called by the consumer when
    /// it takes a drained fresh message up for processing (or aborts it
    /// at shutdown). One release store; blocked producers are only
    /// notified when someone actually waits.
    pub fn free_fresh_slot(&self) {
        let h = self.head.load(Ordering::Relaxed);
        debug_assert!(
            h < self.read.load(Ordering::Relaxed),
            "freed more fresh slots than were drained"
        );
        self.head.store(h + 1, Ordering::Release);
        // Pairs with the waiter's SeqCst registration: either this load
        // sees the waiter, or the waiter's locked re-try sees the new head.
        fence(Ordering::SeqCst);
        if self.space_waiters.load(Ordering::Relaxed) > 0 {
            let _guard = self.space_mutex.lock();
            self.space_cond.notify_all();
        }
    }

    /// Whether any message is (or is about to be) available: a non-empty
    /// priority list, or a claimed fresh slot — published or in the
    /// middle of being published. Consumers use it to skip the park
    /// handshake entirely while traffic keeps flowing (two plain loads
    /// instead of the store-fence-verify dance; [`Mailbox::park`] redoes
    /// the check race-free after advertising the park).
    pub fn has_pending(&self) -> bool {
        let prio = self.prio.load(Ordering::Acquire);
        (!prio.is_null() && prio != sealed::<T>())
            || self.read.load(Ordering::Relaxed) != self.tail.load(Ordering::Acquire) & !TAIL_CLOSED
    }

    /// Whether the fresh ring can never surface another message: the
    /// mailbox is closed (no position can be claimed any more — the
    /// `TAIL_CLOSED` bit makes every claim CAS fail) and the consumer has
    /// read everything claimed before the close. Until this holds, a
    /// producer that raced the close may still be publishing into a slot
    /// it claimed beforehand; the shutdown drain loops on it so that no
    /// admitted message is stranded. Consumer-only.
    pub fn fresh_is_quiescent(&self) -> bool {
        debug_assert!(self.is_closed(), "quiescence is only defined after close");
        self.read.load(Ordering::Relaxed) == self.tail.load(Ordering::Acquire) & !TAIL_CLOSED
    }

    /// Consumer half of the eventcount: parks until a producer publishes,
    /// `deadline` passes, or the mailbox closes. Emptiness is re-verified
    /// *after* advertising the park (with a `SeqCst` fence in between) and
    /// once more under the mutex, so no publication can slip through
    /// unnoticed. Consumer-only.
    pub fn park(&self, deadline: Option<Instant>) -> Parked {
        self.sleeping.store(true, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let unpark = |result: Parked| {
            self.sleeping.store(false, Ordering::Relaxed);
            result
        };
        if self.is_closed() {
            return unpark(Parked::Closed);
        }
        if self.has_pending() {
            return unpark(Parked::Woken);
        }
        let mut guard = self.recv_mutex.lock();
        if self.is_closed() {
            drop(guard);
            return unpark(Parked::Closed);
        }
        if self.has_pending() {
            drop(guard);
            return unpark(Parked::Woken);
        }
        let result = match deadline {
            None => {
                self.recv_cond.wait(&mut guard);
                Parked::Woken
            }
            Some(deadline) => {
                let now = Instant::now();
                if now >= deadline {
                    Parked::TimedOut
                } else {
                    self.recv_cond.wait_for(&mut guard, deadline - now);
                    Parked::Woken
                }
            }
        };
        drop(guard);
        unpark(result)
    }
}

impl<T> Drop for Mailbox<T> {
    fn drop(&mut self) {
        // Free straggler priority nodes and published fresh messages.
        // Exclusive access (&mut self) means no producer is mid-push, so
        // every claimed slot is published.
        let mut leftovers = Vec::new();
        self.drain_priority_into(&mut leftovers);
        self.drain_fresh_into(&mut leftovers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    fn deadline_in(ms: u64) -> Instant {
        Instant::now() + Duration::from_millis(ms)
    }

    fn drain_all(mb: &Mailbox<u64>) -> Vec<u64> {
        let mut out = Vec::new();
        mb.drain_priority_into(&mut out);
        let fresh = mb.drain_fresh_into(&mut out);
        for _ in 0..fresh {
            mb.free_fresh_slot();
        }
        out
    }

    #[test]
    fn fresh_lane_is_fifo_across_wraparound() {
        let mb = Mailbox::new(4);
        let mut seen = Vec::new();
        for round in 0..10u64 {
            for i in 0..4 {
                mb.push_fresh(round * 4 + i, deadline_in(100)).unwrap();
            }
            assert_eq!(mb.fresh_len(), 4);
            seen.extend(drain_all(&mb));
        }
        assert_eq!(seen, (0..40).collect::<Vec<_>>());
        assert!(mb.is_empty());
    }

    #[test]
    fn capacity_rounds_up_and_bounds_admission() {
        let mb = Mailbox::new(3);
        assert_eq!(mb.capacity(), 4);
        for i in 0..4 {
            mb.push_fresh(i, deadline_in(50)).unwrap();
        }
        let started = Instant::now();
        match mb.push_fresh(99, deadline_in(30)) {
            Err(PushError::Full(msg)) => assert_eq!(msg, 99),
            _ => panic!("full ring must reject after the deadline"),
        }
        assert!(started.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn slots_free_per_processed_message_not_per_drain() {
        let mb = Mailbox::new(2);
        mb.push_fresh(1, deadline_in(50)).unwrap();
        mb.push_fresh(2, deadline_in(50)).unwrap();
        let mut out = Vec::new();
        assert_eq!(mb.drain_fresh_into(&mut out), 2);
        // Drained but not freed: the ring still counts both against
        // admission.
        assert_eq!(mb.fresh_len(), 2);
        assert!(matches!(
            mb.push_fresh(3, deadline_in(5)),
            Err(PushError::Full(3))
        ));
        mb.free_fresh_slot();
        assert_eq!(mb.fresh_len(), 1);
        mb.push_fresh(3, deadline_in(50)).unwrap();
        mb.free_fresh_slot();
        assert_eq!(drain_all(&mb), vec![3]);
    }

    #[test]
    fn blocked_producer_proceeds_when_a_slot_frees() {
        let mb = Arc::new(Mailbox::new(1));
        mb.push_fresh(1, deadline_in(50)).unwrap();
        let producer = {
            let mb = mb.clone();
            std::thread::spawn(move || mb.push_fresh(2, deadline_in(5_000)).is_ok())
        };
        std::thread::sleep(Duration::from_millis(20));
        let mut out = Vec::new();
        assert_eq!(mb.drain_fresh_into(&mut out), 1);
        mb.free_fresh_slot();
        assert!(producer.join().unwrap(), "blocked push must succeed");
        assert_eq!(drain_all(&mb), vec![2]);
    }

    #[test]
    fn priority_lane_single_swap_drains_fifo() {
        let mb = Mailbox::new(2);
        for i in 0..100 {
            mb.push_priority(i).unwrap();
        }
        assert_eq!(mb.priority_len(), 100);
        let mut out = Vec::new();
        assert_eq!(mb.drain_priority_into(&mut out), 100);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
        assert_eq!(mb.priority_len(), 0);
    }

    #[test]
    fn close_rejects_pushes_but_drains_a_full_ring() {
        let mb = Mailbox::new(4);
        for i in 0..4 {
            mb.push_fresh(i, deadline_in(50)).unwrap();
        }
        mb.push_priority(100).unwrap();
        mb.close();
        assert!(matches!(
            mb.push_fresh(9, deadline_in(50)),
            Err(PushError::Closed(9))
        ));
        assert!(matches!(mb.push_priority(9), Err(PushError::Closed(9))));
        // Everything admitted before the close is still there.
        assert_eq!(drain_all(&mb), vec![100, 0, 1, 2, 3]);
        assert_eq!(mb.park(None), Parked::Closed);
    }

    #[test]
    fn close_wakes_a_blocked_producer() {
        let mb = Arc::new(Mailbox::new(1));
        mb.push_fresh(1, deadline_in(50)).unwrap();
        let producer = {
            let mb = mb.clone();
            std::thread::spawn(move || mb.push_fresh(2, deadline_in(10_000)))
        };
        std::thread::sleep(Duration::from_millis(20));
        mb.close();
        match producer.join().unwrap() {
            Err(PushError::Closed(2)) => {}
            _ => panic!("blocked producer must observe the close promptly"),
        }
    }

    #[test]
    fn park_returns_immediately_when_work_is_pending() {
        let mb = Mailbox::new(2);
        mb.push_priority(1).unwrap();
        assert_eq!(mb.park(None), Parked::Woken);
        let mut out = Vec::new();
        mb.drain_priority_into(&mut out);
        // Expired deadline with nothing queued.
        assert_eq!(mb.park(Some(Instant::now())), Parked::TimedOut);
    }

    #[test]
    fn park_wakes_on_publication_not_timeout() {
        let mb = Arc::new(Mailbox::<u64>::new(2));
        let consumer = {
            let mb = mb.clone();
            std::thread::spawn(move || {
                let started = Instant::now();
                while !mb.has_pending() {
                    mb.park(Some(started + Duration::from_secs(10)));
                    assert!(
                        started.elapsed() < Duration::from_secs(10),
                        "park never woke"
                    );
                }
                started.elapsed()
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        mb.push_fresh(7, deadline_in(100)).unwrap();
        let waited = consumer.join().unwrap();
        assert!(
            waited < Duration::from_secs(5),
            "wakeup must ride the publication, waited {waited:?}"
        );
    }

    #[test]
    fn park_unpark_race_never_loses_a_wakeup() {
        // Hammer the racy window: the consumer parks the moment it sees
        // nothing, the producer publishes one message at a time and waits
        // for it to be consumed. Any lost wakeup deadlocks (caught by the
        // deadline assertion).
        let mb = Arc::new(Mailbox::<u64>::new(1));
        let done = Arc::new(AtomicBool::new(false));
        let rounds = 2_000u64;
        let consumer = {
            let mb = mb.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut got = 0u64;
                let hard_deadline = Instant::now() + Duration::from_secs(30);
                let mut out = Vec::new();
                while got < rounds {
                    assert!(
                        Instant::now() < hard_deadline,
                        "lost wakeup: consumer stuck at {got}/{rounds}"
                    );
                    out.clear();
                    let n = mb.drain_fresh_into(&mut out);
                    for _ in 0..n {
                        mb.free_fresh_slot();
                    }
                    got += n as u64;
                    if n == 0 {
                        mb.park(Some(Instant::now() + Duration::from_secs(5)));
                    }
                }
                done.store(true, Ordering::Release);
                got
            })
        };
        for i in 0..rounds {
            mb.push_fresh(i, deadline_in(10_000)).unwrap();
        }
        assert_eq!(consumer.join().unwrap(), rounds);
        assert!(done.load(Ordering::Acquire));
    }

    #[test]
    fn concurrent_producers_lose_nothing_on_both_lanes() {
        let mb = Arc::new(Mailbox::<u64>::new(8));
        let producers = 4u64;
        let per_producer = 1_000u64;
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let mb = mb.clone();
                std::thread::spawn(move || {
                    for i in 0..per_producer {
                        let msg = p * per_producer + i;
                        if i % 2 == 0 {
                            mb.push_fresh(msg, deadline_in(30_000)).unwrap();
                        } else {
                            mb.push_priority(msg).unwrap();
                        }
                    }
                })
            })
            .collect();
        let mut seen = Vec::new();
        let mut out = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(30);
        while seen.len() < (producers * per_producer) as usize {
            assert!(Instant::now() < deadline, "consumer starved");
            out.clear();
            mb.drain_priority_into(&mut out);
            let fresh = mb.drain_fresh_into(&mut out);
            for _ in 0..fresh {
                mb.free_fresh_slot();
            }
            if out.is_empty() {
                mb.park(Some(Instant::now() + Duration::from_secs(5)));
            }
            seen.extend(out.iter().copied());
        }
        for h in handles {
            h.join().unwrap();
        }
        seen.sort_unstable();
        assert_eq!(
            seen,
            (0..producers * per_producer).collect::<Vec<_>>(),
            "no message lost or duplicated"
        );
    }

    #[test]
    fn seal_collects_prior_pushes_then_rejects_at_the_cas() {
        let mb = Mailbox::new(2);
        mb.push_priority(1).unwrap();
        mb.push_priority(2).unwrap();
        let mut out = Vec::new();
        assert_eq!(mb.seal_priority_into(&mut out), 2);
        assert_eq!(out, vec![1, 2]);
        // The sentinel — not the closed flag (never set here) — rejects:
        // this is the CAS-level backstop for a producer that raced past
        // the flag check.
        assert!(matches!(mb.push_priority(3), Err(PushError::Closed(3))));
        assert_eq!(mb.priority_len(), 0);
        // Idempotent, and ordinary drains see a sealed lane as empty.
        assert_eq!(mb.seal_priority_into(&mut out), 0);
        assert_eq!(mb.drain_priority_into(&mut out), 0);
        assert_eq!(mb.drain_priority_with(|_| panic!("sealed")), 0);
        assert!(!mb.has_pending());
    }

    #[test]
    fn close_seal_race_strands_no_priority_message() {
        // Hammer the shutdown window: producers spam the priority lane
        // while the consumer closes and seals. Every push that returned
        // Ok must be accounted for by a drain — the seal's swap is the
        // final drain, so Ok-after-seal is impossible by construction.
        for _ in 0..50 {
            let mb = Arc::new(Mailbox::<u64>::new(1));
            let producers: Vec<_> = (0..2)
                .map(|_| {
                    let mb = mb.clone();
                    std::thread::spawn(move || {
                        let mut ok = 0u64;
                        while mb.push_priority(1).is_ok() {
                            ok += 1;
                        }
                        ok
                    })
                })
                .collect();
            let mut collected = Vec::new();
            mb.drain_priority_into(&mut collected);
            mb.close();
            mb.seal_priority_into(&mut collected);
            let pushed: u64 = producers.into_iter().map(|h| h.join().unwrap()).sum();
            // Nothing may linger after the seal, and counts must match.
            assert_eq!(mb.priority_len(), 0);
            assert_eq!(collected.len() as u64, pushed, "stranded priority message");
        }
    }

    #[test]
    fn close_fresh_race_strands_no_ring_message() {
        // Same window on the fresh ring: the TAIL_CLOSED bit stops claims
        // the instant close runs, so draining to quiescence afterwards
        // must account for every successful push.
        for _ in 0..50 {
            let mb = Arc::new(Mailbox::<u64>::new(2));
            let producers: Vec<_> = (0..2)
                .map(|_| {
                    let mb = mb.clone();
                    std::thread::spawn(move || {
                        let mut ok = 0u64;
                        loop {
                            match mb.push_fresh(1, Instant::now()) {
                                Ok(()) => ok += 1,
                                Err(PushError::Full(_)) => std::thread::yield_now(),
                                Err(PushError::Closed(_)) => return ok,
                            }
                        }
                    })
                })
                .collect();
            let mut collected = Vec::new();
            let n = mb.drain_fresh_into(&mut collected);
            for _ in 0..n {
                mb.free_fresh_slot();
            }
            mb.close();
            loop {
                let n = mb.drain_fresh_into(&mut collected);
                for _ in 0..n {
                    mb.free_fresh_slot();
                }
                if mb.fresh_is_quiescent() {
                    break;
                }
                std::thread::yield_now();
            }
            let pushed: u64 = producers.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(collected.len() as u64, pushed, "stranded fresh message");
            assert_eq!(mb.fresh_len(), 0);
        }
    }

    #[test]
    fn dropping_a_nonempty_mailbox_frees_everything() {
        // Leak-freedom under Drop (nodes and published ring slots); run
        // under Miri/asan this is the interesting case.
        let mb = Mailbox::new(4);
        mb.push_fresh(String::from("a"), deadline_in(50)).unwrap();
        mb.push_priority(String::from("b")).unwrap();
        drop(mb);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;
    use std::time::Duration;

    proptest! {
        /// N producers push disjoint numbered streams through a tiny ring
        /// (forcing wrap-around and full-ring back-pressure) and the
        /// priority lane. No message may be lost or duplicated, and each
        /// producer's stream must stay in order within its lane.
        #[test]
        fn streams_survive_wraparound_intact(params in (1usize..4, 1usize..6, 10u64..60, any::<bool>())) {
            let (cap_exp, producers, per_producer, use_priority) = params;
            let mb = Arc::new(Mailbox::<u64>::new(1 << cap_exp));
            let handles: Vec<_> = (0..producers as u64)
                .map(|p| {
                    let mb = mb.clone();
                    std::thread::spawn(move || {
                        for i in 0..per_producer {
                            let msg = p * 1_000_000 + i;
                            if use_priority && i % 2 == 0 {
                                mb.push_priority(msg).unwrap();
                            } else {
                                mb.push_fresh(msg, Instant::now() + Duration::from_secs(30))
                                    .unwrap();
                            }
                        }
                    })
                })
                .collect();
            let total = producers as u64 * per_producer;
            let mut prio_seen: Vec<u64> = Vec::new();
            let mut fresh_seen: Vec<u64> = Vec::new();
            let mut out = Vec::new();
            let deadline = Instant::now() + Duration::from_secs(30);
            while (prio_seen.len() + fresh_seen.len()) < total as usize {
                prop_assert!(Instant::now() < deadline, "consumer starved");
                out.clear();
                mb.drain_priority_into(&mut out);
                prio_seen.extend(out.iter().copied());
                out.clear();
                let fresh = mb.drain_fresh_into(&mut out);
                for _ in 0..fresh {
                    mb.free_fresh_slot();
                }
                fresh_seen.extend(out.iter().copied());
                if fresh == 0 && prio_seen.len() + fresh_seen.len() < total as usize {
                    mb.park(Some(Instant::now() + Duration::from_secs(5)));
                }
            }
            for h in handles {
                h.join().unwrap();
            }
            // Completeness: every message exactly once.
            let mut all: Vec<u64> = prio_seen.iter().chain(fresh_seen.iter()).copied().collect();
            all.sort_unstable();
            let mut expected: Vec<u64> = (0..producers as u64)
                .flat_map(|p| (0..per_producer).map(move |i| p * 1_000_000 + i))
                .collect();
            expected.sort_unstable();
            prop_assert_eq!(all, expected, "lost or duplicated messages");
            // Per-producer order within each lane.
            for lane in [&prio_seen, &fresh_seen] {
                for p in 0..producers as u64 {
                    let stream: Vec<u64> = lane
                        .iter()
                        .copied()
                        .filter(|m| m / 1_000_000 == p)
                        .collect();
                    prop_assert!(
                        stream.windows(2).all(|w| w[0] < w[1]),
                        "producer {} reordered within a lane: {:?}", p, stream
                    );
                }
            }
        }

        /// Closing with a full ring must reject new pushes yet hand every
        /// admitted message to the drain — shutdown never drops work.
        #[test]
        fn shutdown_drains_a_full_ring(cap_exp in 0usize..5) {
            let cap = 1usize << cap_exp;
            let mb = Mailbox::<u64>::new(cap);
            for i in 0..cap as u64 {
                mb.push_fresh(i, Instant::now() + Duration::from_secs(1)).unwrap();
            }
            mb.close();
            prop_assert!(matches!(
                mb.push_fresh(999, Instant::now() + Duration::from_millis(5)),
                Err(PushError::Closed(999))
            ));
            let mut out = Vec::new();
            let drained = mb.drain_fresh_into(&mut out);
            for _ in 0..drained {
                mb.free_fresh_slot();
            }
            prop_assert_eq!(drained, cap);
            prop_assert_eq!(out, (0..cap as u64).collect::<Vec<_>>());
        }
    }
}
