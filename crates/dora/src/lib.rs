//! # dora-core
//!
//! The **data-oriented** (thread-to-data) execution engine of the paper:
//! instead of assigning each transaction to a thread that then touches
//! arbitrary data (the conventional model in `dora-engine-conv`), DORA
//! assigns each *thread* to a logical partition of the data and decomposes
//! every transaction into partition-local **actions** that are shipped to
//! the threads owning the data they touch.
//!
//! The crate is organized around the paper's vocabulary (see
//! `docs/architecture.md` for the full layered walkthrough):
//!
//! * [`routing`] — logical partitioning: one [`routing::RoutingRule`] per
//!   table maps routing-key ranges to owning worker threads; the
//!   [`routing::RoutingTable`] is the complete, cheaply mutable
//!   configuration.
//! * [`action`] — transaction decomposition: [`action::ActionSpec`]s carry
//!   a closure plus the routing keys it touches, and an
//!   [`action::FlowGraph`] strings phases of actions together with
//!   **rendezvous points** (RVPs) at every data dependency.
//! * [`local_lock`] — the per-partition [`local_lock::LocalLockTable`]:
//!   single-owner, latch-free lock state that replaces the centralized
//!   lock manager's critical sections.
//! * [`dispatcher`] — routes the actions of a phase to their partition
//!   queues and tracks RVP completion.
//! * [`mailbox`] — the lock-free per-partition intake: a bounded MPSC
//!   ring whose capacity *is* the fresh-lane admission bound, an
//!   unbounded priority lane for worker-to-worker messages (drained with
//!   one atomic swap), and eventcount parking.
//! * [`executor`] — the [`executor::DoraEngine`]: one worker thread per
//!   partition with a private mailbox, local lock table, and lock-keyed
//!   wait list (parked actions wake only when a key they wait on is
//!   released), executing under [`executor::DORA_POLICY`]
//!   (`LockingPolicy::Bypass`) because isolation is already enforced at
//!   the partition boundary. Later-phase actions ride the mailbox's
//!   priority lane; fresh intake is bounded with back-pressure on
//!   [`executor::DoraEngine::submit`], and each worker coalesces the
//!   cross-partition messages of a drain batch into one send per target.
//!
//! ```
//! use std::sync::Arc;
//! use dora_core::action::{ActionSpec, FlowGraph};
//! use dora_core::executor::{DoraEngine, DoraEngineConfig, DORA_POLICY};
//! use dora_core::routing::{RoutingRule, RoutingTable};
//! use dora_storage::db::Database;
//! use dora_storage::schema::{ColumnDef, TableSchema};
//! use dora_storage::types::{DataType, Value};
//!
//! let db = Arc::new(Database::default());
//! let table = db
//!     .create_table(TableSchema::new(
//!         "kv",
//!         vec![
//!             ColumnDef::new("k", DataType::BigInt),
//!             ColumnDef::new("v", DataType::BigInt),
//!         ],
//!         vec![0],
//!     ))
//!     .unwrap();
//! let mut routing = RoutingTable::new();
//! routing.set_rule(RoutingRule::uniform(table, 0, 0, 99, 2, 2));
//! let engine = DoraEngine::new(db, routing, DoraEngineConfig { workers: 2, ..Default::default() });
//!
//! let outcome = engine.execute(FlowGraph::new(
//!     "insert-one",
//!     vec![ActionSpec::write(table, 7, move |db, txn, _ctx| {
//!         db.insert(txn, table, vec![Value::BigInt(7), Value::BigInt(70)], DORA_POLICY)?;
//!         Ok(vec![])
//!     })],
//! ));
//! assert!(outcome.is_committed());
//! engine.shutdown();
//! ```

#![warn(missing_docs)]

pub mod action;
#[cfg(any(test, feature = "chaos"))]
pub mod chaos;
pub mod dispatcher;
pub mod executor;
pub mod local_lock;
pub mod mailbox;
pub mod oneshot;
pub mod routing;
mod wait_list;

pub use action::{ActionSpec, FlowGraph};
pub use executor::{DoraEngine, DoraEngineConfig, DoraStatsSnapshot, TxnOutcome, DORA_POLICY};
pub use local_lock::{LocalLockStats, LocalLockTable, LockClass};
pub use mailbox::Mailbox;
pub use routing::{PartitionId, RoutingRule, RoutingTable};
