//! Property test for the quiesce-free range-migration protocol.
//!
//! Random interleavings of submits, finishes, and range migrations must
//! never lose, duplicate, or reorder actions **per key**: every submitted
//! action commits exactly once, and because the driver keeps at most one
//! action outstanding per key, the order in which a key's actions execute
//! must equal their submission order — across any number of ownership
//! handoffs happening underneath them.
//!
//! Each action appends `(key, seq)` to a shared log from inside the
//! action body (serialized per key by the partition-local write intent)
//! and increments the row, so three independent signals must agree at the
//! end: the log (order + multiplicity), the row values (count), and the
//! commit outcomes (completeness).

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dora_core::action::{ActionSpec, FlowGraph};
use dora_core::executor::{DoraEngine, DoraEngineConfig, TxnOutcome, DORA_POLICY};
use dora_core::oneshot;
use dora_core::routing::{RoutingRule, RoutingTable};
use dora_storage::db::Database;
use dora_storage::error::StorageError;
use dora_storage::schema::{ColumnDef, TableSchema};
use dora_storage::types::{DataType, TableId, Value};
use proptest::prelude::*;

const KEYS: i64 = 16;
const WORKERS: usize = 4;

fn load_counters(db: &Database) -> TableId {
    let t = db
        .create_table(TableSchema::new(
            "counters",
            vec![
                ColumnDef::new("id", DataType::BigInt),
                ColumnDef::new("value", DataType::BigInt),
            ],
            vec![0],
        ))
        .unwrap();
    let txn = db.begin();
    for i in 0..KEYS {
        db.insert(
            txn,
            t,
            vec![Value::BigInt(i), Value::BigInt(0)],
            DORA_POLICY,
        )
        .unwrap();
    }
    db.commit(txn).unwrap();
    t
}

/// An increment that also appends `(key, seq)` to the shared log while
/// holding the key's write intent.
fn logged_increment(t: TableId, key: i64, seq: u64, log: Arc<Mutex<Vec<(i64, u64)>>>) -> FlowGraph {
    FlowGraph::new(
        "LoggedIncrement",
        vec![ActionSpec::write(t, key, move |db, txn, _ctx| {
            let row = db
                .get(txn, t, &[Value::BigInt(key)], DORA_POLICY)?
                .ok_or(StorageError::NotFound)?;
            let v = row[1].as_i64().unwrap();
            db.update(
                txn,
                t,
                &[Value::BigInt(key)],
                &[(1, Value::BigInt(v + 1))],
                DORA_POLICY,
            )?;
            log.lock().unwrap().push((key, seq));
            Ok(vec![])
        })],
    )
}

fn wait_commit(rx: &oneshot::Receiver<TxnOutcome>, key: i64, seq: u64) {
    match rx.recv_timeout(Duration::from_secs(20)) {
        Ok(outcome) => assert!(
            outcome.is_committed(),
            "single-key action (key {key}, seq {seq}) must commit: {outcome:?}"
        ),
        Err(e) => panic!("no outcome for key {key} seq {seq}: {e:?}"),
    }
}

proptest! {
    /// See the module docs. Ops are drawn as `(kind, key, dest)`: most
    /// submit an action on `key`, some reap the oldest outstanding
    /// outcome, and the rest migrate the 4-key block around `key` (or
    /// just `key` when carving fragmented the block across owners) to
    /// worker `dest` — while actions on that very key may be queued,
    /// parked, or in flight.
    #[test]
    fn interleaved_migrations_never_lose_duplicate_or_reorder(
        ops in proptest::collection::vec(
            (0u64..10, 0i64..KEYS, 0usize..WORKERS), 20..120)) {
        let db = Arc::new(Database::default());
        let t = load_counters(&db);
        let mut routing = RoutingTable::new();
        routing.set_rule(RoutingRule::uniform(t, 0, 0, KEYS - 1, WORKERS, WORKERS));
        let engine = DoraEngine::new(
            db.clone(),
            routing,
            DoraEngineConfig {
                workers: WORKERS,
                lock_timeout: Duration::from_secs(20),
                ..Default::default()
            },
        );
        let log = Arc::new(Mutex::new(Vec::new()));

        // Per-key submission sequence and outstanding outcome (at most
        // one per key, so per-key submission order is well-defined).
        let mut next_seq = [0u64; KEYS as usize];
        let mut pending: HashMap<i64, oneshot::Receiver<TxnOutcome>> = HashMap::new();
        let mut pending_order: VecDeque<i64> = VecDeque::new();
        let mut migrations = 0u64;

        for (kind, key, dest) in ops {
            match kind {
                // Submit an action on `key` (reaping the previous one
                // first so only one is ever outstanding per key).
                0..=6 => {
                    if let Some(rx) = pending.remove(&key) {
                        pending_order.retain(|&k| k != key);
                        wait_commit(&rx, key, next_seq[key as usize] - 1);
                    }
                    let seq = next_seq[key as usize];
                    next_seq[key as usize] += 1;
                    let rx = engine.submit(logged_increment(t, key, seq, log.clone()));
                    pending.insert(key, rx);
                    pending_order.push_back(key);
                }
                // Reap the oldest outstanding outcome.
                7 => {
                    if let Some(k) = pending_order.pop_front() {
                        let rx = pending.remove(&k).expect("tracked");
                        wait_commit(&rx, k, next_seq[k as usize] - 1);
                    }
                }
                // Migrate the block around `key` under live traffic;
                // after earlier carves the block may span owners, in
                // which case the single key still has one owner.
                _ => {
                    let lo = key - key % 4;
                    let moved = engine
                        .migrate_range(t, lo, lo + 4, dest)
                        .or_else(|_| engine.migrate_range(t, key, key + 1, dest));
                    let report = moved.expect("single-key range has a single owner");
                    if report.from != report.to {
                        migrations += 1;
                    }
                }
            }
        }
        for k in pending_order {
            let rx = pending.remove(&k).expect("tracked");
            wait_commit(&rx, k, next_seq[k as usize] - 1);
        }
        engine.shutdown();

        // The log must hold, per key, exactly the sequence 0..n in
        // submission order: nothing lost, duplicated, or reordered.
        let log = log.lock().unwrap();
        let mut per_key: HashMap<i64, Vec<u64>> = HashMap::new();
        for &(key, seq) in log.iter() {
            per_key.entry(key).or_default().push(seq);
        }
        for key in 0..KEYS {
            let expect: Vec<u64> = (0..next_seq[key as usize]).collect();
            let got = per_key.remove(&key).unwrap_or_default();
            prop_assert_eq!(
                &got, &expect,
                "key {} executed out of submission order across {} migrations",
                key, migrations
            );
            // The row agrees with the log.
            let txn = db.begin();
            let row = db
                .get(txn, t, &[Value::BigInt(key)], DORA_POLICY)
                .unwrap()
                .unwrap();
            db.commit(txn).unwrap();
            prop_assert_eq!(row[1].as_i64().unwrap(), expect.len() as i64);
        }
    }
}
