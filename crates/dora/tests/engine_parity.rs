//! A/B parity between the two execution engines.
//!
//! Both engines run over the same storage substrate and expose the same
//! submit/outcome surface, so the same logical transaction can be driven
//! through either. These tests commit multi-partition transactions through
//! the DORA engine — actions on different partitions joined at rendezvous
//! points — and verify the database ends up exactly as it does when the
//! conventional thread-to-transaction engine runs the same logic.

use std::sync::Arc;

use dora_core::action::{ActionSpec, FlowGraph};
use dora_core::executor::{DoraEngine, DoraEngineConfig, DORA_POLICY};
use dora_core::routing::{RoutingRule, RoutingTable};
use dora_engine_conv::{ConvEngine, ConvEngineConfig, TxnRequest, CONV_POLICY};
use dora_storage::db::Database;
use dora_storage::error::StorageError;
use dora_storage::schema::{ColumnDef, TableSchema};
use dora_storage::types::{TableId, Value};

const ACCOUNTS: i64 = 20;
const WORKERS: usize = 4;

/// Loads a fresh `accounts(id BIGINT, balance BIGINT)` table where account
/// `i` starts with balance `100 + i`.
fn load_accounts(db: &Database) -> TableId {
    let t = db
        .create_table(TableSchema::new(
            "accounts",
            vec![
                ColumnDef::new("id", dora_storage::types::DataType::BigInt),
                ColumnDef::new("balance", dora_storage::types::DataType::BigInt),
            ],
            vec![0],
        ))
        .unwrap();
    let txn = db.begin();
    for i in 0..ACCOUNTS {
        db.insert(
            txn,
            t,
            vec![Value::BigInt(i), Value::BigInt(100 + i)],
            CONV_POLICY,
        )
        .unwrap();
    }
    db.commit(txn).unwrap();
    t
}

fn dora_engine(db: Arc<Database>, t: TableId) -> DoraEngine {
    let mut routing = RoutingTable::new();
    routing.set_rule(RoutingRule::uniform(
        t,
        0,
        0,
        ACCOUNTS - 1,
        WORKERS,
        WORKERS,
    ));
    DoraEngine::new(
        db,
        routing,
        DoraEngineConfig {
            workers: WORKERS,
            ..Default::default()
        },
    )
}

/// The transfer as a DORA flow graph: phase 1 reads both balances on their
/// own partitions, the RVP checks funds, phase 2 writes both sides.
/// Outputs reach the phase generator in action order (`outputs[0]` is the
/// `from` read, `outputs[1]` the `to` read), regardless of which partition
/// finished first.
fn transfer_flow(t: TableId, from: i64, to: i64, amount: i64) -> FlowGraph {
    FlowGraph::new(
        "Transfer",
        vec![
            ActionSpec::write(t, from, move |db, txn, ctx| {
                ctx.record(t, from, true);
                let row = db
                    .get(txn, t, &[Value::BigInt(from)], DORA_POLICY)?
                    .ok_or(StorageError::NotFound)?;
                Ok(vec![row[1].clone()])
            }),
            ActionSpec::write(t, to, move |db, txn, ctx| {
                ctx.record(t, to, true);
                let row = db
                    .get(txn, t, &[Value::BigInt(to)], DORA_POLICY)?
                    .ok_or(StorageError::NotFound)?;
                Ok(vec![row[1].clone()])
            }),
        ],
    )
    .then(move |outputs| {
        let from_balance = outputs[0][0].as_i64().ok_or(StorageError::NotFound)?;
        let to_balance = outputs[1][0].as_i64().ok_or(StorageError::NotFound)?;
        if from_balance < amount {
            return Err(StorageError::Aborted("insufficient funds".into()));
        }
        Ok(vec![
            ActionSpec::write(t, from, move |db, txn, _| {
                db.update(
                    txn,
                    t,
                    &[Value::BigInt(from)],
                    &[(1, Value::BigInt(from_balance - amount))],
                    DORA_POLICY,
                )?;
                Ok(vec![])
            }),
            ActionSpec::write(t, to, move |db, txn, _| {
                db.update(
                    txn,
                    t,
                    &[Value::BigInt(to)],
                    &[(1, Value::BigInt(to_balance + amount))],
                    DORA_POLICY,
                )?;
                Ok(vec![])
            }),
        ])
    })
}

/// The same transfer as a conventional transaction body.
fn transfer_request(t: TableId, from: i64, to: i64, amount: i64) -> TxnRequest {
    TxnRequest::new("Transfer", move |db, txn, ctx| {
        ctx.record(t, from, true);
        let from_row = db
            .get(txn, t, &[Value::BigInt(from)], CONV_POLICY)?
            .ok_or(StorageError::NotFound)?;
        let from_balance = from_row[1].as_i64().unwrap();
        if from_balance < amount {
            return Err(StorageError::Aborted("insufficient funds".into()));
        }
        ctx.record(t, to, true);
        let to_row = db
            .get(txn, t, &[Value::BigInt(to)], CONV_POLICY)?
            .ok_or(StorageError::NotFound)?;
        let to_balance = to_row[1].as_i64().unwrap();
        db.update(
            txn,
            t,
            &[Value::BigInt(from)],
            &[(1, Value::BigInt(from_balance - amount))],
            CONV_POLICY,
        )?;
        db.update(
            txn,
            t,
            &[Value::BigInt(to)],
            &[(1, Value::BigInt(to_balance + amount))],
            CONV_POLICY,
        )?;
        Ok(())
    })
}

fn sorted_rows(db: &Database, t: TableId) -> Vec<(i64, i64)> {
    let mut rows: Vec<(i64, i64)> = db
        .scan(t)
        .unwrap()
        .into_iter()
        .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
        .collect();
    rows.sort_unstable();
    rows
}

#[test]
fn multi_partition_transfer_matches_conventional_engine() {
    // Two identical databases, one per engine.
    let dora_db = Arc::new(Database::default());
    let conv_db = Arc::new(Database::default());
    let dora_t = load_accounts(&dora_db);
    let conv_t = load_accounts(&conv_db);

    let dora = dora_engine(dora_db.clone(), dora_t);
    let conv = ConvEngine::new(
        conv_db.clone(),
        ConvEngineConfig {
            workers: WORKERS,
            max_retries: 20,
        },
    );

    // Accounts 2 and 17 live on different partitions of the 4-way uniform
    // rule over [0, 19] (partition 0 and partition 3).
    let routing = dora.routing();
    let rule = routing.rule(dora_t).unwrap();
    assert_ne!(
        rule.owner_of(2),
        rule.owner_of(17),
        "test premise: two partitions"
    );

    let dora_outcome = dora.execute(transfer_flow(dora_t, 17, 2, 30));
    let conv_outcome = conv.execute(transfer_request(conv_t, 17, 2, 30));
    assert!(dora_outcome.is_committed(), "{dora_outcome:?}");
    assert!(conv_outcome.is_committed(), "{conv_outcome:?}");

    assert_eq!(sorted_rows(&dora_db, dora_t), sorted_rows(&conv_db, conv_t));
    // Spot-check the actual movement: 17 started at 117, 2 at 102.
    let rows = sorted_rows(&dora_db, dora_t);
    assert_eq!(rows[17], (17, 87));
    assert_eq!(rows[2], (2, 132));

    dora.shutdown();
    conv.shutdown();
}

#[test]
fn insufficient_funds_aborts_identically_on_both_engines() {
    let dora_db = Arc::new(Database::default());
    let conv_db = Arc::new(Database::default());
    let dora_t = load_accounts(&dora_db);
    let conv_t = load_accounts(&conv_db);

    let dora = dora_engine(dora_db.clone(), dora_t);
    let conv = ConvEngine::new(
        conv_db.clone(),
        ConvEngineConfig {
            workers: WORKERS,
            max_retries: 20,
        },
    );

    // Account 3 holds 103: moving 10_000 must abort and change nothing.
    let dora_outcome = dora.execute(transfer_flow(dora_t, 3, 12, 10_000));
    let conv_outcome = conv.execute(transfer_request(conv_t, 3, 12, 10_000));
    assert!(!dora_outcome.is_committed());
    assert!(!conv_outcome.is_committed());

    assert_eq!(sorted_rows(&dora_db, dora_t), sorted_rows(&conv_db, conv_t));
    assert_eq!(sorted_rows(&dora_db, dora_t)[3], (3, 103));

    dora.shutdown();
    conv.shutdown();
}

#[test]
fn concurrent_secondary_audit_never_observes_torn_or_uncommitted_state() {
    // Writers hammer cross-partition transfers while auditors continuously
    // sum ALL balances through the secondary validated-read path — on both
    // engines. Any torn tuple or uncommitted intermediate state would make
    // an audit's sum diverge from the conserved total; the workload's
    // audit forms flag exactly that with a distinctive "torn total" abort,
    // which this test treats as fatal. Blocked audits (in-flight writers)
    // may abort retryably — but only visibly, never by serving dirty data.
    use dora_workloads::transfer::{
        audit_flow, audit_request, transfer_flow as wl_transfer_flow,
        transfer_request as wl_transfer_request, TransferMix, TransferWorkload,
    };

    let wl = TransferWorkload {
        accounts: ACCOUNTS,
        initial_balance: 100,
    };
    let dora_db = Arc::new(Database::default());
    let conv_db = Arc::new(Database::default());
    let dora_t = wl.load(&dora_db);
    let conv_t = wl.load(&conv_db);
    let total = wl.total_balance();

    let dora = Arc::new(DoraEngine::new(
        dora_db.clone(),
        wl.routing(dora_t, WORKERS),
        DoraEngineConfig {
            workers: WORKERS,
            ..Default::default()
        },
    ));
    let conv = Arc::new(ConvEngine::new(
        conv_db.clone(),
        ConvEngineConfig {
            workers: WORKERS,
            max_retries: 50,
        },
    ));

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut writers = Vec::new();
    for c in 0..2u64 {
        let (dora, conv) = (dora.clone(), conv.clone());
        let stop = stop.clone();
        writers.push(std::thread::spawn(move || {
            let mut mix = TransferMix::new(ACCOUNTS, c + 1);
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let (from, to, amount) = mix.next_transfer();
                let _ = dora.execute(wl_transfer_flow(dora_t, from, to, amount));
                let _ = conv.execute(wl_transfer_request(conv_t, from, to, amount));
            }
        }));
    }

    let mut auditors = Vec::new();
    for _ in 0..2 {
        let (dora, conv) = (dora.clone(), conv.clone());
        auditors.push(std::thread::spawn(move || {
            let (mut dora_ok, mut conv_ok) = (0u64, 0u64);
            for _ in 0..25 {
                match dora.execute(audit_flow(dora_t, 0, ACCOUNTS - 1, Some(total))) {
                    dora_core::executor::TxnOutcome::Committed => dora_ok += 1,
                    dora_core::executor::TxnOutcome::Aborted { reason } => {
                        assert!(
                            !reason.contains("torn"),
                            "DORA audit observed a torn/uncommitted sum: {reason}"
                        );
                    }
                }
                match conv.execute(audit_request(conv_t, 0, ACCOUNTS - 1, Some(total))) {
                    o if o.is_committed() => conv_ok += 1,
                    dora_engine_conv::TxnOutcome::Aborted { reason } => {
                        assert!(
                            !reason.contains("torn"),
                            "conv audit observed a torn/uncommitted sum: {reason}"
                        );
                    }
                    _ => unreachable!(),
                }
            }
            (dora_ok, conv_ok)
        }));
    }

    let (mut dora_ok, mut conv_ok) = (0u64, 0u64);
    for a in auditors {
        let (d, c) = a.join().unwrap();
        dora_ok += d;
        conv_ok += c;
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }

    assert!(dora_ok > 0, "no DORA audit ever committed under contention");
    assert!(conv_ok > 0, "no conv audit ever committed under contention");
    let stats = dora.stats();
    assert!(stats.secondary >= 50, "audits rode the secondary path");
    // Quiesced end state: both engines still conserve the total and agree.
    assert_eq!(wl.current_total(&dora_db, dora_t), total);
    assert_eq!(wl.current_total(&conv_db, conv_t), total);
}

#[test]
fn concurrent_transfer_mix_preserves_total_balance_on_both_engines() {
    let dora_db = Arc::new(Database::default());
    let conv_db = Arc::new(Database::default());
    let dora_t = load_accounts(&dora_db);
    let conv_t = load_accounts(&conv_db);

    let dora = Arc::new(dora_engine(dora_db.clone(), dora_t));
    let conv = Arc::new(ConvEngine::new(
        conv_db.clone(),
        ConvEngineConfig {
            workers: WORKERS,
            max_retries: 50,
        },
    ));

    // A deterministic mix of small transfers from several client threads.
    // Individual interleavings differ between engines, so per-account
    // balances can diverge; the conserved quantity — the total — must not,
    // and neither engine may lose a committed transfer.
    let mut dora_clients = Vec::new();
    let mut conv_clients = Vec::new();
    for c in 0..4i64 {
        let dora = dora.clone();
        dora_clients.push(std::thread::spawn(move || {
            let mut committed = 0;
            for i in 0..25i64 {
                let from = (c * 25 + i * 7) % ACCOUNTS;
                let to = (from + 5 + i) % ACCOUNTS;
                if from == to {
                    continue;
                }
                if dora
                    .execute(transfer_flow(dora_t, from, to, 1))
                    .is_committed()
                {
                    committed += 1;
                }
            }
            committed
        }));
        let conv = conv.clone();
        conv_clients.push(std::thread::spawn(move || {
            let mut committed = 0;
            for i in 0..25i64 {
                let from = (c * 25 + i * 7) % ACCOUNTS;
                let to = (from + 5 + i) % ACCOUNTS;
                if from == to {
                    continue;
                }
                if conv
                    .execute(transfer_request(conv_t, from, to, 1))
                    .is_committed()
                {
                    committed += 1;
                }
            }
            committed
        }));
    }
    let dora_committed: i64 = dora_clients.into_iter().map(|c| c.join().unwrap()).sum();
    let conv_committed: i64 = conv_clients.into_iter().map(|c| c.join().unwrap()).sum();

    let initial_total: i64 = (0..ACCOUNTS).map(|i| 100 + i).sum();
    let dora_total: i64 = sorted_rows(&dora_db, dora_t).iter().map(|(_, b)| b).sum();
    let conv_total: i64 = sorted_rows(&conv_db, conv_t).iter().map(|(_, b)| b).sum();
    assert_eq!(
        dora_total, initial_total,
        "DORA conserved the total balance"
    );
    assert_eq!(
        conv_total, initial_total,
        "conv conserved the total balance"
    );
    assert!(dora_committed > 0 && conv_committed > 0);

    // DORA must have gone through the thread-to-data path: multi-partition
    // transactions joined at RVPs, no centralized lock sections.
    let stats = dora.stats();
    assert_eq!(stats.committed, dora_committed as u64);
    assert!(
        stats.actions >= stats.committed * 4,
        "4 actions per transfer"
    );
}
