//! Graceful degradation at the engine level: a poisoned WAL turns every
//! write commit into a visible abort, both engines count the failures in
//! `log_io_errors`, and read-only traffic keeps serving throughout.

use std::sync::Arc;

use dora_core::action::{ActionSpec, FlowGraph};
use dora_core::executor::{DoraEngine, DoraEngineConfig, DORA_POLICY};
use dora_core::routing::{RoutingRule, RoutingTable};
use dora_engine_conv::{ConvEngine, ConvEngineConfig, TxnRequest, CONV_POLICY};
use dora_storage::db::{Database, LockingPolicy};
use dora_storage::error::StorageError;
use dora_storage::io::{FaultPlan, SimFs};
use dora_storage::schema::{ColumnDef, TableSchema};
use dora_storage::segment::WalConfig;
use dora_storage::types::{DataType, TableId, Value};

const ACCOUNTS: i64 = 8;

/// Fresh database with a WAL on the given `SimFs` and a loaded
/// `accounts(id, balance)` table.
fn wal_backed_db(fs: &SimFs) -> (Arc<Database>, TableId) {
    let db = Database::default();
    let t = db
        .create_table(TableSchema::new(
            "accounts",
            vec![
                ColumnDef::new("id", DataType::BigInt),
                ColumnDef::new("balance", DataType::BigInt),
            ],
            vec![0],
        ))
        .unwrap();
    db.recover_and_attach_wal(WalConfig::sim("/wal", fs.clone()))
        .unwrap();
    let txn = db.begin();
    for i in 0..ACCOUNTS {
        db.insert(
            txn,
            t,
            vec![Value::BigInt(i), Value::BigInt(100)],
            LockingPolicy::Bypass,
        )
        .unwrap();
    }
    db.commit_policy(txn, LockingPolicy::Bypass).unwrap();
    (Arc::new(db), t)
}

/// Schedules the NEXT fsync to fail (dropping dirty pages), which
/// poisons the log.
fn poison_next_sync(fs: &SimFs) {
    let (_, syncs, _) = fs.op_counts();
    fs.set_faults(FaultPlan {
        fail_sync: Some(syncs + 1),
        ..FaultPlan::default()
    });
}

fn bump_request(t: TableId, id: i64) -> TxnRequest {
    TxnRequest::new("Bump", move |db, txn, _| {
        db.update(
            txn,
            t,
            &[Value::BigInt(id)],
            &[(1, Value::BigInt(1))],
            CONV_POLICY,
        )?;
        Ok(())
    })
}

fn read_request(t: TableId, id: i64) -> TxnRequest {
    TxnRequest::new("Read", move |db, txn, _| {
        db.get(txn, t, &[Value::BigInt(id)], CONV_POLICY)?
            .ok_or(StorageError::NotFound)?;
        Ok(())
    })
}

#[test]
fn conventional_engine_counts_log_io_errors_and_keeps_serving_reads() {
    let fs = SimFs::new();
    let (db, t) = wal_backed_db(&fs);
    let engine = ConvEngine::new(
        Arc::clone(&db),
        ConvEngineConfig {
            workers: 2,
            max_retries: 3,
        },
    );

    assert!(engine.execute(bump_request(t, 0)).is_committed());
    assert_eq!(engine.stats().log_io_errors, 0);

    poison_next_sync(&fs);
    let outcome = engine.execute(bump_request(t, 1));
    assert!(
        !outcome.is_committed(),
        "a write commit over a poisoned log must abort, got {outcome:?}"
    );
    assert!(engine.stats().log_io_errors >= 1);

    // Later writes keep failing visibly…
    assert!(!engine.execute(bump_request(t, 2)).is_committed());
    assert!(engine.stats().log_io_errors >= 2);
    // …while read-only transactions still commit (nothing to force).
    assert!(engine.execute(read_request(t, 3)).is_committed());

    engine.shutdown();
}

#[test]
fn dora_engine_counts_log_io_errors_and_keeps_serving_reads() {
    let fs = SimFs::new();
    let (db, t) = wal_backed_db(&fs);
    let mut routing = RoutingTable::new();
    routing.set_rule(RoutingRule::uniform(t, 0, 0, ACCOUNTS - 1, 2, 2));
    let engine = DoraEngine::new(
        Arc::clone(&db),
        routing,
        DoraEngineConfig {
            workers: 2,
            ..Default::default()
        },
    );

    let bump = |id: i64| {
        FlowGraph::new(
            "Bump",
            vec![ActionSpec::write(t, id, move |db, txn, _| {
                db.update(
                    txn,
                    t,
                    &[Value::BigInt(id)],
                    &[(1, Value::BigInt(1))],
                    DORA_POLICY,
                )?;
                Ok(vec![])
            })],
        )
    };
    let read = |id: i64| {
        FlowGraph::new(
            "Read",
            vec![ActionSpec::read(t, id, move |db, txn, _| {
                db.get(txn, t, &[Value::BigInt(id)], DORA_POLICY)?
                    .ok_or(StorageError::NotFound)?;
                Ok(vec![])
            })],
        )
    };

    assert!(engine.execute(bump(0)).is_committed());
    assert_eq!(engine.stats().log_io_errors, 0);

    poison_next_sync(&fs);
    let outcome = engine.execute(bump(1));
    assert!(
        !outcome.is_committed(),
        "a write commit over a poisoned log must abort, got {outcome:?}"
    );
    assert!(engine.stats().log_io_errors >= 1);

    assert!(!engine.execute(bump(2)).is_committed());
    assert!(engine.stats().log_io_errors >= 2);
    assert!(engine.execute(read(3)).is_committed());

    engine.shutdown();
}
