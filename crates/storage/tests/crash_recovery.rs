//! Kill-and-restart crash recovery against the REAL file system.
//!
//! The test re-executes its own binary as a child process (`CRASH_MODE`
//! env selects the role). The traffic child recovers whatever state the
//! previous incarnation left, then runs seeded transfer transactions
//! against a `std::fs`-backed WAL, appending each transaction's id to a
//! separate ack file only AFTER `commit` returned. The parent SIGKILLs
//! it at a seeded random point, restarts a verifier, and demands:
//!
//! * every acked transaction is present after recovery (durability),
//! * the balance table equals replaying the op log from the initial
//!   state (atomicity — no half-applied transfer survives),
//! * total money is conserved,
//! * validated reads serve with zero retries.
//!
//! Traffic also checkpoints every 64 transactions, so kills land before,
//! during, and after fuzzy checkpoints and segment truncation.
//!
//! Iterations default to 8 for local runs; CI sets `CRASH_ITERS=50`.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

use dora_storage::db::{Database, LockingPolicy};
use dora_storage::schema::{ColumnDef, TableSchema};
use dora_storage::segment::WalConfig;
use dora_storage::types::{TableId, Value};

const P: LockingPolicy = LockingPolicy::Centralized;
const ACCOUNTS: i64 = 16;
const INITIAL: i64 = 1_000;
const CHECKPOINT_EVERY: u64 = 64;
const MAX_OPS_PER_RUN: u64 = 100_000;
const TEST_NAME: &str = "crash_and_restart_preserves_every_acked_transaction";

fn xorshift(mut x: u64) -> u64 {
    x |= 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

struct Harness {
    db: Database,
    accounts: TableId,
    oplog: TableId,
}

/// Opens (or re-opens) the database over the WAL directory, recovering
/// whatever the previous incarnation made durable.
///
/// `CRASH_POOL_FRAMES` swaps the default in-memory store (4096 frames,
/// never evicts at this table size) for a real file-backed page store
/// under `root` with that many frames: CI runs one pass at 64 frames so
/// kills land while eviction and background writeback are churning
/// pages into a `pages.db` that *survives* the SIGKILL — recovery must
/// overwrite whatever stale or half-flushed pages the dead pool left
/// behind, not merely rebuild from scratch (children inherit the
/// parent's environment).
fn open(root: &Path) -> Harness {
    let db = match std::env::var("CRASH_POOL_FRAMES")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(frames) => {
            let store = dora_storage::buffer::FilePageStore::open(
                &dora_storage::io::StdFs,
                &root.join("pages"),
            )
            .expect("open file-backed page store");
            Database::with_store(
                dora_storage::db::DatabaseConfig {
                    buffer_frames: frames,
                    ..Default::default()
                },
                std::sync::Arc::new(store),
            )
        }
        None => Database::default(),
    };
    let accounts = db
        .create_table(TableSchema::new(
            "accounts",
            vec![
                ColumnDef::new("id", dora_storage::types::DataType::BigInt),
                ColumnDef::new("bal", dora_storage::types::DataType::BigInt),
            ],
            vec![0],
        ))
        .unwrap();
    let oplog = db
        .create_table(TableSchema::new(
            "oplog",
            vec![
                ColumnDef::new("op_id", dora_storage::types::DataType::BigInt),
                ColumnDef::new("src", dora_storage::types::DataType::BigInt),
                ColumnDef::new("dst", dora_storage::types::DataType::BigInt),
                ColumnDef::new("amt", dora_storage::types::DataType::BigInt),
            ],
            vec![0],
        ))
        .unwrap();
    db.recover_and_attach_wal(WalConfig::std_fs(root.join("wal")))
        .unwrap();
    Harness {
        db,
        accounts,
        oplog,
    }
}

/// Fully-written ack lines (a torn final line without `\n` is ignored —
/// the crash may have struck mid-append).
fn read_acks(root: &Path) -> Vec<i64> {
    let bytes = std::fs::read(root.join("acks.txt")).unwrap_or_default();
    let text = String::from_utf8_lossy(&bytes);
    let mut acks = Vec::new();
    for line in text.split_inclusive('\n') {
        if let Some(stripped) = line.strip_suffix('\n') {
            acks.push(stripped.parse::<i64>().expect("complete ack line"));
        }
    }
    acks
}

fn balances(h: &Harness) -> BTreeMap<i64, i64> {
    let txn = h.db.begin();
    let rows =
        h.db.scan_validated(
            txn,
            h.accounts,
            &[Value::BigInt(i64::MIN)],
            &[Value::BigInt(i64::MAX)],
            P,
        )
        .unwrap();
    h.db.commit_policy(txn, P).unwrap();
    rows.iter()
        .map(|r| match (&r[0], &r[1]) {
            (Value::BigInt(id), Value::BigInt(bal)) => (*id, *bal),
            other => panic!("bad accounts row: {other:?}"),
        })
        .collect()
}

/// `op_id -> (src, dst, amt)` from the committed op log.
fn oplog_rows(h: &Harness) -> BTreeMap<i64, (i64, i64, i64)> {
    let txn = h.db.begin();
    let rows =
        h.db.scan_validated(
            txn,
            h.oplog,
            &[Value::BigInt(i64::MIN)],
            &[Value::BigInt(i64::MAX)],
            P,
        )
        .unwrap();
    h.db.commit_policy(txn, P).unwrap();
    rows.iter()
        .map(|r| match (&r[0], &r[1], &r[2], &r[3]) {
            (Value::BigInt(op), Value::BigInt(s), Value::BigInt(d), Value::BigInt(a)) => {
                (*op, (*s, *d, *a))
            }
            other => panic!("bad oplog row: {other:?}"),
        })
        .collect()
}

/// The full post-crash audit. Panics (test failure in the child, exit
/// code 101) on any violated invariant.
fn verify(root: &Path, h: &Harness) {
    let bals = balances(h);
    let ops = oplog_rows(h);
    let acks = read_acks(root);

    for op_id in &acks {
        assert!(
            ops.contains_key(op_id),
            "acked transaction {op_id} lost after recovery \
             ({} acked, {} in oplog)",
            acks.len(),
            ops.len()
        );
    }

    // Transfers only start once all accounts exist, so every op in the
    // log ran against the full population.
    if !ops.is_empty() {
        assert_eq!(
            bals.len() as i64,
            ACCOUNTS,
            "oplog non-empty on partial load"
        );
    }
    let total: i64 = bals.values().sum();
    assert_eq!(
        total,
        INITIAL * bals.len() as i64,
        "money not conserved: {bals:?}"
    );

    // Atomicity: replaying the op log from the initial state must land
    // exactly on the recovered balances — an oplog row without its two
    // balance updates (or vice versa) cannot exist.
    let mut model: BTreeMap<i64, i64> = bals.keys().map(|&id| (id, INITIAL)).collect();
    for (op_id, (src, dst, amt)) in &ops {
        let s = model
            .get_mut(src)
            .unwrap_or_else(|| panic!("op {op_id} names unknown account {src}"));
        *s -= amt;
        *model.get_mut(dst).unwrap() += amt;
    }
    assert_eq!(model, bals, "balances diverge from op-log replay");

    assert_eq!(
        h.db.counters().validated_retries,
        0,
        "recovered database must serve validated reads without retries"
    );
}

/// Ensures all `ACCOUNTS` rows exist (the previous incarnation may have
/// died mid-load); each insert is its own transaction.
fn load_missing_accounts(h: &Harness) {
    for id in 0..ACCOUNTS {
        let txn = h.db.begin();
        let present =
            h.db.get(txn, h.accounts, &[Value::BigInt(id)], P)
                .unwrap()
                .is_some();
        if !present {
            h.db.insert(
                txn,
                h.accounts,
                vec![Value::BigInt(id), Value::BigInt(INITIAL)],
                P,
            )
            .unwrap();
        }
        h.db.commit_policy(txn, P).unwrap();
    }
}

/// Runs seeded transfers until killed (or a generous cap). Every commit
/// is acked to `acks.txt` AFTER `commit` returns, with its own fsync.
fn run_traffic(root: &Path) {
    let h = open(root);
    verify(root, &h); // each incarnation audits its inheritance first
    load_missing_accounts(&h);

    let next_op = oplog_rows(&h).keys().max().copied().unwrap_or(-1) + 1;

    // Repair a torn ack tail before appending anything: a partial final
    // line means the SIGKILL struck mid-append. The commit behind it was
    // durable, but its ack never completed — drop the fragment, or the
    // next ack would concatenate onto it and forge a bogus op id.
    let ack_path = root.join("acks.txt");
    if let Ok(bytes) = std::fs::read(&ack_path) {
        if !bytes.is_empty() && bytes.last() != Some(&b'\n') {
            let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(&ack_path)
                .unwrap();
            f.set_len(keep as u64).unwrap();
            f.sync_all().unwrap();
        }
    }
    let mut acks = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&ack_path)
        .unwrap();

    for op_id in next_op..next_op + MAX_OPS_PER_RUN as i64 {
        let r0 = xorshift(0x9e37_79b9 ^ op_id as u64);
        let r1 = xorshift(r0);
        let r2 = xorshift(r1);
        let src = (r0 % ACCOUNTS as u64) as i64;
        let dst = ((r1 % (ACCOUNTS as u64 - 1) + 1 + src as u64) % ACCOUNTS as u64) as i64;
        let amt = (r2 % 10) as i64 + 1;

        let txn = h.db.begin();
        let get_bal = |id: i64| -> i64 {
            match h.db.get(txn, h.accounts, &[Value::BigInt(id)], P) {
                Ok(Some(row)) => match row[1] {
                    Value::BigInt(b) => b,
                    _ => panic!("bad balance"),
                },
                other => panic!("read account {id}: {other:?}"),
            }
        };
        let (sb, db_) = (get_bal(src), get_bal(dst));
        h.db.update(
            txn,
            h.accounts,
            &[Value::BigInt(src)],
            &[(1, Value::BigInt(sb - amt))],
            P,
        )
        .unwrap();
        h.db.update(
            txn,
            h.accounts,
            &[Value::BigInt(dst)],
            &[(1, Value::BigInt(db_ + amt))],
            P,
        )
        .unwrap();
        h.db.insert(
            txn,
            h.oplog,
            vec![
                Value::BigInt(op_id),
                Value::BigInt(src),
                Value::BigInt(dst),
                Value::BigInt(amt),
            ],
            P,
        )
        .unwrap();
        h.db.commit_policy(txn, P).unwrap();

        // Ack strictly after the commit was acknowledged durable. One
        // `write_all` call so the id and its newline cannot be torn
        // apart by a kill between two write syscalls.
        acks.write_all(format!("{op_id}\n").as_bytes()).unwrap();
        acks.sync_all().unwrap();

        if (op_id as u64 + 1).is_multiple_of(CHECKPOINT_EVERY) {
            h.db.checkpoint().unwrap();
        }
    }
}

fn spawn_child(root: &Path, mode: &str) -> std::process::Child {
    Command::new(std::env::current_exe().unwrap())
        .args(["--exact", TEST_NAME, "--test-threads=1", "--nocapture"])
        .env("CRASH_DIR", root)
        .env("CRASH_MODE", mode)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn crash-test child")
}

fn assert_child_ok(child: std::process::Child, what: &str) {
    let out = child.wait_with_output().expect("wait for child");
    assert!(
        out.status.success(),
        "{what} child failed ({:?}):\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}

fn parent(root: &PathBuf) {
    let _ = std::fs::remove_dir_all(root);
    std::fs::create_dir_all(root).unwrap();

    let iters: u64 = std::env::var("CRASH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let mut seed: u64 = std::env::var("CRASH_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC0FFEE);

    for iter in 0..iters {
        let mut traffic = spawn_child(root, "traffic");
        seed = xorshift(seed);
        let delay_ms = 20 + seed % 130;
        std::thread::sleep(std::time::Duration::from_millis(delay_ms));
        // SIGKILL: no destructors, no flushes — a real crash.
        let _ = traffic.kill();
        let _ = traffic.wait();

        let verify_child = spawn_child(root, "verify");
        assert_child_ok(verify_child, &format!("verify (iteration {iter})"));
    }

    // The harness is vacuous if the children never commit anything:
    // demand real acked traffic accumulated across the incarnations.
    let acked = read_acks(root).len();
    println!("crash harness: {iters} kills survived, {acked} acked transactions");
    assert!(
        acked > 0,
        "no transaction was ever acked — the traffic child is not making progress"
    );

    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn crash_and_restart_preserves_every_acked_transaction() {
    match std::env::var("CRASH_MODE").as_deref() {
        Ok("traffic") => {
            let root = PathBuf::from(std::env::var("CRASH_DIR").unwrap());
            run_traffic(&root);
        }
        Ok("verify") => {
            let root = PathBuf::from(std::env::var("CRASH_DIR").unwrap());
            let h = open(&root);
            verify(&root, &h);
        }
        _ => {
            let root = std::env::temp_dir().join(format!("dora-crash-{}", std::process::id()));
            parent(&root);
        }
    }
}
