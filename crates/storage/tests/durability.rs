//! End-to-end durability: the disk-backed WAL under clean restarts,
//! simulated crashes, fault-injected I/O, and byte-level log truncation.
//!
//! Everything here drives the public surface only: build a [`Database`],
//! attach a WAL with [`Database::recover_and_attach_wal`], run
//! transactions, crash the simulated file system, recover into a fresh
//! database, and compare. The [`SimFs`] fault plans make the failure
//! cases deterministic — a test names the exact append/sync/create
//! operation that misbehaves.

use std::collections::BTreeMap;

use dora_storage::db::{Database, LockingPolicy};
use dora_storage::error::StorageError;
use dora_storage::io::{FaultPlan, SimFs, WalFs};
use dora_storage::schema::{ColumnDef, TableSchema};
use dora_storage::segment::{read_log, WalConfig};
use dora_storage::types::{DataType, TableId, Value};
use dora_storage::wal::LogPayload;

const P: LockingPolicy = LockingPolicy::Centralized;

/// A two-column `accounts(id BigInt PK, bal BigInt)` table.
fn accounts_schema() -> TableSchema {
    TableSchema::new(
        "accounts",
        vec![
            ColumnDef::new("id", DataType::BigInt),
            ColumnDef::new("bal", DataType::BigInt),
        ],
        vec![0],
    )
}

fn fresh_db() -> (Database, TableId) {
    let db = Database::default();
    let t = db.create_table(accounts_schema()).unwrap();
    (db, t)
}

fn insert_account(db: &Database, t: TableId, id: i64, bal: i64) {
    let txn = db.begin();
    db.insert(txn, t, vec![Value::BigInt(id), Value::BigInt(bal)], P)
        .unwrap();
    db.commit_policy(txn, P).unwrap();
}

fn set_balance(db: &Database, t: TableId, id: i64, bal: i64) {
    let txn = db.begin();
    db.update(txn, t, &[Value::BigInt(id)], &[(1, Value::BigInt(bal))], P)
        .unwrap();
    db.commit_policy(txn, P).unwrap();
}

fn delete_account(db: &Database, t: TableId, id: i64) {
    let txn = db.begin();
    db.delete(txn, t, &[Value::BigInt(id)], P).unwrap();
    db.commit_policy(txn, P).unwrap();
}

/// Committed state as `id -> bal`, via the validated-read scan.
fn balances(db: &Database, t: TableId) -> BTreeMap<i64, i64> {
    let txn = db.begin();
    let rows = db
        .scan_validated(
            txn,
            t,
            &[Value::BigInt(i64::MIN)],
            &[Value::BigInt(i64::MAX)],
            P,
        )
        .unwrap();
    db.commit_policy(txn, P).unwrap();
    rows.iter()
        .map(|r| match (&r[0], &r[1]) {
            (Value::BigInt(id), Value::BigInt(bal)) => (*id, *bal),
            other => panic!("unexpected row shape: {other:?}"),
        })
        .collect()
}

#[test]
fn committed_work_survives_a_simulated_crash_and_restart() {
    let fs = SimFs::new();
    let cfg = WalConfig::sim("/wal", fs.clone()).with_segment_bytes(512);

    let expected = {
        let (db, t) = fresh_db();
        let report = db.recover_and_attach_wal(cfg.clone()).unwrap();
        assert_eq!(report.redone, 0, "fresh log has nothing to redo");

        for id in 0..20 {
            insert_account(&db, t, id, 1_000 + id);
        }
        set_balance(&db, t, 3, 42);
        delete_account(&db, t, 7);

        let committed = balances(&db, t);

        // An uncommitted transaction: its effects must NOT survive. It
        // runs under `Bypass` so its row locks don't block anything
        // while it idles in flight; the crash strikes mid-transaction.
        let loser = db.begin();
        let b = LockingPolicy::Bypass;
        db.insert(loser, t, vec![Value::BigInt(999), Value::BigInt(1)], b)
            .unwrap();
        db.update(loser, t, &[Value::BigInt(5)], &[(1, Value::BigInt(-1))], b)
            .unwrap();

        committed
    };
    assert_eq!(expected.len(), 19);
    assert_eq!(expected[&3], 42);
    assert!(!expected.contains_key(&7));

    // Crash: synced bytes survive, unsynced bytes are torn.
    fs.crash(0xdead_beef);

    let (db2, t2) = fresh_db();
    let report = db2.recover_and_attach_wal(cfg.clone()).unwrap();
    assert!(report.redone > 0);
    assert_eq!(balances(&db2, t2), expected);
    assert_eq!(
        db2.counters().validated_retries,
        0,
        "recovered database must serve validated reads without retries"
    );

    // The reattached writer keeps working: new commits are durable too.
    insert_account(&db2, t2, 777, 7);
    fs.crash(0x5eed);

    let (db3, t3) = fresh_db();
    db3.recover_and_attach_wal(cfg).unwrap();
    let mut expected2 = expected.clone();
    expected2.insert(777, 7);
    assert_eq!(balances(&db3, t3), expected2);
}

#[test]
fn fuzzy_checkpoint_truncates_segments_and_restart_uses_the_image() {
    let fs = SimFs::new();
    let cfg = WalConfig::sim("/wal", fs.clone()).with_segment_bytes(256);

    let (db, t) = fresh_db();
    db.recover_and_attach_wal(cfg.clone()).unwrap();

    for id in 0..30 {
        insert_account(&db, t, id, id * 10);
    }
    let segments_before = wal_segment_names(&fs);
    assert!(
        segments_before.len() > 2,
        "tiny segments must have rotated: {segments_before:?}"
    );

    let base = db.checkpoint().unwrap();
    assert!(base > 0);

    let segments_after = wal_segment_names(&fs);
    assert!(
        segments_after.len() < segments_before.len(),
        "checkpoint must truncate sealed segments below keep_from \
         ({segments_before:?} -> {segments_after:?})"
    );
    assert!(
        wal_checkpoint_names(&fs).iter().any(|n| n.ends_with(".ck")),
        "checkpoint image file must exist"
    );

    // Post-checkpoint traffic, then crash.
    set_balance(&db, t, 0, -5);
    delete_account(&db, t, 29);
    let expected = balances(&db, t);
    fs.crash(17);

    let (db2, t2) = fresh_db();
    let report = db2.recover_and_attach_wal(cfg).unwrap();
    assert_eq!(report.checkpoint_lsn, base);
    assert!(
        report.snapshot_rows > 0,
        "recovery must have loaded rows from the checkpoint image"
    );
    assert_eq!(balances(&db2, t2), expected);
    assert_eq!(db2.counters().validated_retries, 0);
}

#[test]
fn checkpoint_with_an_active_transaction_keeps_its_log_suffix() {
    let fs = SimFs::new();
    let cfg = WalConfig::sim("/wal", fs.clone()).with_segment_bytes(256);

    let (db, t) = fresh_db();
    db.recover_and_attach_wal(cfg.clone()).unwrap();
    for id in 0..10 {
        insert_account(&db, t, id, id);
    }

    // An in-flight writer pins the truncation point at its first LSN.
    let active = db.begin();
    db.update(
        active,
        t,
        &[Value::BigInt(0)],
        &[(1, Value::BigInt(123))],
        P,
    )
    .unwrap();
    for id in 10..20 {
        insert_account(&db, t, id, id);
    }

    db.checkpoint().unwrap();
    db.commit_policy(active, P).unwrap();
    let expected = balances(&db, t);
    fs.crash(3);

    let (db2, t2) = fresh_db();
    db2.recover_and_attach_wal(cfg.clone()).unwrap();
    assert_eq!(balances(&db2, t2), expected);
    assert_eq!(expected[&0], 123, "straddling transaction committed");

    // Same checkpoint, but the straddler ABORTS after the image was cut:
    // its undo must still be possible from the retained log suffix.
    let loser = db2.begin();
    db2.update(
        loser,
        t2,
        &[Value::BigInt(1)],
        &[(1, Value::BigInt(-99))],
        P,
    )
    .unwrap();
    db2.checkpoint().unwrap();
    fs.crash(29);

    let (db3, t3) = fresh_db();
    db3.recover_and_attach_wal(cfg).unwrap();
    assert_eq!(
        balances(&db3, t3),
        expected,
        "in-flight update at crash time must be rolled back"
    );
}

fn wal_segment_names(fs: &SimFs) -> Vec<String> {
    let mut v: Vec<String> = fs
        .list_dir("/wal".as_ref())
        .unwrap()
        .into_iter()
        .filter(|n| n.ends_with(".wal"))
        .collect();
    v.sort();
    v
}

fn wal_checkpoint_names(fs: &SimFs) -> Vec<String> {
    let mut v: Vec<String> = fs
        .list_dir("/wal".as_ref())
        .unwrap()
        .into_iter()
        .filter(|n| n.ends_with(".ck"))
        .collect();
    v.sort();
    v
}

// ---------------------------------------------------------------------
// Graceful degradation under injected I/O failures (satellite 4)
// ---------------------------------------------------------------------

#[test]
fn fsync_failure_poisons_the_log_but_reads_keep_serving() {
    let fs = SimFs::new();
    let cfg = WalConfig::sim("/wal", fs.clone());

    let (db, t) = fresh_db();
    db.recover_and_attach_wal(cfg).unwrap();
    for id in 0..5 {
        insert_account(&db, t, id, id);
    }
    let durable = balances(&db, t);

    // The next fsync fails and the kernel drops the dirty pages.
    let (_, syncs, _) = fs.op_counts();
    fs.set_faults(FaultPlan {
        fail_sync: Some(syncs + 1),
        ..FaultPlan::default()
    });

    let txn = db.begin();
    db.insert(txn, t, vec![Value::BigInt(100), Value::BigInt(1)], P)
        .unwrap();
    let err = db.commit_policy(txn, P).unwrap_err();
    assert!(
        matches!(err, StorageError::LogPoisoned(_)),
        "fsync failure over possibly-dropped pages must poison: {err}"
    );
    assert!(!err.is_retryable());
    assert!(db.log_stats().io_errors >= 1);

    // The failed-commit transaction is still active; rolling it back works
    // (undo and CLR appends never touch the file system).
    db.abort_policy(txn, P).unwrap();

    // Every later write commit fails visibly — no silent data loss.
    let txn2 = db.begin();
    db.insert(txn2, t, vec![Value::BigInt(101), Value::BigInt(1)], P)
        .unwrap();
    let err2 = db.commit_policy(txn2, P).unwrap_err();
    assert!(matches!(err2, StorageError::LogPoisoned(_)));
    db.abort_policy(txn2, P).unwrap();

    // Read-only traffic keeps serving: nothing to force, commit succeeds.
    let reader = db.begin();
    let row = db
        .read_validated(reader, t, &[Value::BigInt(3)], P)
        .unwrap();
    assert_eq!(row, Some(vec![Value::BigInt(3), Value::BigInt(3)]));
    db.commit_policy(reader, P).unwrap();
    assert_eq!(balances(&db, t), durable, "rolled-back writes invisible");
}

#[test]
fn segment_create_failure_is_retryable_and_the_commit_succeeds_on_retry() {
    let fs = SimFs::new();
    // Tiny segments: the second commit forces a rotation (a create).
    let cfg = WalConfig::sim("/wal", fs.clone()).with_segment_bytes(96);

    let (db, t) = fresh_db();
    db.recover_and_attach_wal(cfg.clone()).unwrap();
    insert_account(&db, t, 1, 10);

    let (_, _, creates) = fs.op_counts();
    fs.set_faults(FaultPlan {
        fail_create: Some(creates + 1),
        ..FaultPlan::default()
    });

    let txn = db.begin();
    db.insert(txn, t, vec![Value::BigInt(2), Value::BigInt(20)], P)
        .unwrap();
    let err = db.commit_policy(txn, P).unwrap_err();
    assert!(
        matches!(err, StorageError::LogIo(_)),
        "ENOSPC on segment create wrote nothing and must be retryable: {err}"
    );
    assert!(err.is_retryable());
    assert!(db.log_stats().io_errors >= 1);

    // Retry the same commit: the fault was one-shot, so it goes through.
    db.commit_policy(txn, P).unwrap();

    fs.crash(11);
    let (db2, t2) = fresh_db();
    db2.recover_and_attach_wal(cfg).unwrap();
    let got = balances(&db2, t2);
    assert_eq!(got[&1], 10);
    assert_eq!(got[&2], 20, "retried commit must be durable");
}

// ---------------------------------------------------------------------
// Byte-level truncation sweep (satellite 2)
// ---------------------------------------------------------------------

/// Replays the clean prefix of `cfg`'s log through the analysis rules
/// to compute the model state: rows of winners applied in LSN order.
fn model_of_clean_prefix(cfg: &WalConfig) -> (BTreeMap<i64, i64>, usize) {
    let replay = read_log(cfg).unwrap();
    let mut committed = std::collections::HashSet::new();
    for r in &replay.records {
        match r.payload {
            LogPayload::Commit => {
                committed.insert(r.txn);
            }
            LogPayload::Abort => {
                committed.remove(&r.txn);
            }
            _ => {}
        }
    }
    let mut rows = BTreeMap::new();
    for r in &replay.records {
        if r.txn != 0 && !committed.contains(&r.txn) {
            continue;
        }
        match &r.payload {
            LogPayload::Insert { tuple, .. } | LogPayload::Update { after: tuple, .. } => {
                if let (Value::BigInt(id), Value::BigInt(bal)) = (&tuple[0], &tuple[1]) {
                    rows.insert(*id, *bal);
                }
            }
            LogPayload::Delete { key, .. } => {
                if let Value::BigInt(id) = key[0] {
                    rows.remove(&id);
                }
            }
            _ => {}
        }
    }
    (rows, replay.records.len())
}

/// Truncating the log at EVERY byte boundary yields a database equal to
/// replaying the clean record prefix — committed transactions up to the
/// cut survive whole, the in-flight one at the cut is rolled back, and
/// the recovered database serves validated reads with zero retries.
#[test]
fn truncation_at_every_byte_boundary_recovers_a_consistent_prefix() {
    // Build a single-segment log with a mixed workload.
    let fs = SimFs::new();
    let cfg = WalConfig::sim("/wal", fs.clone());
    let (db, t) = fresh_db();
    db.recover_and_attach_wal(cfg).unwrap();
    for id in 0..8 {
        insert_account(&db, t, id, 100 + id);
    }
    set_balance(&db, t, 2, -2);
    delete_account(&db, t, 5);
    set_balance(&db, t, 0, 9_999);

    let seg_names = wal_segment_names(&fs);
    assert_eq!(seg_names.len(), 1, "workload must fit one segment");
    let seg_path = format!("/wal/{}", seg_names[0]);
    let bytes = fs.snapshot(seg_path.as_ref()).unwrap();

    let mut prev_records = 0usize;
    let mut full_state = None;
    for cut in 0..=bytes.len() {
        let fs2 = SimFs::new();
        fs2.create_dir_all("/wal".as_ref()).unwrap();
        fs2.install(seg_path.as_ref(), bytes[..cut].to_vec());
        let cfg2 = WalConfig::sim("/wal", fs2.clone());

        let (model, n_records) = model_of_clean_prefix(&cfg2);
        assert!(
            n_records >= prev_records,
            "clean prefix must grow monotonically with the byte cut \
             (cut {cut}: {n_records} < {prev_records})"
        );
        prev_records = n_records;

        let (db2, t2) = fresh_db();
        db2.recover_and_attach_wal(cfg2)
            .unwrap_or_else(|e| panic!("recovery must never fail at cut {cut}: {e}"));
        let got = balances(&db2, t2);
        assert_eq!(got, model, "cut at byte {cut} diverged from the model");
        assert_eq!(db2.counters().validated_retries, 0);
        full_state = Some(got);
    }

    // The final (uncut) iteration must equal the live database.
    assert_eq!(full_state.unwrap(), balances(&db, t));
}

mod truncation_props {
    use super::*;
    use proptest::prelude::*;

    /// Runs `n_ops` seeded operations (insert / update / delete chosen
    /// by an xorshift walk) against a WAL-attached database, returning
    /// the segment bytes and path of the single segment produced.
    fn seeded_log(seed: u64, n_ops: usize) -> (String, Vec<u8>) {
        let fs = SimFs::new();
        let cfg = WalConfig::sim("/wal", fs.clone());
        let (db, t) = fresh_db();
        db.recover_and_attach_wal(cfg).unwrap();

        let mut x = seed | 1;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..n_ops {
            let id = (step() % 12) as i64;
            let bal = (step() % 1_000) as i64;
            let txn = db.begin();
            match step() % 3 {
                0 => {
                    let _ = db.insert(txn, t, vec![Value::BigInt(id), Value::BigInt(bal)], P);
                }
                1 => {
                    let _ = db.update(txn, t, &[Value::BigInt(id)], &[(1, Value::BigInt(bal))], P);
                }
                _ => {
                    let _ = db.delete(txn, t, &[Value::BigInt(id)], P);
                }
            }
            if step() % 5 == 0 {
                db.abort_policy(txn, P).unwrap();
            } else {
                db.commit_policy(txn, P).unwrap();
            }
        }

        // A workload where every operation failed (updates of missing
        // keys, duplicate inserts) logs nothing and creates no segment.
        let seg_names = wal_segment_names(&fs);
        if seg_names.is_empty() {
            return ("/wal/seg-00000001-000000000001.wal".to_string(), Vec::new());
        }
        assert_eq!(seg_names.len(), 1);
        let seg_path = format!("/wal/{}", seg_names[0]);
        let bytes = fs.snapshot(seg_path.as_ref()).unwrap();
        (seg_path, bytes)
    }

    proptest! {
        /// A seeded workload's log, truncated at a random byte, recovers
        /// to exactly the state the clean record prefix models — and the
        /// recovered database serves validated reads with zero retries.
        #[test]
        fn random_workload_truncated_anywhere_recovers_the_model_prefix(
            params in (1u64..1_000_000, 5usize..40, 0u64..10_001)
        ) {
            let (seed, n_ops, cut_sel) = params;
            let (seg_path, bytes) = seeded_log(seed, n_ops);
            let cut = (bytes.len() as u64 * cut_sel / 10_000) as usize;

            let fs2 = SimFs::new();
            fs2.create_dir_all("/wal".as_ref()).unwrap();
            fs2.install(seg_path.as_ref(), bytes[..cut].to_vec());
            let cfg2 = WalConfig::sim("/wal", fs2.clone());

            let (model, _) = model_of_clean_prefix(&cfg2);
            let (db2, t2) = fresh_db();
            db2.recover_and_attach_wal(cfg2).unwrap();
            prop_assert_eq!(balances(&db2, t2), model);
            prop_assert_eq!(db2.counters().validated_retries, 0);
        }
    }
}

/// Flipping any single bit in the log leaves recovery with a clean,
/// consistent prefix — never a panic, never a half-applied transaction.
#[test]
fn single_byte_corruption_anywhere_yields_a_clean_prefix() {
    let fs = SimFs::new();
    let cfg = WalConfig::sim("/wal", fs.clone());
    let (db, t) = fresh_db();
    db.recover_and_attach_wal(cfg).unwrap();
    for id in 0..6 {
        insert_account(&db, t, id, id);
    }

    let seg_names = wal_segment_names(&fs);
    let seg_path = format!("/wal/{}", seg_names[0]);
    let bytes = fs.snapshot(seg_path.as_ref()).unwrap();

    for pos in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x40;
        let fs2 = SimFs::new();
        fs2.create_dir_all("/wal".as_ref()).unwrap();
        fs2.install(seg_path.as_ref(), corrupt);
        let cfg2 = WalConfig::sim("/wal", fs2.clone());

        let (model, _) = model_of_clean_prefix(&cfg2);
        let (db2, t2) = fresh_db();
        match db2.recover_and_attach_wal(cfg2) {
            Ok(_) => {
                assert_eq!(
                    balances(&db2, t2),
                    model,
                    "flip at byte {pos} diverged from the clean-prefix model"
                );
            }
            // A flip inside the first segment header can make the whole
            // log unreadable (no anchor for any checkpoint image); that
            // must surface as an error, not a panic or silent data loss.
            Err(StorageError::LogCorrupt(_)) => {}
            Err(e) => panic!("unexpected recovery error at byte {pos}: {e}"),
        }
    }
}
