//! Crash-during-writeback: the WAL-before-data proof, end to end.
//!
//! A tiny (8-frame) buffer pool over a [`SimFs`]-backed page file forces
//! continuous eviction and background writeback while transactions
//! commit against a SimFs WAL. [`SimFs::crash`] then tears the unsynced
//! tail — each seed keeps a different prefix of the pending page writes,
//! so across seeds the surviving `pages.db` ranges from "nothing since
//! the last sync" to "every write the pool ever issued". Whatever
//! subset survives, reopening and recovering must reproduce exactly the
//! committed state: recovery trusts only the log, and the pool's
//! WAL-before-data gate guarantees no surviving data page ever got
//! ahead of the durable log.
//!
//! The fuzzy-checkpoint variant syncs the page file mid-run
//! (`Database::checkpoint` → `flush_all` → `store.sync`), so the crash
//! also lands on runs whose durable page file holds a *consistent but
//! stale* image that replay must overwrite.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use dora_storage::buffer::FilePageStore;
use dora_storage::db::{Database, DatabaseConfig, LockingPolicy};
use dora_storage::io::SimFs;
use dora_storage::schema::{ColumnDef, TableSchema};
use dora_storage::segment::WalConfig;
use dora_storage::types::{DataType, TableId, Value};

const P: LockingPolicy = LockingPolicy::Centralized;
/// Far below the working set: ~8 fat rows fit one page, so the traffic
/// below allocates several dozen pages through an 8-frame pool.
const FRAMES: usize = 8;

/// `ledger(id BigInt PK, bal BigInt, pad Varchar)` — the pad column
/// fattens rows so the table overflows the pool by an order of
/// magnitude instead of packing into a frame or two.
fn ledger_schema() -> TableSchema {
    TableSchema::new(
        "ledger",
        vec![
            ColumnDef::new("id", DataType::BigInt),
            ColumnDef::new("bal", DataType::BigInt),
            ColumnDef::new("pad", DataType::Varchar(1024)),
        ],
        vec![0],
    )
}

/// A database whose pool runs over `fs`-backed pages with a tiny frame
/// budget. The page file persists in `fs` across "restarts" — only the
/// `Database` value is rebuilt, exactly like a process restart over a
/// surviving disk.
fn open(fs: &SimFs) -> (Database, TableId) {
    let store = FilePageStore::open(fs, Path::new("/pages")).expect("open sim page file");
    let db = Database::with_store(
        DatabaseConfig {
            buffer_frames: FRAMES,
            ..Default::default()
        },
        Arc::new(store),
    );
    let t = db.create_table(ledger_schema()).unwrap();
    (db, t)
}

fn pad(id: i64) -> String {
    // ~900 bytes, id-dependent so a resurrected stale page is
    // distinguishable from the committed bytes.
    format!("{id:04}-").repeat(180)
}

fn insert_row(db: &Database, t: TableId, id: i64, bal: i64) {
    let txn = db.begin();
    db.insert(
        txn,
        t,
        vec![
            Value::BigInt(id),
            Value::BigInt(bal),
            Value::Varchar(pad(id)),
        ],
        P,
    )
    .unwrap();
    db.commit_policy(txn, P).unwrap();
}

fn set_balance(db: &Database, t: TableId, id: i64, bal: i64) {
    let txn = db.begin();
    db.update(txn, t, &[Value::BigInt(id)], &[(1, Value::BigInt(bal))], P)
        .unwrap();
    db.commit_policy(txn, P).unwrap();
}

/// Committed `id -> bal`, with every pad column verified against its
/// id: a page whose pre-update bytes were resurrected from the store
/// fails here even if the balances happen to match.
fn audit(db: &Database, t: TableId) -> BTreeMap<i64, i64> {
    let txn = db.begin();
    let rows = db
        .scan_validated(
            txn,
            t,
            &[Value::BigInt(i64::MIN)],
            &[Value::BigInt(i64::MAX)],
            P,
        )
        .unwrap();
    db.commit_policy(txn, P).unwrap();
    rows.iter()
        .map(|r| match (&r[0], &r[1], &r[2]) {
            (Value::BigInt(id), Value::BigInt(bal), Value::Varchar(p)) => {
                assert_eq!(*p, pad(*id), "row {id}: pad bytes corrupted");
                (*id, *bal)
            }
            other => panic!("bad ledger row: {other:?}"),
        })
        .collect()
}

/// Runs the shared traffic pattern: 120 fat inserts (≫ pool), then an
/// update sweep that re-dirties already-evicted pages, with an optional
/// mid-run fuzzy checkpoint. Returns the committed state.
fn run_traffic(db: &Database, t: TableId, checkpoint: bool) -> BTreeMap<i64, i64> {
    for id in 0..120 {
        insert_row(db, t, id, 1_000 + id);
    }
    if checkpoint {
        db.checkpoint().unwrap();
    }
    // Re-dirty pages that eviction already wrote once: the second write
    // of a page is the one a naive data-before-log pool would lose.
    for id in (0..120).step_by(3) {
        set_balance(db, t, id, 5_000 + id);
    }
    audit(db, t)
}

#[test]
fn crash_during_writeback_recovers_committed_state_for_every_seed() {
    // Seeds spread across the u64 space (consecutive small integers
    // exercise nearly identical tear patterns): each keeps a different
    // prefix of the unsynced page writes.
    for (i, checkpoint) in [(0u64, false), (1, true), (2, false), (3, true), (4, false)] {
        let seed = 0xdead_beef_u64.wrapping_mul(i.wrapping_mul(0x9e37_79b9) | 1);
        let fs = SimFs::new();
        let cfg = WalConfig::sim("/wal", fs.clone()).with_segment_bytes(4096);

        let expected = {
            let (db, t) = open(&fs);
            db.recover_and_attach_wal(cfg.clone()).unwrap();
            let expected = run_traffic(&db, t, checkpoint);

            // The run is vacuous unless the pool actually churned: the
            // store must have seen evictions and at least one dirty
            // page written back underneath live traffic.
            let stats = db.buffer_stats();
            assert!(
                stats.evictions > FRAMES as u64,
                "seed {seed:#x}: pool never churned ({} evictions)",
                stats.evictions
            );
            assert!(
                stats.eviction_writes + stats.writebacks > 0,
                "seed {seed:#x}: no dirty page ever reached the store"
            );
            expected
        };
        assert_eq!(expected.len(), 120);

        // SIGKILL-equivalent: unsynced WAL bytes tear, and the page
        // file keeps only a seed-chosen prefix of its pending writes.
        fs.crash(seed);

        let (db2, t2) = open(&fs);
        db2.recover_and_attach_wal(cfg).unwrap();
        assert_eq!(
            audit(&db2, t2),
            expected,
            "seed {seed:#x} (checkpoint={checkpoint}): recovered state diverged"
        );
        assert_eq!(
            db2.counters().validated_retries,
            0,
            "recovered database must serve validated reads without retries"
        );
    }
}

#[test]
fn recovered_pool_keeps_working_and_survives_a_second_crash() {
    let fs = SimFs::new();
    let cfg = WalConfig::sim("/wal", fs.clone()).with_segment_bytes(4096);

    let expected = {
        let (db, t) = open(&fs);
        db.recover_and_attach_wal(cfg.clone()).unwrap();
        run_traffic(&db, t, true)
    };
    fs.crash(0x5eed);

    // First recovery, then NEW traffic through the same tiny pool: the
    // recovered database's evictions and writebacks must be just as
    // crash-safe as the original's.
    let more = {
        let (db2, t2) = open(&fs);
        db2.recover_and_attach_wal(cfg.clone()).unwrap();
        assert_eq!(audit(&db2, t2), expected);
        for id in 200..240 {
            insert_row(&db2, t2, id, 7_000 + id);
        }
        db2.checkpoint().unwrap();
        for id in (200..240).step_by(2) {
            set_balance(&db2, t2, id, 9_000 + id);
        }
        audit(&db2, t2)
    };
    fs.crash(0xbad_cafe);

    let (db3, t3) = open(&fs);
    db3.recover_and_attach_wal(cfg).unwrap();
    assert_eq!(audit(&db3, t3), more);
}
