//! Fundamental value and identifier types used throughout the storage
//! manager and both execution engines.
//!
//! The value model is deliberately small (the workloads in the paper —
//! TATP and TPC-C — only need integers, floating point, strings and
//! booleans) but completely ordered and hashable so that values can be used
//! as B+-tree keys, lock-manager keys and DORA routing keys.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

/// Identifier of a table inside the catalog.
pub type TableId = u32;
/// Identifier of an index inside the catalog.
pub type IndexId = u32;
/// Identifier of a page managed by the buffer pool.
pub type PageId = u64;
/// Slot number inside a slotted page.
pub type SlotId = u16;
/// Transaction identifier.
pub type TxnId = u64;
/// Log sequence number.
pub type Lsn = u64;

/// Physical address of a record: page plus slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RecordId {
    /// Page holding the record.
    pub page: PageId,
    /// Slot within the page.
    pub slot: SlotId,
}

impl RecordId {
    /// Creates a record id from its components.
    pub fn new(page: PageId, slot: SlotId) -> Self {
        RecordId { page, slot }
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.page, self.slot)
    }
}

/// Column data types supported by the storage manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataType {
    /// 32-bit signed integer.
    Int,
    /// 64-bit signed integer.
    BigInt,
    /// 64-bit IEEE floating point.
    Double,
    /// Variable-length UTF-8 string with a declared maximum length.
    Varchar(u16),
    /// Boolean.
    Bool,
}

impl DataType {
    /// Returns true when `value` is admissible for this type (NULL is
    /// admissible for every type).
    pub fn admits(&self, value: &Value) -> bool {
        match (self, value) {
            (_, Value::Null) => true,
            (DataType::Int, Value::Int(_)) => true,
            (DataType::BigInt, Value::BigInt(_)) => true,
            (DataType::Double, Value::Double(_)) => true,
            (DataType::Varchar(max), Value::Varchar(s)) => s.len() <= *max as usize,
            (DataType::Bool, Value::Bool(_)) => true,
            _ => false,
        }
    }
}

/// A single column value.
///
/// `Value` implements a *total* order (including across `Double` via IEEE
/// total ordering and across NULLs, which sort lowest) so it can serve as a
/// key for B+-trees, lock tables and routing rules.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 32-bit signed integer.
    Int(i32),
    /// 64-bit signed integer.
    BigInt(i64),
    /// 64-bit float.
    Double(f64),
    /// UTF-8 string.
    Varchar(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Variant rank used to order values of different types deterministically.
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::BigInt(_) => 3,
            Value::Double(_) => 4,
            Value::Varchar(_) => 5,
        }
    }

    /// Returns the value as an `i64` when it is any integer type.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v as i64),
            Value::BigInt(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as an `f64` when it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::BigInt(v) => Some(*v as f64),
            Value::Double(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as a string slice when it is a varchar.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Varchar(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Returns the value as a bool when it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (BigInt(a), BigInt(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            (Varchar(a), Varchar(b)) => a.cmp(b),
            // Numeric cross-type comparisons compare as i64/f64 where
            // possible so that Int(5) == BigInt(5) for routing purposes.
            (Int(a), BigInt(b)) => (*a as i64).cmp(b),
            (BigInt(a), Int(b)) => a.cmp(&(*b as i64)),
            (Int(a), Double(b)) => (*a as f64).total_cmp(b),
            (Double(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (BigInt(a), Double(b)) => (*a as f64).total_cmp(b),
            (Double(a), BigInt(b)) => a.total_cmp(&(*b as f64)),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Integer family hashes through i64 so Int(5) and BigInt(5),
            // which compare equal, also hash equal.
            Value::Int(v) => {
                2u8.hash(state);
                (*v as i64).hash(state);
            }
            Value::BigInt(v) => {
                2u8.hash(state);
                v.hash(state);
            }
            Value::Double(v) => {
                3u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Varchar(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::BigInt(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Varchar(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::BigInt(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Varchar(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Varchar(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A key is an ordered list of values (possibly composite).
pub type Key = Vec<Value>;

/// Builds a key from anything convertible to values.
#[macro_export]
macro_rules! key {
    ($($v:expr),* $(,)?) => {
        vec![$($crate::types::Value::from($v)),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn ordering_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::BigInt(-5) < Value::BigInt(0));
        assert!(Value::Varchar("a".into()) < Value::Varchar("b".into()));
        assert!(Value::Double(1.5) < Value::Double(2.5));
        assert!(Value::Bool(false) < Value::Bool(true));
    }

    #[test]
    fn null_sorts_lowest() {
        assert!(Value::Null < Value::Int(i32::MIN));
        assert!(Value::Null < Value::Varchar(String::new()));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn cross_numeric_comparisons() {
        assert_eq!(Value::Int(5), Value::BigInt(5));
        assert!(Value::Int(5) < Value::BigInt(6));
        assert!(Value::Double(4.5) < Value::BigInt(5));
        assert_eq!(hash_of(&Value::Int(5)), hash_of(&Value::BigInt(5)));
    }

    #[test]
    fn double_total_order_handles_nan() {
        let nan = Value::Double(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(Value::Double(1.0) < Value::Double(f64::INFINITY));
    }

    #[test]
    fn datatype_admits() {
        assert!(DataType::Int.admits(&Value::Int(1)));
        assert!(DataType::Int.admits(&Value::Null));
        assert!(!DataType::Int.admits(&Value::Varchar("x".into())));
        assert!(DataType::Varchar(3).admits(&Value::Varchar("abc".into())));
        assert!(!DataType::Varchar(2).admits(&Value::Varchar("abc".into())));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_i64(), Some(3));
        assert_eq!(Value::BigInt(9).as_i64(), Some(9));
        assert_eq!(Value::Double(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Varchar("hi".into()).as_str(), Some("hi"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Varchar("hi".into()).as_i64(), None);
    }

    #[test]
    fn key_macro_builds_composite_keys() {
        let k: Key = key![1i32, "abc", 2.5f64];
        assert_eq!(k.len(), 3);
        assert_eq!(k[0], Value::Int(1));
        assert_eq!(k[1], Value::Varchar("abc".into()));
    }

    #[test]
    fn record_id_display_and_order() {
        let a = RecordId::new(1, 2);
        let b = RecordId::new(1, 3);
        assert!(a < b);
        assert_eq!(a.to_string(), "(1,2)");
    }
}
