//! The database facade: catalog + heap files + indexes + lock manager +
//! write-ahead log + transaction manager behind one handle.
//!
//! Both execution engines operate on this type. The only difference between
//! them at this layer is the [`LockingPolicy`] they pass: the conventional
//! engine uses `Centralized` (hierarchical 2PL through the shared lock
//! manager), while DORA passes `Bypass` because isolation is already
//! guaranteed by the partition-local lock tables of its worker threads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

use crate::btree::BPlusTree;
use crate::buffer::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::heap::{HeapFile, UpdateOutcome};
use crate::lock::{LockManager, LockMode, LockStatsSnapshot, LockTarget};
use crate::schema::{Catalog, TableSchema};
use crate::tuple;
use crate::txn::{TxnManager, TxnState, UndoEntry};
use crate::types::{IndexId, Key, RecordId, TableId, TxnId, Value};
use crate::wal::{LogManager, LogPayload, LogStatsSnapshot};

/// How an operation should interact with the centralized lock manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockingPolicy {
    /// Acquire hierarchical locks through the centralized lock manager
    /// (conventional thread-to-transaction execution).
    Centralized,
    /// Skip the centralized lock manager entirely (DORA: isolation comes
    /// from partition-local lock tables).
    Bypass,
}

/// Construction parameters for a [`Database`].
#[derive(Debug, Clone)]
pub struct DatabaseConfig {
    /// Number of buffer-pool frames.
    pub buffer_frames: usize,
    /// Number of latch-protected buckets in the centralized lock manager.
    pub lock_buckets: usize,
    /// How long a lock request may wait before timing out.
    pub lock_timeout: Duration,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        DatabaseConfig {
            buffer_frames: 4096,
            lock_buckets: 64,
            lock_timeout: Duration::from_millis(500),
        }
    }
}

/// Simple operation counters for the monitoring panel.
#[derive(Debug, Default)]
pub struct DbCounters {
    /// Row reads served.
    pub reads: AtomicU64,
    /// Row inserts.
    pub inserts: AtomicU64,
    /// Row updates.
    pub updates: AtomicU64,
    /// Row deletes.
    pub deletes: AtomicU64,
    /// Transactions committed.
    pub commits: AtomicU64,
    /// Transactions aborted.
    pub aborts: AtomicU64,
}

/// Point-in-time copy of [`DbCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DbCountersSnapshot {
    /// Row reads served.
    pub reads: u64,
    /// Row inserts.
    pub inserts: u64,
    /// Row updates.
    pub updates: u64,
    /// Row deletes.
    pub deletes: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Transactions aborted.
    pub aborts: u64,
}

/// The storage-manager facade.
pub struct Database {
    catalog: RwLock<Catalog>,
    buffer: Arc<BufferPool>,
    heaps: RwLock<HashMap<TableId, Arc<HeapFile>>>,
    trees: RwLock<HashMap<IndexId, Arc<BPlusTree>>>,
    lock_mgr: Arc<LockManager>,
    log: Arc<LogManager>,
    txns: TxnManager,
    counters: DbCounters,
}

impl Default for Database {
    fn default() -> Self {
        Self::new(DatabaseConfig::default())
    }
}

impl Database {
    /// Creates an empty database.
    pub fn new(config: DatabaseConfig) -> Self {
        Database {
            catalog: RwLock::new(Catalog::new()),
            buffer: Arc::new(BufferPool::in_memory(config.buffer_frames)),
            heaps: RwLock::new(HashMap::new()),
            trees: RwLock::new(HashMap::new()),
            lock_mgr: Arc::new(LockManager::with_config(
                config.lock_buckets,
                config.lock_timeout,
            )),
            log: Arc::new(LogManager::new()),
            txns: TxnManager::new(),
            counters: DbCounters::default(),
        }
    }

    // --- schema management ------------------------------------------------

    /// Creates a table together with its primary index.
    pub fn create_table(&self, schema: TableSchema) -> StorageResult<TableId> {
        let pk = schema.primary_key.clone();
        let name = schema.name.clone();
        let table = self.catalog.write().add_table(schema)?;
        let index = self
            .catalog
            .write()
            .add_index(format!("pk_{name}"), table, pk, true, true)?;
        self.heaps
            .write()
            .insert(table, Arc::new(HeapFile::new(table, self.buffer.clone())));
        self.trees.write().insert(index, Arc::new(BPlusTree::new()));
        Ok(table)
    }

    /// Creates a secondary index and back-fills it from existing rows.
    pub fn create_secondary_index(
        &self,
        table: TableId,
        name: impl Into<String>,
        key_columns: Vec<usize>,
        unique: bool,
    ) -> StorageResult<IndexId> {
        let index =
            self.catalog
                .write()
                .add_index(name, table, key_columns.clone(), unique, false)?;
        let tree = Arc::new(BPlusTree::new());
        // Back-fill from the heap.
        let heap = self.heap(table)?;
        for (rid, bytes) in heap.scan()? {
            let values = tuple::decode(&bytes)?;
            let key: Key = key_columns.iter().map(|&c| values[c].clone()).collect();
            tree.insert(key, rid);
        }
        self.trees.write().insert(index, tree);
        Ok(index)
    }

    /// Resolves a table name to its id.
    pub fn table_id(&self, name: &str) -> StorageResult<TableId> {
        Ok(self.catalog.read().table_by_name(name)?.id)
    }

    /// Returns a clone of a table's schema.
    pub fn schema(&self, table: TableId) -> StorageResult<TableSchema> {
        Ok(self.catalog.read().table(table)?.schema.clone())
    }

    /// Runs `f` with read access to the catalog.
    pub fn with_catalog<R>(&self, f: impl FnOnce(&Catalog) -> R) -> R {
        f(&self.catalog.read())
    }

    /// Id of the secondary index with the given name, if any.
    pub fn index_id(&self, table: TableId, name: &str) -> Option<IndexId> {
        let catalog = self.catalog.read();
        catalog
            .table(table)
            .ok()?
            .indexes
            .iter()
            .filter_map(|i| catalog.index(*i).ok())
            .find(|d| d.name == name)
            .map(|d| d.id)
    }

    // --- transaction lifecycle ---------------------------------------------

    /// Starts a transaction.
    pub fn begin(&self) -> TxnId {
        let txn = self.txns.begin();
        self.log.append(txn, LogPayload::Begin);
        txn
    }

    /// Commits a transaction: forces the log and releases its centralized
    /// locks. Equivalent to [`Database::commit_policy`] with
    /// [`LockingPolicy::Centralized`].
    pub fn commit(&self, txn: TxnId) -> StorageResult<()> {
        self.commit_policy(txn, LockingPolicy::Centralized)
    }

    /// Commits a transaction under an explicit locking policy. A `Bypass`
    /// commit never touches the centralized lock manager at all — the
    /// engine guarantees the transaction acquired no locks there, and the
    /// paper's point is precisely that DORA's commit path crosses zero
    /// lock-manager critical sections.
    pub fn commit_policy(&self, txn: TxnId, policy: LockingPolicy) -> StorageResult<()> {
        self.txns.check_active(txn)?;
        let lsn = self.log.append(txn, LogPayload::Commit);
        self.log.force(lsn);
        self.txns.mark_committed(txn)?;
        if policy == LockingPolicy::Centralized {
            self.lock_mgr.unlock_all(txn);
        }
        self.counters.commits.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Aborts a transaction: applies its undo log, then releases its
    /// centralized locks. Equivalent to [`Database::abort_policy`] with
    /// [`LockingPolicy::Centralized`].
    pub fn abort(&self, txn: TxnId) -> StorageResult<()> {
        self.abort_policy(txn, LockingPolicy::Centralized)
    }

    /// Aborts a transaction under an explicit locking policy (see
    /// [`Database::commit_policy`] for why `Bypass` skips the centralized
    /// lock manager).
    pub fn abort_policy(&self, txn: TxnId, policy: LockingPolicy) -> StorageResult<()> {
        self.txns.check_active(txn)?;
        let undo = self.txns.mark_aborted(txn)?;
        for entry in undo {
            self.apply_undo(&entry)?;
        }
        self.log.append(txn, LogPayload::Abort);
        if policy == LockingPolicy::Centralized {
            self.lock_mgr.unlock_all(txn);
        }
        self.counters.aborts.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// State of a transaction, if known.
    pub fn txn_state(&self, txn: TxnId) -> Option<TxnState> {
        self.txns.state(txn)
    }

    // --- data operations ----------------------------------------------------

    /// Inserts a row.
    pub fn insert(
        &self,
        txn: TxnId,
        table: TableId,
        values: Vec<Value>,
        policy: LockingPolicy,
    ) -> StorageResult<RecordId> {
        self.txns.check_active(txn)?;
        let schema = self.schema(table)?;
        schema.validate(&values)?;
        let key = schema.primary_key_of(&values);
        if policy == LockingPolicy::Centralized {
            self.lock_mgr
                .lock(txn, LockTarget::Table(table), LockMode::IX)?;
            self.lock_mgr
                .lock(txn, LockTarget::Key(table, key.clone()), LockMode::X)?;
        }
        let primary = self.primary_tree(table)?;
        if primary.contains_key(&key) {
            return Err(StorageError::DuplicateKey(format!(
                "{}: {:?}",
                schema.name, key
            )));
        }
        // Unique secondary indexes.
        for (idx_id, cols, unique) in self.secondary_defs(table) {
            if unique {
                let skey: Key = cols.iter().map(|&c| values[c].clone()).collect();
                if self.tree(idx_id)?.contains_key(&skey) {
                    return Err(StorageError::DuplicateKey(format!(
                        "unique secondary index {idx_id}: {skey:?}"
                    )));
                }
            }
        }
        self.log.append(
            txn,
            LogPayload::Insert {
                table,
                key: key.clone(),
                tuple: values.clone(),
            },
        );
        let rid = self.heap(table)?.insert(&tuple::encode(&values))?;
        primary.insert(key.clone(), rid);
        for (idx_id, cols, _) in self.secondary_defs(table) {
            let skey: Key = cols.iter().map(|&c| values[c].clone()).collect();
            self.tree(idx_id)?.insert(skey, rid);
        }
        self.txns.push_undo(txn, UndoEntry::Insert { table, key })?;
        self.counters.inserts.fetch_add(1, Ordering::Relaxed);
        Ok(rid)
    }

    /// Point lookup by primary key.
    pub fn get(
        &self,
        txn: TxnId,
        table: TableId,
        key: &[Value],
        policy: LockingPolicy,
    ) -> StorageResult<Option<Vec<Value>>> {
        self.txns.check_active(txn)?;
        if policy == LockingPolicy::Centralized {
            self.lock_mgr
                .lock(txn, LockTarget::Table(table), LockMode::IS)?;
            self.lock_mgr
                .lock(txn, LockTarget::Key(table, key.to_vec()), LockMode::S)?;
        }
        self.counters.reads.fetch_add(1, Ordering::Relaxed);
        let primary = self.primary_tree(table)?;
        match primary.get_first(key) {
            Some(rid) => {
                let bytes = self.heap(table)?.get(rid)?;
                Ok(Some(tuple::decode(&bytes)?))
            }
            None => Ok(None),
        }
    }

    /// Lookup through a (secondary) index; returns full rows.
    pub fn index_lookup(
        &self,
        txn: TxnId,
        index: IndexId,
        key: &[Value],
        policy: LockingPolicy,
    ) -> StorageResult<Vec<Vec<Value>>> {
        self.txns.check_active(txn)?;
        let def = {
            let catalog = self.catalog.read();
            catalog.index(index)?.clone()
        };
        if policy == LockingPolicy::Centralized {
            self.lock_mgr
                .lock(txn, LockTarget::Table(def.table), LockMode::IS)?;
        }
        let tree = self.tree(index)?;
        let heap = self.heap(def.table)?;
        let schema = self.schema(def.table)?;
        let mut rows = Vec::new();
        for rid in tree.get(key) {
            let values = tuple::decode(&heap.get(rid)?)?;
            if policy == LockingPolicy::Centralized {
                let pk = schema.primary_key_of(&values);
                self.lock_mgr
                    .lock(txn, LockTarget::Key(def.table, pk), LockMode::S)?;
            }
            self.counters.reads.fetch_add(1, Ordering::Relaxed);
            rows.push(values);
        }
        Ok(rows)
    }

    /// Prefix scan through an index (composite keys); returns full rows.
    pub fn index_prefix_scan(
        &self,
        txn: TxnId,
        index: IndexId,
        prefix: &[Value],
        policy: LockingPolicy,
    ) -> StorageResult<Vec<Vec<Value>>> {
        self.txns.check_active(txn)?;
        let def = {
            let catalog = self.catalog.read();
            catalog.index(index)?.clone()
        };
        if policy == LockingPolicy::Centralized {
            self.lock_mgr
                .lock(txn, LockTarget::Table(def.table), LockMode::IS)?;
        }
        let tree = self.tree(index)?;
        let heap = self.heap(def.table)?;
        let schema = self.schema(def.table)?;
        let mut rows = Vec::new();
        for (_, rid) in tree.scan_prefix(prefix) {
            let values = tuple::decode(&heap.get(rid)?)?;
            if policy == LockingPolicy::Centralized {
                let pk = schema.primary_key_of(&values);
                self.lock_mgr
                    .lock(txn, LockTarget::Key(def.table, pk), LockMode::S)?;
            }
            self.counters.reads.fetch_add(1, Ordering::Relaxed);
            rows.push(values);
        }
        Ok(rows)
    }

    /// Range scan on the primary key (inclusive bounds); returns full rows.
    pub fn primary_range(
        &self,
        txn: TxnId,
        table: TableId,
        lo: &[Value],
        hi: &[Value],
        policy: LockingPolicy,
    ) -> StorageResult<Vec<Vec<Value>>> {
        self.txns.check_active(txn)?;
        if policy == LockingPolicy::Centralized {
            // Range predicates take a table-level shared lock (coarse but
            // deadlock-free; Shore-MT uses key-range locks).
            self.lock_mgr
                .lock(txn, LockTarget::Table(table), LockMode::S)?;
        }
        let tree = self.primary_tree(table)?;
        let heap = self.heap(table)?;
        let mut rows = Vec::new();
        for (_, rid) in tree.range(lo, hi) {
            self.counters.reads.fetch_add(1, Ordering::Relaxed);
            rows.push(tuple::decode(&heap.get(rid)?)?);
        }
        Ok(rows)
    }

    /// Updates the row with primary key `key` by setting `(column, value)`
    /// pairs. Returns `false` when the row does not exist.
    pub fn update(
        &self,
        txn: TxnId,
        table: TableId,
        key: &[Value],
        updates: &[(usize, Value)],
        policy: LockingPolicy,
    ) -> StorageResult<bool> {
        self.txns.check_active(txn)?;
        let schema = self.schema(table)?;
        if policy == LockingPolicy::Centralized {
            self.lock_mgr
                .lock(txn, LockTarget::Table(table), LockMode::IX)?;
            self.lock_mgr
                .lock(txn, LockTarget::Key(table, key.to_vec()), LockMode::X)?;
        }
        let primary = self.primary_tree(table)?;
        let Some(rid) = primary.get_first(key) else {
            return Ok(false);
        };
        let heap = self.heap(table)?;
        let before = tuple::decode(&heap.get(rid)?)?;
        let mut after = before.clone();
        for (col, value) in updates {
            if *col >= after.len() {
                return Err(StorageError::SchemaMismatch(format!(
                    "column {col} out of range for table {}",
                    schema.name
                )));
            }
            if schema.primary_key.contains(col) {
                return Err(StorageError::SchemaMismatch(
                    "updating primary-key columns is not supported; delete and re-insert".into(),
                ));
            }
            after[*col] = value.clone();
        }
        schema.validate(&after)?;
        self.log.append(
            txn,
            LogPayload::Update {
                table,
                key: key.to_vec(),
                before: before.clone(),
                after: after.clone(),
            },
        );
        let outcome = heap.update(rid, &tuple::encode(&after))?;
        let new_rid = match outcome {
            UpdateOutcome::InPlace => rid,
            UpdateOutcome::Moved(new_rid) => {
                primary.remove(key, rid);
                primary.insert(key.to_vec(), new_rid);
                new_rid
            }
        };
        // Maintain secondary indexes for changed key columns (and for moved
        // records, whose record id changed).
        for (idx_id, cols, _) in self.secondary_defs(table) {
            let old_key: Key = cols.iter().map(|&c| before[c].clone()).collect();
            let new_key: Key = cols.iter().map(|&c| after[c].clone()).collect();
            if old_key != new_key || new_rid != rid {
                let tree = self.tree(idx_id)?;
                tree.remove(&old_key, rid);
                tree.insert(new_key, new_rid);
            }
        }
        self.txns.push_undo(
            txn,
            UndoEntry::Update {
                table,
                key: key.to_vec(),
                before,
            },
        )?;
        self.counters.updates.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Deletes the row with primary key `key`. Returns `false` when absent.
    pub fn delete(
        &self,
        txn: TxnId,
        table: TableId,
        key: &[Value],
        policy: LockingPolicy,
    ) -> StorageResult<bool> {
        self.txns.check_active(txn)?;
        if policy == LockingPolicy::Centralized {
            self.lock_mgr
                .lock(txn, LockTarget::Table(table), LockMode::IX)?;
            self.lock_mgr
                .lock(txn, LockTarget::Key(table, key.to_vec()), LockMode::X)?;
        }
        let primary = self.primary_tree(table)?;
        let Some(rid) = primary.get_first(key) else {
            return Ok(false);
        };
        let heap = self.heap(table)?;
        let before = tuple::decode(&heap.get(rid)?)?;
        self.log.append(
            txn,
            LogPayload::Delete {
                table,
                key: key.to_vec(),
                before: before.clone(),
            },
        );
        heap.delete(rid)?;
        primary.remove(key, rid);
        for (idx_id, cols, _) in self.secondary_defs(table) {
            let skey: Key = cols.iter().map(|&c| before[c].clone()).collect();
            self.tree(idx_id)?.remove(&skey, rid);
        }
        self.txns.push_undo(
            txn,
            UndoEntry::Delete {
                table,
                key: key.to_vec(),
                before,
            },
        )?;
        self.counters.deletes.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Full table scan; returns every row. Intended for loaders and
    /// verification, not the hot path.
    pub fn scan(&self, table: TableId) -> StorageResult<Vec<Vec<Value>>> {
        let heap = self.heap(table)?;
        heap.scan()?
            .into_iter()
            .map(|(_, bytes)| tuple::decode(&bytes))
            .collect()
    }

    /// Number of rows in a table.
    pub fn row_count(&self, table: TableId) -> StorageResult<usize> {
        Ok(self.primary_tree(table)?.len())
    }

    /// Writes a fuzzy checkpoint record.
    pub fn checkpoint(&self) {
        let active = self.txns.active_txns();
        let lsn = self.log.append(0, LogPayload::Checkpoint { active });
        self.log.force(lsn);
        self.buffer.flush_all();
    }

    // --- statistics ---------------------------------------------------------

    /// Centralized lock-manager statistics.
    pub fn lock_stats(&self) -> LockStatsSnapshot {
        self.lock_mgr.stats().snapshot()
    }

    /// Write-ahead-log statistics.
    pub fn log_stats(&self) -> LogStatsSnapshot {
        self.log.stats()
    }

    /// Operation counters.
    pub fn counters(&self) -> DbCountersSnapshot {
        DbCountersSnapshot {
            reads: self.counters.reads.load(Ordering::Relaxed),
            inserts: self.counters.inserts.load(Ordering::Relaxed),
            updates: self.counters.updates.load(Ordering::Relaxed),
            deletes: self.counters.deletes.load(Ordering::Relaxed),
            commits: self.counters.commits.load(Ordering::Relaxed),
            aborts: self.counters.aborts.load(Ordering::Relaxed),
        }
    }

    /// The write-ahead log (exposed for recovery and tests).
    pub fn log(&self) -> &Arc<LogManager> {
        &self.log
    }

    /// The centralized lock manager (exposed for engine instrumentation).
    pub fn lock_manager(&self) -> &Arc<LockManager> {
        &self.lock_mgr
    }

    // --- raw (non-transactional) operations used by undo and recovery ------

    /// Inserts a row bypassing transactions, locks and logging. Used by
    /// abort (undo of a delete) and by recovery redo.
    pub fn insert_raw(&self, table: TableId, values: Vec<Value>) -> StorageResult<()> {
        let schema = self.schema(table)?;
        let key = schema.primary_key_of(&values);
        let primary = self.primary_tree(table)?;
        if primary.contains_key(&key) {
            return Err(StorageError::DuplicateKey(format!("{key:?}")));
        }
        let rid = self.heap(table)?.insert(&tuple::encode(&values))?;
        primary.insert(key, rid);
        for (idx_id, cols, _) in self.secondary_defs(table) {
            let skey: Key = cols.iter().map(|&c| values[c].clone()).collect();
            self.tree(idx_id)?.insert(skey, rid);
        }
        Ok(())
    }

    /// Deletes a row by primary key bypassing transactions, locks and
    /// logging.
    pub fn delete_raw(&self, table: TableId, key: &[Value]) -> StorageResult<bool> {
        let primary = self.primary_tree(table)?;
        let Some(rid) = primary.get_first(key) else {
            return Ok(false);
        };
        let heap = self.heap(table)?;
        let before = tuple::decode(&heap.get(rid)?)?;
        heap.delete(rid)?;
        primary.remove(key, rid);
        for (idx_id, cols, _) in self.secondary_defs(table) {
            let skey: Key = cols.iter().map(|&c| before[c].clone()).collect();
            self.tree(idx_id)?.remove(&skey, rid);
        }
        Ok(true)
    }

    /// Overwrites a row (identified by primary key) with a full image,
    /// bypassing transactions, locks and logging.
    pub fn update_raw(
        &self,
        table: TableId,
        key: &[Value],
        image: Vec<Value>,
    ) -> StorageResult<bool> {
        let primary = self.primary_tree(table)?;
        let Some(rid) = primary.get_first(key) else {
            return Ok(false);
        };
        let heap = self.heap(table)?;
        let before = tuple::decode(&heap.get(rid)?)?;
        let outcome = heap.update(rid, &tuple::encode(&image))?;
        let new_rid = match outcome {
            UpdateOutcome::InPlace => rid,
            UpdateOutcome::Moved(new_rid) => {
                primary.remove(key, rid);
                primary.insert(key.to_vec(), new_rid);
                new_rid
            }
        };
        for (idx_id, cols, _) in self.secondary_defs(table) {
            let old_key: Key = cols.iter().map(|&c| before[c].clone()).collect();
            let new_key: Key = cols.iter().map(|&c| image[c].clone()).collect();
            if old_key != new_key || new_rid != rid {
                let tree = self.tree(idx_id)?;
                tree.remove(&old_key, rid);
                tree.insert(new_key, new_rid);
            }
        }
        Ok(true)
    }

    // --- internals ----------------------------------------------------------

    fn apply_undo(&self, entry: &UndoEntry) -> StorageResult<()> {
        match entry {
            UndoEntry::Insert { table, key } => {
                self.delete_raw(*table, key)?;
            }
            UndoEntry::Update { table, key, before } => {
                self.update_raw(*table, key, before.clone())?;
            }
            UndoEntry::Delete { table, before, .. } => {
                self.insert_raw(*table, before.clone())?;
            }
        }
        Ok(())
    }

    fn heap(&self, table: TableId) -> StorageResult<Arc<HeapFile>> {
        self.heaps
            .read()
            .get(&table)
            .cloned()
            .ok_or(StorageError::UnknownTable(table))
    }

    fn tree(&self, index: IndexId) -> StorageResult<Arc<BPlusTree>> {
        self.trees
            .read()
            .get(&index)
            .cloned()
            .ok_or(StorageError::UnknownIndex(index))
    }

    /// Tree of the primary index of `table`.
    pub fn primary_tree(&self, table: TableId) -> StorageResult<Arc<BPlusTree>> {
        let idx = self.catalog.read().primary_index(table)?.id;
        self.tree(idx)
    }

    /// `(index id, key column positions, unique)` for every secondary index
    /// of a table.
    fn secondary_defs(&self, table: TableId) -> Vec<(IndexId, Vec<usize>, bool)> {
        self.catalog
            .read()
            .secondary_indexes(table)
            .into_iter()
            .map(|d| (d.id, d.key_columns.clone(), d.unique))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::types::DataType;

    fn test_db() -> (Database, TableId) {
        let db = Database::default();
        let schema = TableSchema::new(
            "accounts",
            vec![
                ColumnDef::new("id", DataType::BigInt),
                ColumnDef::new("owner", DataType::Varchar(32)),
                ColumnDef::new("balance", DataType::Double),
                ColumnDef::new("active", DataType::Bool),
            ],
            vec![0],
        );
        let tid = db.create_table(schema).unwrap();
        (db, tid)
    }

    fn row(id: i64, owner: &str, balance: f64) -> Vec<Value> {
        vec![
            Value::BigInt(id),
            Value::Varchar(owner.into()),
            Value::Double(balance),
            Value::Bool(true),
        ]
    }

    #[test]
    fn insert_get_commit() {
        let (db, t) = test_db();
        let txn = db.begin();
        db.insert(txn, t, row(1, "alice", 100.0), LockingPolicy::Centralized)
            .unwrap();
        let got = db
            .get(txn, t, &[Value::BigInt(1)], LockingPolicy::Centralized)
            .unwrap()
            .unwrap();
        assert_eq!(got[1], Value::Varchar("alice".into()));
        db.commit(txn).unwrap();
        assert_eq!(db.txn_state(txn), Some(TxnState::Committed));
        assert_eq!(db.counters().commits, 1);
        // Locks are released after commit.
        assert_eq!(db.lock_manager().held_count(txn), 0);
    }

    #[test]
    fn duplicate_primary_key_rejected() {
        let (db, t) = test_db();
        let txn = db.begin();
        db.insert(txn, t, row(1, "a", 1.0), LockingPolicy::Bypass)
            .unwrap();
        let err = db.insert(txn, t, row(1, "b", 2.0), LockingPolicy::Bypass);
        assert!(matches!(err, Err(StorageError::DuplicateKey(_))));
        db.commit(txn).unwrap();
    }

    #[test]
    fn update_and_delete() {
        let (db, t) = test_db();
        let txn = db.begin();
        db.insert(txn, t, row(7, "bob", 50.0), LockingPolicy::Centralized)
            .unwrap();
        assert!(db
            .update(
                txn,
                t,
                &[Value::BigInt(7)],
                &[(2, Value::Double(75.0))],
                LockingPolicy::Centralized
            )
            .unwrap());
        let got = db
            .get(txn, t, &[Value::BigInt(7)], LockingPolicy::Centralized)
            .unwrap()
            .unwrap();
        assert_eq!(got[2], Value::Double(75.0));
        assert!(db
            .delete(txn, t, &[Value::BigInt(7)], LockingPolicy::Centralized)
            .unwrap());
        assert!(db
            .get(txn, t, &[Value::BigInt(7)], LockingPolicy::Centralized)
            .unwrap()
            .is_none());
        // Updating / deleting a missing row reports false.
        assert!(!db
            .update(
                txn,
                t,
                &[Value::BigInt(99)],
                &[(2, Value::Double(1.0))],
                LockingPolicy::Bypass
            )
            .unwrap());
        assert!(!db
            .delete(txn, t, &[Value::BigInt(99)], LockingPolicy::Bypass)
            .unwrap());
        db.commit(txn).unwrap();
    }

    #[test]
    fn primary_key_update_rejected() {
        let (db, t) = test_db();
        let txn = db.begin();
        db.insert(txn, t, row(1, "a", 1.0), LockingPolicy::Bypass)
            .unwrap();
        let err = db.update(
            txn,
            t,
            &[Value::BigInt(1)],
            &[(0, Value::BigInt(2))],
            LockingPolicy::Bypass,
        );
        assert!(matches!(err, Err(StorageError::SchemaMismatch(_))));
    }

    #[test]
    fn abort_rolls_back_all_changes() {
        let (db, t) = test_db();
        // Committed baseline row.
        let setup = db.begin();
        db.insert(setup, t, row(1, "alice", 100.0), LockingPolicy::Bypass)
            .unwrap();
        db.commit(setup).unwrap();

        let txn = db.begin();
        db.insert(txn, t, row(2, "bob", 10.0), LockingPolicy::Bypass)
            .unwrap();
        db.update(
            txn,
            t,
            &[Value::BigInt(1)],
            &[(2, Value::Double(0.0))],
            LockingPolicy::Bypass,
        )
        .unwrap();
        db.delete(txn, t, &[Value::BigInt(1)], LockingPolicy::Bypass)
            .unwrap();
        db.abort(txn).unwrap();

        let check = db.begin();
        // Row 2 is gone, row 1 restored with its original balance.
        assert!(db
            .get(check, t, &[Value::BigInt(2)], LockingPolicy::Bypass)
            .unwrap()
            .is_none());
        let r1 = db
            .get(check, t, &[Value::BigInt(1)], LockingPolicy::Bypass)
            .unwrap()
            .unwrap();
        assert_eq!(r1[2], Value::Double(100.0));
        assert_eq!(db.row_count(t).unwrap(), 1);
        db.commit(check).unwrap();
        assert_eq!(db.counters().aborts, 1);
    }

    #[test]
    fn secondary_index_lookup_and_maintenance() {
        let (db, t) = test_db();
        let owner_idx = db
            .create_secondary_index(t, "idx_owner", vec![1], false)
            .unwrap();
        let txn = db.begin();
        db.insert(txn, t, row(1, "carol", 5.0), LockingPolicy::Bypass)
            .unwrap();
        db.insert(txn, t, row(2, "carol", 6.0), LockingPolicy::Bypass)
            .unwrap();
        db.insert(txn, t, row(3, "dave", 7.0), LockingPolicy::Bypass)
            .unwrap();
        let rows = db
            .index_lookup(
                txn,
                owner_idx,
                &[Value::Varchar("carol".into())],
                LockingPolicy::Bypass,
            )
            .unwrap();
        assert_eq!(rows.len(), 2);
        // Rename carol #2 -> eve and check both lookups.
        db.update(
            txn,
            t,
            &[Value::BigInt(2)],
            &[(1, Value::Varchar("eve".into()))],
            LockingPolicy::Bypass,
        )
        .unwrap();
        assert_eq!(
            db.index_lookup(
                txn,
                owner_idx,
                &[Value::Varchar("carol".into())],
                LockingPolicy::Bypass
            )
            .unwrap()
            .len(),
            1
        );
        assert_eq!(
            db.index_lookup(
                txn,
                owner_idx,
                &[Value::Varchar("eve".into())],
                LockingPolicy::Bypass
            )
            .unwrap()
            .len(),
            1
        );
        // Delete and check index cleanup.
        db.delete(txn, t, &[Value::BigInt(3)], LockingPolicy::Bypass)
            .unwrap();
        assert!(db
            .index_lookup(
                txn,
                owner_idx,
                &[Value::Varchar("dave".into())],
                LockingPolicy::Bypass
            )
            .unwrap()
            .is_empty());
        db.commit(txn).unwrap();
    }

    #[test]
    fn secondary_index_backfills_existing_rows() {
        let (db, t) = test_db();
        let txn = db.begin();
        for i in 0..50 {
            db.insert(
                txn,
                t,
                row(i, if i % 2 == 0 { "even" } else { "odd" }, i as f64),
                LockingPolicy::Bypass,
            )
            .unwrap();
        }
        db.commit(txn).unwrap();
        let idx = db
            .create_secondary_index(t, "idx_owner", vec![1], false)
            .unwrap();
        let txn = db.begin();
        let evens = db
            .index_lookup(
                txn,
                idx,
                &[Value::Varchar("even".into())],
                LockingPolicy::Bypass,
            )
            .unwrap();
        assert_eq!(evens.len(), 25);
        db.commit(txn).unwrap();
        assert_eq!(db.index_id(t, "idx_owner"), Some(idx));
        assert_eq!(db.index_id(t, "nope"), None);
    }

    #[test]
    fn unique_secondary_index_enforced() {
        let (db, t) = test_db();
        db.create_secondary_index(t, "uq_owner", vec![1], true)
            .unwrap();
        let txn = db.begin();
        db.insert(txn, t, row(1, "solo", 1.0), LockingPolicy::Bypass)
            .unwrap();
        assert!(matches!(
            db.insert(txn, t, row(2, "solo", 2.0), LockingPolicy::Bypass),
            Err(StorageError::DuplicateKey(_))
        ));
        db.commit(txn).unwrap();
    }

    #[test]
    fn primary_range_scan() {
        let (db, t) = test_db();
        let txn = db.begin();
        for i in 0..100 {
            db.insert(txn, t, row(i, "x", i as f64), LockingPolicy::Bypass)
                .unwrap();
        }
        let rows = db
            .primary_range(
                txn,
                t,
                &[Value::BigInt(10)],
                &[Value::BigInt(19)],
                LockingPolicy::Bypass,
            )
            .unwrap();
        assert_eq!(rows.len(), 10);
        db.commit(txn).unwrap();
    }

    #[test]
    fn conflicting_writers_serialize_under_centralized_locking() {
        use std::sync::Arc;
        let (db, t) = test_db();
        let db = Arc::new(db);
        let setup = db.begin();
        db.insert(setup, t, row(1, "shared", 0.0), LockingPolicy::Centralized)
            .unwrap();
        db.commit(setup).unwrap();

        let mut handles = Vec::new();
        for _ in 0..4 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                let mut done = 0;
                for _ in 0..25 {
                    loop {
                        let txn = db.begin();
                        let cur = db
                            .get(txn, t, &[Value::BigInt(1)], LockingPolicy::Centralized)
                            .and_then(|r| r.ok_or(StorageError::NotFound));
                        let result = cur.and_then(|r| {
                            let bal = r[2].as_f64().unwrap();
                            db.update(
                                txn,
                                t,
                                &[Value::BigInt(1)],
                                &[(2, Value::Double(bal + 1.0))],
                                LockingPolicy::Centralized,
                            )
                        });
                        match result {
                            Ok(_) => {
                                db.commit(txn).unwrap();
                                done += 1;
                                break;
                            }
                            Err(e) if e.is_retryable() => {
                                let _ = db.abort(txn);
                            }
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                }
                done
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
        let check = db.begin();
        let r = db
            .get(check, t, &[Value::BigInt(1)], LockingPolicy::Bypass)
            .unwrap()
            .unwrap();
        assert_eq!(r[2], Value::Double(100.0));
        db.commit(check).unwrap();
    }

    #[test]
    fn checkpoint_and_counters() {
        let (db, t) = test_db();
        let txn = db.begin();
        db.insert(txn, t, row(1, "x", 1.0), LockingPolicy::Bypass)
            .unwrap();
        db.checkpoint();
        db.commit(txn).unwrap();
        let stats = db.log_stats();
        assert!(stats.appended >= 3); // begin + insert + checkpoint + commit
        let counters = db.counters();
        assert_eq!(counters.inserts, 1);
        assert_eq!(db.scan(t).unwrap().len(), 1);
    }
}
