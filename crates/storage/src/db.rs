//! The database facade: catalog + heap files + indexes + lock manager +
//! write-ahead log + transaction manager behind one handle.
//!
//! Both execution engines operate on this type. The only difference between
//! them at this layer is the [`LockingPolicy`] they pass: the conventional
//! engine uses `Centralized` (hierarchical 2PL through the shared lock
//! manager), while DORA passes `Bypass` because isolation is already
//! guaranteed by the partition-local lock tables of its worker threads.
//!
//! Every heap record carries a [`crate::version`] header (seqlock-style
//! version word + committing-txn stamp), minted on insert and advanced by
//! update/delete. Lock-protected reads skip it; the **validated read**
//! API ([`Database::read_validated`], [`Database::read_many_validated`],
//! [`Database::scan_validated`]) uses it to serve lock-free readers a
//! consistent committed snapshot: in-progress or uncommitted *images* are
//! rejected, torn reads retry, and an unchanged set of version headers
//! after decoding proves the rows were not rewritten mid-read.
//!
//! The protocol versions **record images**, not key *presence*: index
//! entries are removed at delete time, so once a deleting transaction has
//! detached a key, a validated reader observes the absence even while
//! that delete is uncommitted (and the row may yet be undone back into
//! existence). Symmetrically, `scan_validated`'s range membership is as
//! of the index probe. Workloads that audit under concurrent
//! inserts/deletes of rows — not just value updates — need the key-range
//! versioning noted in the ROADMAP.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

use crate::btree::BPlusTree;
use crate::buffer::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::heap::{HeapFile, UpdateOutcome};
use crate::lock::{LockManager, LockMode, LockStatsSnapshot, LockTarget};
use crate::schema::{Catalog, TableSchema};
use crate::tuple;
use crate::txn::{TxnManager, TxnState, UndoEntry};
use crate::types::{IndexId, Key, RecordId, TableId, TxnId, Value};
use crate::version::{self, RecordVersion};
use crate::wal::{LogManager, LogPayload, LogStatsSnapshot};

/// Attempts a validated read makes before giving up with
/// [`StorageError::ReadUncommitted`] when version words keep moving
/// underneath it (a torn read resolves within nanoseconds; a genuinely
/// write-hot record is better parked on than spun on).
const VALIDATED_READ_SPINS: usize = 32;

/// Attempts a validated read grants a record whose stamp names an
/// in-flight transaction. Commit latency dwarfs a spin loop, so the read
/// fails fast and lets the caller decide between retrying and parking.
const VALIDATED_UNCOMMITTED_SPINS: usize = 4;

/// How an operation should interact with the centralized lock manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockingPolicy {
    /// Acquire hierarchical locks through the centralized lock manager
    /// (conventional thread-to-transaction execution).
    Centralized,
    /// Skip the centralized lock manager entirely (DORA: isolation comes
    /// from partition-local lock tables).
    Bypass,
}

/// Construction parameters for a [`Database`].
#[derive(Debug, Clone)]
pub struct DatabaseConfig {
    /// Number of buffer-pool frames.
    pub buffer_frames: usize,
    /// Number of latch-protected buckets in the centralized lock manager.
    pub lock_buckets: usize,
    /// How long a lock request may wait before timing out.
    pub lock_timeout: Duration,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        DatabaseConfig {
            buffer_frames: 4096,
            lock_buckets: 64,
            lock_timeout: Duration::from_millis(500),
        }
    }
}

/// Simple operation counters for the monitoring panel.
#[derive(Debug, Default)]
pub struct DbCounters {
    /// Row reads served.
    pub reads: AtomicU64,
    /// Row inserts.
    pub inserts: AtomicU64,
    /// Row updates.
    pub updates: AtomicU64,
    /// Row deletes.
    pub deletes: AtomicU64,
    /// Transactions committed.
    pub commits: AtomicU64,
    /// Transactions aborted.
    pub aborts: AtomicU64,
    /// Record snapshots served by the validated (versioned) read path.
    pub validated_reads: AtomicU64,
    /// Validated-read attempts retried or rejected because of an
    /// in-progress, uncommitted, or moved record version.
    pub validated_retries: AtomicU64,
}

/// Point-in-time copy of [`DbCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DbCountersSnapshot {
    /// Row reads served.
    pub reads: u64,
    /// Row inserts.
    pub inserts: u64,
    /// Row updates.
    pub updates: u64,
    /// Row deletes.
    pub deletes: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Transactions aborted.
    pub aborts: u64,
    /// Record snapshots served by the validated (versioned) read path.
    pub validated_reads: u64,
    /// Validated-read attempts retried or rejected because of an
    /// in-progress, uncommitted, or moved record version.
    pub validated_retries: u64,
}

/// The storage-manager facade.
pub struct Database {
    catalog: RwLock<Catalog>,
    buffer: Arc<BufferPool>,
    heaps: RwLock<HashMap<TableId, Arc<HeapFile>>>,
    trees: RwLock<HashMap<IndexId, Arc<BPlusTree>>>,
    lock_mgr: Arc<LockManager>,
    log: Arc<LogManager>,
    txns: TxnManager,
    counters: DbCounters,
    /// Mints the (even) version word of every freshly inserted record.
    /// A database-wide clock instead of a constant start value: a slotted
    /// page reuses deleted slots, so a record id can be recycled between
    /// a validated read and its revalidation — distinct insert words (and
    /// the full word+stamp comparison in `revalidate`) keep such an ABA
    /// from passing as an unchanged record.
    version_clock: AtomicU64,
}

impl Default for Database {
    fn default() -> Self {
        Self::new(DatabaseConfig::default())
    }
}

impl Database {
    /// Creates an empty database.
    pub fn new(config: DatabaseConfig) -> Self {
        Database {
            catalog: RwLock::new(Catalog::new()),
            buffer: Arc::new(BufferPool::in_memory(config.buffer_frames)),
            heaps: RwLock::new(HashMap::new()),
            trees: RwLock::new(HashMap::new()),
            lock_mgr: Arc::new(LockManager::with_config(
                config.lock_buckets,
                config.lock_timeout,
            )),
            log: Arc::new(LogManager::new()),
            txns: TxnManager::new(),
            counters: DbCounters::default(),
            version_clock: AtomicU64::new(version::INITIAL_VERSION),
        }
    }

    /// The next fresh (even) version word for an inserted record.
    fn next_version_word(&self) -> u64 {
        self.version_clock.fetch_add(2, Ordering::Relaxed)
    }

    // --- schema management ------------------------------------------------

    /// Creates a table together with its primary index.
    pub fn create_table(&self, schema: TableSchema) -> StorageResult<TableId> {
        let pk = schema.primary_key.clone();
        let name = schema.name.clone();
        let table = self.catalog.write().add_table(schema)?;
        let index = self
            .catalog
            .write()
            .add_index(format!("pk_{name}"), table, pk, true, true)?;
        self.heaps
            .write()
            .insert(table, Arc::new(HeapFile::new(table, self.buffer.clone())));
        self.trees.write().insert(index, Arc::new(BPlusTree::new()));
        Ok(table)
    }

    /// Creates a secondary index and back-fills it from existing rows.
    pub fn create_secondary_index(
        &self,
        table: TableId,
        name: impl Into<String>,
        key_columns: Vec<usize>,
        unique: bool,
    ) -> StorageResult<IndexId> {
        let index =
            self.catalog
                .write()
                .add_index(name, table, key_columns.clone(), unique, false)?;
        let tree = Arc::new(BPlusTree::new());
        // Back-fill from the heap.
        let heap = self.heap(table)?;
        for (rid, bytes) in heap.scan()? {
            let values = decode_record(&bytes)?;
            let key: Key = key_columns.iter().map(|&c| values[c].clone()).collect();
            tree.insert(key, rid);
        }
        self.trees.write().insert(index, tree);
        Ok(index)
    }

    /// Resolves a table name to its id.
    pub fn table_id(&self, name: &str) -> StorageResult<TableId> {
        Ok(self.catalog.read().table_by_name(name)?.id)
    }

    /// Returns a clone of a table's schema.
    pub fn schema(&self, table: TableId) -> StorageResult<TableSchema> {
        Ok(self.catalog.read().table(table)?.schema.clone())
    }

    /// Runs `f` with read access to the catalog.
    pub fn with_catalog<R>(&self, f: impl FnOnce(&Catalog) -> R) -> R {
        f(&self.catalog.read())
    }

    /// Id of the secondary index with the given name, if any.
    pub fn index_id(&self, table: TableId, name: &str) -> Option<IndexId> {
        let catalog = self.catalog.read();
        catalog
            .table(table)
            .ok()?
            .indexes
            .iter()
            .filter_map(|i| catalog.index(*i).ok())
            .find(|d| d.name == name)
            .map(|d| d.id)
    }

    // --- transaction lifecycle ---------------------------------------------

    /// Starts a transaction.
    pub fn begin(&self) -> TxnId {
        let txn = self.txns.begin();
        self.log.append(txn, LogPayload::Begin);
        txn
    }

    /// Commits a transaction: forces the log and releases its centralized
    /// locks. Equivalent to [`Database::commit_policy`] with
    /// [`LockingPolicy::Centralized`].
    pub fn commit(&self, txn: TxnId) -> StorageResult<()> {
        self.commit_policy(txn, LockingPolicy::Centralized)
    }

    /// Commits a transaction under an explicit locking policy. A `Bypass`
    /// commit never touches the centralized lock manager at all — the
    /// engine guarantees the transaction acquired no locks there, and the
    /// paper's point is precisely that DORA's commit path crosses zero
    /// lock-manager critical sections.
    pub fn commit_policy(&self, txn: TxnId, policy: LockingPolicy) -> StorageResult<()> {
        self.txns.check_active(txn)?;
        let lsn = self.log.append(txn, LogPayload::Commit);
        self.log.force(lsn);
        self.txns.mark_committed(txn)?;
        if policy == LockingPolicy::Centralized {
            self.lock_mgr.unlock_all(txn);
        }
        self.counters.commits.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Aborts a transaction: applies its undo log, then releases its
    /// centralized locks. Equivalent to [`Database::abort_policy`] with
    /// [`LockingPolicy::Centralized`].
    pub fn abort(&self, txn: TxnId) -> StorageResult<()> {
        self.abort_policy(txn, LockingPolicy::Centralized)
    }

    /// Aborts a transaction under an explicit locking policy (see
    /// [`Database::commit_policy`] for why `Bypass` skips the centralized
    /// lock manager).
    pub fn abort_policy(&self, txn: TxnId, policy: LockingPolicy) -> StorageResult<()> {
        self.txns.check_active(txn)?;
        let undo = self.txns.mark_aborted(txn)?;
        for entry in undo {
            self.apply_undo(&entry)?;
        }
        self.log.append(txn, LogPayload::Abort);
        if policy == LockingPolicy::Centralized {
            self.lock_mgr.unlock_all(txn);
        }
        self.counters.aborts.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// State of a transaction, if known.
    pub fn txn_state(&self, txn: TxnId) -> Option<TxnState> {
        self.txns.state(txn)
    }

    // --- data operations ----------------------------------------------------

    /// Inserts a row.
    pub fn insert(
        &self,
        txn: TxnId,
        table: TableId,
        values: Vec<Value>,
        policy: LockingPolicy,
    ) -> StorageResult<RecordId> {
        self.txns.check_active(txn)?;
        let schema = self.schema(table)?;
        schema.validate(&values)?;
        let key = schema.primary_key_of(&values);
        if policy == LockingPolicy::Centralized {
            self.lock_mgr
                .lock(txn, LockTarget::Table(table), LockMode::IX)?;
            self.lock_mgr
                .lock(txn, LockTarget::Key(table, key.clone()), LockMode::X)?;
        }
        let primary = self.primary_tree(table)?;
        if primary.contains_key(&key) {
            return Err(StorageError::DuplicateKey(format!(
                "{}: {:?}",
                schema.name, key
            )));
        }
        // Unique secondary indexes.
        for (idx_id, cols, unique) in self.secondary_defs(table) {
            if unique {
                let skey: Key = cols.iter().map(|&c| values[c].clone()).collect();
                if self.tree(idx_id)?.contains_key(&skey) {
                    return Err(StorageError::DuplicateKey(format!(
                        "unique secondary index {idx_id}: {skey:?}"
                    )));
                }
            }
        }
        self.log.append(
            txn,
            LogPayload::Insert {
                table,
                key: key.clone(),
                tuple: values.clone(),
            },
        );
        let rid = self.heap(table)?.insert(&version::encode_record(
            RecordVersion {
                word: self.next_version_word(),
                stamp: txn,
            },
            &tuple::encode(&values),
        ))?;
        primary.insert(key.clone(), rid);
        for (idx_id, cols, _) in self.secondary_defs(table) {
            let skey: Key = cols.iter().map(|&c| values[c].clone()).collect();
            self.tree(idx_id)?.insert(skey, rid);
        }
        self.txns.push_undo(txn, UndoEntry::Insert { table, key })?;
        self.counters.inserts.fetch_add(1, Ordering::Relaxed);
        Ok(rid)
    }

    /// Point lookup by primary key.
    pub fn get(
        &self,
        txn: TxnId,
        table: TableId,
        key: &[Value],
        policy: LockingPolicy,
    ) -> StorageResult<Option<Vec<Value>>> {
        self.txns.check_active(txn)?;
        if policy == LockingPolicy::Centralized {
            self.lock_mgr
                .lock(txn, LockTarget::Table(table), LockMode::IS)?;
            self.lock_mgr
                .lock(txn, LockTarget::Key(table, key.to_vec()), LockMode::S)?;
        }
        self.counters.reads.fetch_add(1, Ordering::Relaxed);
        let primary = self.primary_tree(table)?;
        match primary.get_first(key) {
            Some(rid) => {
                let bytes = self.heap(table)?.get(rid)?;
                Ok(Some(decode_record(&bytes)?))
            }
            None => Ok(None),
        }
    }

    /// Lookup through a (secondary) index; returns full rows.
    pub fn index_lookup(
        &self,
        txn: TxnId,
        index: IndexId,
        key: &[Value],
        policy: LockingPolicy,
    ) -> StorageResult<Vec<Vec<Value>>> {
        self.txns.check_active(txn)?;
        let def = {
            let catalog = self.catalog.read();
            catalog.index(index)?.clone()
        };
        if policy == LockingPolicy::Centralized {
            self.lock_mgr
                .lock(txn, LockTarget::Table(def.table), LockMode::IS)?;
        }
        let tree = self.tree(index)?;
        let heap = self.heap(def.table)?;
        let schema = self.schema(def.table)?;
        let mut rows = Vec::new();
        for rid in tree.get(key) {
            let values = decode_record(&heap.get(rid)?)?;
            if policy == LockingPolicy::Centralized {
                let pk = schema.primary_key_of(&values);
                self.lock_mgr
                    .lock(txn, LockTarget::Key(def.table, pk), LockMode::S)?;
            }
            self.counters.reads.fetch_add(1, Ordering::Relaxed);
            rows.push(values);
        }
        Ok(rows)
    }

    /// Prefix scan through an index (composite keys); returns full rows.
    pub fn index_prefix_scan(
        &self,
        txn: TxnId,
        index: IndexId,
        prefix: &[Value],
        policy: LockingPolicy,
    ) -> StorageResult<Vec<Vec<Value>>> {
        self.txns.check_active(txn)?;
        let def = {
            let catalog = self.catalog.read();
            catalog.index(index)?.clone()
        };
        if policy == LockingPolicy::Centralized {
            self.lock_mgr
                .lock(txn, LockTarget::Table(def.table), LockMode::IS)?;
        }
        let tree = self.tree(index)?;
        let heap = self.heap(def.table)?;
        let schema = self.schema(def.table)?;
        let mut rows = Vec::new();
        for (_, rid) in tree.scan_prefix(prefix) {
            let values = decode_record(&heap.get(rid)?)?;
            if policy == LockingPolicy::Centralized {
                let pk = schema.primary_key_of(&values);
                self.lock_mgr
                    .lock(txn, LockTarget::Key(def.table, pk), LockMode::S)?;
            }
            self.counters.reads.fetch_add(1, Ordering::Relaxed);
            rows.push(values);
        }
        Ok(rows)
    }

    /// Range scan on the primary key (inclusive bounds); returns full rows.
    pub fn primary_range(
        &self,
        txn: TxnId,
        table: TableId,
        lo: &[Value],
        hi: &[Value],
        policy: LockingPolicy,
    ) -> StorageResult<Vec<Vec<Value>>> {
        self.txns.check_active(txn)?;
        if policy == LockingPolicy::Centralized {
            // Range predicates take a table-level shared lock (coarse but
            // deadlock-free; Shore-MT uses key-range locks).
            self.lock_mgr
                .lock(txn, LockTarget::Table(table), LockMode::S)?;
        }
        let tree = self.primary_tree(table)?;
        let heap = self.heap(table)?;
        let mut rows = Vec::new();
        for (_, rid) in tree.range(lo, hi) {
            self.counters.reads.fetch_add(1, Ordering::Relaxed);
            rows.push(decode_record(&heap.get(rid)?)?);
        }
        Ok(rows)
    }

    // --- validated (versioned) reads ----------------------------------------

    /// Validated point lookup by primary key: like [`Database::get`], but
    /// safe to run **without any lock** on the key. The record's version
    /// header is checked before and after decoding — an in-progress or
    /// uncommitted image is never returned; the read retries briefly and
    /// then reports the in-flight writer via
    /// [`StorageError::ReadUncommitted`] so the caller can park on it.
    ///
    /// Under [`LockingPolicy::Centralized`] the usual IS/S locks are taken
    /// first (validation then passes trivially); `Bypass` is the optimistic
    /// lock-free path the DORA executor and the conventional engine's
    /// audit transactions share.
    pub fn read_validated(
        &self,
        txn: TxnId,
        table: TableId,
        key: &[Value],
        policy: LockingPolicy,
    ) -> StorageResult<Option<Vec<Value>>> {
        let mut rows = self.read_many_validated(txn, table, &[key.to_vec()], policy)?;
        Ok(rows.pop().flatten())
    }

    /// Validated multi-key lookup: all `keys` are read and then revalidated
    /// as **one consistent snapshot** — either every returned row coexisted
    /// at a single point in time (none was rewritten between first read and
    /// revalidation, none carries an in-flight writer's stamp), or the call
    /// reports the conflicting record via [`StorageError::ReadUncommitted`].
    ///
    /// `None` entries report key **absence as of the index probe**: a key
    /// detached by a still-uncommitted delete already reads as missing
    /// (see the module docs — presence is not versioned, images are).
    pub fn read_many_validated(
        &self,
        txn: TxnId,
        table: TableId,
        keys: &[Key],
        policy: LockingPolicy,
    ) -> StorageResult<Vec<Option<Vec<Value>>>> {
        self.txns.check_active(txn)?;
        if policy == LockingPolicy::Centralized {
            self.lock_mgr
                .lock(txn, LockTarget::Table(table), LockMode::IS)?;
            for key in keys {
                self.lock_mgr
                    .lock(txn, LockTarget::Key(table, key.clone()), LockMode::S)?;
            }
        }
        let primary = self.primary_tree(table)?;
        let heap = self.heap(table)?;
        self.validated_attempt_loop(table, |db| {
            let mut rows = Vec::with_capacity(keys.len());
            let mut observed = Vec::with_capacity(keys.len());
            let mut observed_keys = Vec::with_capacity(keys.len());
            for key in keys {
                match primary.get_first(key) {
                    None => rows.push(None),
                    Some(rid) => match db.snapshot_record(txn, &heap, key, rid)? {
                        Ok((ver, values)) => {
                            rows.push(Some(values));
                            observed.push((rid, ver));
                            observed_keys.push(key);
                        }
                        Err(conflict) => return Ok(Err(conflict)),
                    },
                }
            }
            Ok(match revalidate(&heap, &observed) {
                Ok(()) => Ok(rows),
                Err(idx) => Err(SnapshotConflict::torn(observed_keys[idx], 0)),
            })
        })
    }

    /// Validated primary-key range scan (inclusive bounds): the lock-free
    /// counterpart of [`Database::primary_range`]. Record-level consistency
    /// is validated exactly as in [`Database::read_many_validated`]; range
    /// membership itself is as of the index probe (a concurrent insert or
    /// delete of *other* keys is not re-checked — no key-range locks on
    /// this path).
    pub fn scan_validated(
        &self,
        txn: TxnId,
        table: TableId,
        lo: &[Value],
        hi: &[Value],
        policy: LockingPolicy,
    ) -> StorageResult<Vec<Vec<Value>>> {
        self.txns.check_active(txn)?;
        if policy == LockingPolicy::Centralized {
            self.lock_mgr
                .lock(txn, LockTarget::Table(table), LockMode::S)?;
        }
        let primary = self.primary_tree(table)?;
        let heap = self.heap(table)?;
        self.validated_attempt_loop(table, |db| {
            let entries = primary.range(lo, hi);
            let mut rows = Vec::with_capacity(entries.len());
            let mut observed = Vec::with_capacity(entries.len());
            for (key, rid) in &entries {
                match db.snapshot_record(txn, &heap, key, *rid)? {
                    Ok((ver, values)) => {
                        rows.push(values);
                        observed.push((*rid, ver));
                    }
                    Err(conflict) => return Ok(Err(conflict)),
                }
            }
            Ok(match revalidate(&heap, &observed) {
                Ok(()) => Ok(rows),
                Err(idx) => Err(SnapshotConflict::torn(&entries[idx].0, 0)),
            })
        })
    }

    /// Runs `attempt` under the validated-read retry policy: torn reads
    /// (odd version words, words that moved between read and revalidation,
    /// records relocated mid-probe) spin up to [`VALIDATED_READ_SPINS`]
    /// times, uncommitted stamps give up after
    /// [`VALIDATED_UNCOMMITTED_SPINS`], and exhaustion surfaces the last
    /// conflict as [`StorageError::ReadUncommitted`].
    fn validated_attempt_loop<R>(
        &self,
        table: TableId,
        mut attempt: impl FnMut(&Self) -> StorageResult<Result<Vec<R>, SnapshotConflict>>,
    ) -> StorageResult<Vec<R>> {
        let mut uncommitted_hits = 0usize;
        let mut last_conflict = None;
        for _ in 0..VALIDATED_READ_SPINS {
            match attempt(self)? {
                Ok(rows) => {
                    self.counters
                        .validated_reads
                        .fetch_add(rows.len() as u64, Ordering::Relaxed);
                    return Ok(rows);
                }
                Err(conflict) => {
                    self.counters
                        .validated_retries
                        .fetch_add(1, Ordering::Relaxed);
                    if conflict.uncommitted {
                        uncommitted_hits += 1;
                    }
                    last_conflict = Some(conflict);
                    if uncommitted_hits >= VALIDATED_UNCOMMITTED_SPINS {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        }
        let conflict = last_conflict.expect("retry loop only exits with a conflict");
        Err(StorageError::ReadUncommitted {
            table,
            key: conflict.key,
            writer: conflict.writer,
        })
    }

    /// Reads one record under the snapshot protocol. Outer error: fatal
    /// storage failure. Inner error: a retryable conflict (torn word,
    /// uncommitted stamp, or record relocated since the index probe).
    fn snapshot_record(
        &self,
        txn: TxnId,
        heap: &HeapFile,
        key: &[Value],
        rid: RecordId,
    ) -> StorageResult<Result<(RecordVersion, Vec<Value>), SnapshotConflict>> {
        let (ver, payload) = match heap.get_versioned(rid) {
            Ok(read) => read,
            // Relocated or deleted between index probe and heap access:
            // retry the attempt, the index resolves to the new location.
            Err(StorageError::NotFound) => return Ok(Err(SnapshotConflict::torn(key, 0))),
            Err(e) => return Err(e),
        };
        if ver.is_write_in_progress() {
            return Ok(Err(SnapshotConflict::torn(key, ver.stamp)));
        }
        if !self.stamp_stable(txn, ver.stamp) {
            return Ok(Err(SnapshotConflict::uncommitted(key, ver.stamp)));
        }
        Ok(Ok((ver, tuple::decode(&payload)?)))
    }

    /// Whether a record stamped by `stamp` holds a committed image from
    /// `reader`'s point of view. Stamp 0 (loader/undo/recovery) and the
    /// reader's own writes are always stable; `Active` writers are not,
    /// and neither are `Aborted` ones — their undo may still be rewriting
    /// records (each rewrite publishes a fresh stamp-0 header, so aborted
    /// stamps are transient). A stamp the transaction manager no longer
    /// knows belongs to a long-finished, garbage-collected transaction.
    fn stamp_stable(&self, reader: TxnId, stamp: TxnId) -> bool {
        stamp == 0
            || stamp == reader
            || !matches!(
                self.txns.state(stamp),
                Some(TxnState::Active) | Some(TxnState::Aborted)
            )
    }

    /// Updates the row with primary key `key` by setting `(column, value)`
    /// pairs. Returns `false` when the row does not exist.
    pub fn update(
        &self,
        txn: TxnId,
        table: TableId,
        key: &[Value],
        updates: &[(usize, Value)],
        policy: LockingPolicy,
    ) -> StorageResult<bool> {
        self.txns.check_active(txn)?;
        let schema = self.schema(table)?;
        if policy == LockingPolicy::Centralized {
            self.lock_mgr
                .lock(txn, LockTarget::Table(table), LockMode::IX)?;
            self.lock_mgr
                .lock(txn, LockTarget::Key(table, key.to_vec()), LockMode::X)?;
        }
        let primary = self.primary_tree(table)?;
        let Some(rid) = primary.get_first(key) else {
            return Ok(false);
        };
        let heap = self.heap(table)?;
        // One page latch reads the pre-image AND stamps the record
        // write-in-progress (odd version word): validated readers retry or
        // park instead of decoding a record about to be rewritten. Every
        // error path below must restore the stable header, or the record
        // would block validated readers until this transaction finishes.
        let (old_version, payload) = heap.get_for_update(rid, txn)?;
        let restore = |e: StorageError| {
            let _ = heap.write_version(rid, old_version);
            e
        };
        let before = tuple::decode(&payload).map_err(&restore)?;
        let mut after = before.clone();
        for (col, value) in updates {
            if *col >= after.len() {
                return Err(restore(StorageError::SchemaMismatch(format!(
                    "column {col} out of range for table {}",
                    schema.name
                ))));
            }
            if schema.primary_key.contains(col) {
                return Err(restore(StorageError::SchemaMismatch(
                    "updating primary-key columns is not supported; delete and re-insert".into(),
                )));
            }
            after[*col] = value.clone();
        }
        schema.validate(&after).map_err(&restore)?;
        self.log.append(
            txn,
            LogPayload::Update {
                table,
                key: key.to_vec(),
                before: before.clone(),
                after: after.clone(),
            },
        );
        let outcome = heap
            .update(
                rid,
                &version::encode_record(old_version.publish(txn), &tuple::encode(&after)),
            )
            .map_err(&restore)?;
        let new_rid = match outcome {
            UpdateOutcome::InPlace => rid,
            UpdateOutcome::Moved(new_rid) => {
                primary.remove(key, rid);
                primary.insert(key.to_vec(), new_rid);
                new_rid
            }
        };
        // Maintain secondary indexes for changed key columns (and for moved
        // records, whose record id changed).
        for (idx_id, cols, _) in self.secondary_defs(table) {
            let old_key: Key = cols.iter().map(|&c| before[c].clone()).collect();
            let new_key: Key = cols.iter().map(|&c| after[c].clone()).collect();
            if old_key != new_key || new_rid != rid {
                let tree = self.tree(idx_id)?;
                tree.remove(&old_key, rid);
                tree.insert(new_key, new_rid);
            }
        }
        self.txns.push_undo(
            txn,
            UndoEntry::Update {
                table,
                key: key.to_vec(),
                before,
            },
        )?;
        self.counters.updates.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Deletes the row with primary key `key`. Returns `false` when absent.
    pub fn delete(
        &self,
        txn: TxnId,
        table: TableId,
        key: &[Value],
        policy: LockingPolicy,
    ) -> StorageResult<bool> {
        self.txns.check_active(txn)?;
        if policy == LockingPolicy::Centralized {
            self.lock_mgr
                .lock(txn, LockTarget::Table(table), LockMode::IX)?;
            self.lock_mgr
                .lock(txn, LockTarget::Key(table, key.to_vec()), LockMode::X)?;
        }
        let primary = self.primary_tree(table)?;
        let Some(rid) = primary.get_first(key) else {
            return Ok(false);
        };
        let heap = self.heap(table)?;
        // Stamp the record write-in-progress before it disappears: a
        // validated reader still holding its record id then sees an odd
        // version (retry/park) instead of a silently vanishing row whose
        // delete might yet be rolled back. Like `update`, every error path
        // below must restore the stable header — a record left odd would
        // wedge validated readers of this key forever.
        let (old_version, payload) = heap.get_for_update(rid, txn)?;
        let restore = |e: StorageError| {
            let _ = heap.write_version(rid, old_version);
            e
        };
        let before = tuple::decode(&payload).map_err(&restore)?;
        self.log.append(
            txn,
            LogPayload::Delete {
                table,
                key: key.to_vec(),
                before: before.clone(),
            },
        );
        heap.delete(rid).map_err(&restore)?;
        primary.remove(key, rid);
        for (idx_id, cols, _) in self.secondary_defs(table) {
            let skey: Key = cols.iter().map(|&c| before[c].clone()).collect();
            self.tree(idx_id)?.remove(&skey, rid);
        }
        self.txns.push_undo(
            txn,
            UndoEntry::Delete {
                table,
                key: key.to_vec(),
                before,
            },
        )?;
        self.counters.deletes.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Full table scan; returns every row. Intended for loaders and
    /// verification, not the hot path.
    pub fn scan(&self, table: TableId) -> StorageResult<Vec<Vec<Value>>> {
        let heap = self.heap(table)?;
        heap.scan()?
            .into_iter()
            .map(|(_, bytes)| decode_record(&bytes))
            .collect()
    }

    /// Number of rows in a table.
    pub fn row_count(&self, table: TableId) -> StorageResult<usize> {
        Ok(self.primary_tree(table)?.len())
    }

    /// Writes a fuzzy checkpoint record.
    pub fn checkpoint(&self) {
        let active = self.txns.active_txns();
        let lsn = self.log.append(0, LogPayload::Checkpoint { active });
        self.log.force(lsn);
        self.buffer.flush_all();
    }

    // --- statistics ---------------------------------------------------------

    /// Centralized lock-manager statistics.
    pub fn lock_stats(&self) -> LockStatsSnapshot {
        self.lock_mgr.stats().snapshot()
    }

    /// Write-ahead-log statistics.
    pub fn log_stats(&self) -> LogStatsSnapshot {
        self.log.stats()
    }

    /// Operation counters.
    pub fn counters(&self) -> DbCountersSnapshot {
        DbCountersSnapshot {
            reads: self.counters.reads.load(Ordering::Relaxed),
            inserts: self.counters.inserts.load(Ordering::Relaxed),
            updates: self.counters.updates.load(Ordering::Relaxed),
            deletes: self.counters.deletes.load(Ordering::Relaxed),
            commits: self.counters.commits.load(Ordering::Relaxed),
            aborts: self.counters.aborts.load(Ordering::Relaxed),
            validated_reads: self.counters.validated_reads.load(Ordering::Relaxed),
            validated_retries: self.counters.validated_retries.load(Ordering::Relaxed),
        }
    }

    /// The write-ahead log (exposed for recovery and tests).
    pub fn log(&self) -> &Arc<LogManager> {
        &self.log
    }

    /// The centralized lock manager (exposed for engine instrumentation).
    pub fn lock_manager(&self) -> &Arc<LockManager> {
        &self.lock_mgr
    }

    // --- raw (non-transactional) operations used by undo and recovery ------

    /// Inserts a row bypassing transactions, locks and logging. Used by
    /// abort (undo of a delete) and by recovery redo.
    pub fn insert_raw(&self, table: TableId, values: Vec<Value>) -> StorageResult<()> {
        let schema = self.schema(table)?;
        let key = schema.primary_key_of(&values);
        let primary = self.primary_tree(table)?;
        if primary.contains_key(&key) {
            return Err(StorageError::DuplicateKey(format!("{key:?}")));
        }
        // Stamp 0: loader/undo/recovery images are stable by construction.
        let rid = self.heap(table)?.insert(&version::encode_record(
            RecordVersion {
                word: self.next_version_word(),
                stamp: 0,
            },
            &tuple::encode(&values),
        ))?;
        primary.insert(key, rid);
        for (idx_id, cols, _) in self.secondary_defs(table) {
            let skey: Key = cols.iter().map(|&c| values[c].clone()).collect();
            self.tree(idx_id)?.insert(skey, rid);
        }
        Ok(())
    }

    /// Deletes a row by primary key bypassing transactions, locks and
    /// logging.
    pub fn delete_raw(&self, table: TableId, key: &[Value]) -> StorageResult<bool> {
        let primary = self.primary_tree(table)?;
        let Some(rid) = primary.get_first(key) else {
            return Ok(false);
        };
        let heap = self.heap(table)?;
        let before = decode_record(&heap.get(rid)?)?;
        heap.delete(rid)?;
        primary.remove(key, rid);
        for (idx_id, cols, _) in self.secondary_defs(table) {
            let skey: Key = cols.iter().map(|&c| before[c].clone()).collect();
            self.tree(idx_id)?.remove(&skey, rid);
        }
        Ok(true)
    }

    /// Overwrites a row (identified by primary key) with a full image,
    /// bypassing transactions, locks and logging.
    pub fn update_raw(
        &self,
        table: TableId,
        key: &[Value],
        image: Vec<Value>,
    ) -> StorageResult<bool> {
        let primary = self.primary_tree(table)?;
        let Some(rid) = primary.get_first(key) else {
            return Ok(false);
        };
        let heap = self.heap(table)?;
        // Stamp 0 publishes a stable image: undo (which runs while its
        // transaction is already marked aborted) and recovery redo both
        // leave the record immediately readable by validated readers.
        let (old_version, payload) = heap.get_for_update(rid, 0)?;
        let before = tuple::decode(&payload)?;
        let outcome = heap.update(
            rid,
            &version::encode_record(old_version.publish(0), &tuple::encode(&image)),
        )?;
        let new_rid = match outcome {
            UpdateOutcome::InPlace => rid,
            UpdateOutcome::Moved(new_rid) => {
                primary.remove(key, rid);
                primary.insert(key.to_vec(), new_rid);
                new_rid
            }
        };
        for (idx_id, cols, _) in self.secondary_defs(table) {
            let old_key: Key = cols.iter().map(|&c| before[c].clone()).collect();
            let new_key: Key = cols.iter().map(|&c| image[c].clone()).collect();
            if old_key != new_key || new_rid != rid {
                let tree = self.tree(idx_id)?;
                tree.remove(&old_key, rid);
                tree.insert(new_key, new_rid);
            }
        }
        Ok(true)
    }

    // --- internals ----------------------------------------------------------

    fn apply_undo(&self, entry: &UndoEntry) -> StorageResult<()> {
        match entry {
            UndoEntry::Insert { table, key } => {
                self.delete_raw(*table, key)?;
            }
            UndoEntry::Update { table, key, before } => {
                self.update_raw(*table, key, before.clone())?;
            }
            UndoEntry::Delete { table, before, .. } => {
                self.insert_raw(*table, before.clone())?;
            }
        }
        Ok(())
    }

    fn heap(&self, table: TableId) -> StorageResult<Arc<HeapFile>> {
        self.heaps
            .read()
            .get(&table)
            .cloned()
            .ok_or(StorageError::UnknownTable(table))
    }

    fn tree(&self, index: IndexId) -> StorageResult<Arc<BPlusTree>> {
        self.trees
            .read()
            .get(&index)
            .cloned()
            .ok_or(StorageError::UnknownIndex(index))
    }

    /// Tree of the primary index of `table`.
    pub fn primary_tree(&self, table: TableId) -> StorageResult<Arc<BPlusTree>> {
        let idx = self.catalog.read().primary_index(table)?.id;
        self.tree(idx)
    }

    /// `(index id, key column positions, unique)` for every secondary index
    /// of a table.
    fn secondary_defs(&self, table: TableId) -> Vec<(IndexId, Vec<usize>, bool)> {
        self.catalog
            .read()
            .secondary_indexes(table)
            .into_iter()
            .map(|d| (d.id, d.key_columns.clone(), d.unique))
            .collect()
    }
}

/// Splits a heap record into its version header and tuple bytes and
/// decodes the tuple. The lock-protected read paths use this directly —
/// version checking is only the lock-free (validated) path's business.
fn decode_record(bytes: &[u8]) -> StorageResult<Vec<Value>> {
    let (_, payload) = version::split(bytes)?;
    tuple::decode(payload)
}

/// Revalidation pass of the snapshot protocol: every observed version
/// header must still be in place — the **full** header, word and stamp,
/// because slotted pages reuse deleted slots and a recycled record id
/// carrying a coincidentally equal word (ABA) must not pass as unchanged.
/// Returns the index of the first moved record.
fn revalidate(heap: &HeapFile, observed: &[(RecordId, RecordVersion)]) -> Result<(), usize> {
    for (idx, &(rid, ver)) in observed.iter().enumerate() {
        let stable = heap.read_version(rid).map(|v| v == ver).unwrap_or(false);
        if !stable {
            return Err(idx);
        }
    }
    Ok(())
}

/// A retryable conflict observed by one validated-read attempt.
struct SnapshotConflict {
    /// Primary key of the conflicting record.
    key: Key,
    /// The transaction stamped on it (0 when unknown — torn or moved).
    writer: TxnId,
    /// Whether the conflict was an uncommitted stamp (fail fast) rather
    /// than a transient torn/moved word (spin).
    uncommitted: bool,
}

impl SnapshotConflict {
    fn torn(key: &[Value], writer: TxnId) -> Self {
        SnapshotConflict {
            key: key.to_vec(),
            writer,
            uncommitted: false,
        }
    }

    fn uncommitted(key: &[Value], writer: TxnId) -> Self {
        SnapshotConflict {
            key: key.to_vec(),
            writer,
            uncommitted: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::types::DataType;

    fn test_db() -> (Database, TableId) {
        let db = Database::default();
        let schema = TableSchema::new(
            "accounts",
            vec![
                ColumnDef::new("id", DataType::BigInt),
                ColumnDef::new("owner", DataType::Varchar(32)),
                ColumnDef::new("balance", DataType::Double),
                ColumnDef::new("active", DataType::Bool),
            ],
            vec![0],
        );
        let tid = db.create_table(schema).unwrap();
        (db, tid)
    }

    fn row(id: i64, owner: &str, balance: f64) -> Vec<Value> {
        vec![
            Value::BigInt(id),
            Value::Varchar(owner.into()),
            Value::Double(balance),
            Value::Bool(true),
        ]
    }

    #[test]
    fn insert_get_commit() {
        let (db, t) = test_db();
        let txn = db.begin();
        db.insert(txn, t, row(1, "alice", 100.0), LockingPolicy::Centralized)
            .unwrap();
        let got = db
            .get(txn, t, &[Value::BigInt(1)], LockingPolicy::Centralized)
            .unwrap()
            .unwrap();
        assert_eq!(got[1], Value::Varchar("alice".into()));
        db.commit(txn).unwrap();
        assert_eq!(db.txn_state(txn), Some(TxnState::Committed));
        assert_eq!(db.counters().commits, 1);
        // Locks are released after commit.
        assert_eq!(db.lock_manager().held_count(txn), 0);
    }

    #[test]
    fn duplicate_primary_key_rejected() {
        let (db, t) = test_db();
        let txn = db.begin();
        db.insert(txn, t, row(1, "a", 1.0), LockingPolicy::Bypass)
            .unwrap();
        let err = db.insert(txn, t, row(1, "b", 2.0), LockingPolicy::Bypass);
        assert!(matches!(err, Err(StorageError::DuplicateKey(_))));
        db.commit(txn).unwrap();
    }

    #[test]
    fn update_and_delete() {
        let (db, t) = test_db();
        let txn = db.begin();
        db.insert(txn, t, row(7, "bob", 50.0), LockingPolicy::Centralized)
            .unwrap();
        assert!(db
            .update(
                txn,
                t,
                &[Value::BigInt(7)],
                &[(2, Value::Double(75.0))],
                LockingPolicy::Centralized
            )
            .unwrap());
        let got = db
            .get(txn, t, &[Value::BigInt(7)], LockingPolicy::Centralized)
            .unwrap()
            .unwrap();
        assert_eq!(got[2], Value::Double(75.0));
        assert!(db
            .delete(txn, t, &[Value::BigInt(7)], LockingPolicy::Centralized)
            .unwrap());
        assert!(db
            .get(txn, t, &[Value::BigInt(7)], LockingPolicy::Centralized)
            .unwrap()
            .is_none());
        // Updating / deleting a missing row reports false.
        assert!(!db
            .update(
                txn,
                t,
                &[Value::BigInt(99)],
                &[(2, Value::Double(1.0))],
                LockingPolicy::Bypass
            )
            .unwrap());
        assert!(!db
            .delete(txn, t, &[Value::BigInt(99)], LockingPolicy::Bypass)
            .unwrap());
        db.commit(txn).unwrap();
    }

    #[test]
    fn primary_key_update_rejected() {
        let (db, t) = test_db();
        let txn = db.begin();
        db.insert(txn, t, row(1, "a", 1.0), LockingPolicy::Bypass)
            .unwrap();
        let err = db.update(
            txn,
            t,
            &[Value::BigInt(1)],
            &[(0, Value::BigInt(2))],
            LockingPolicy::Bypass,
        );
        assert!(matches!(err, Err(StorageError::SchemaMismatch(_))));
    }

    #[test]
    fn abort_rolls_back_all_changes() {
        let (db, t) = test_db();
        // Committed baseline row.
        let setup = db.begin();
        db.insert(setup, t, row(1, "alice", 100.0), LockingPolicy::Bypass)
            .unwrap();
        db.commit(setup).unwrap();

        let txn = db.begin();
        db.insert(txn, t, row(2, "bob", 10.0), LockingPolicy::Bypass)
            .unwrap();
        db.update(
            txn,
            t,
            &[Value::BigInt(1)],
            &[(2, Value::Double(0.0))],
            LockingPolicy::Bypass,
        )
        .unwrap();
        db.delete(txn, t, &[Value::BigInt(1)], LockingPolicy::Bypass)
            .unwrap();
        db.abort(txn).unwrap();

        let check = db.begin();
        // Row 2 is gone, row 1 restored with its original balance.
        assert!(db
            .get(check, t, &[Value::BigInt(2)], LockingPolicy::Bypass)
            .unwrap()
            .is_none());
        let r1 = db
            .get(check, t, &[Value::BigInt(1)], LockingPolicy::Bypass)
            .unwrap()
            .unwrap();
        assert_eq!(r1[2], Value::Double(100.0));
        assert_eq!(db.row_count(t).unwrap(), 1);
        db.commit(check).unwrap();
        assert_eq!(db.counters().aborts, 1);
    }

    #[test]
    fn secondary_index_lookup_and_maintenance() {
        let (db, t) = test_db();
        let owner_idx = db
            .create_secondary_index(t, "idx_owner", vec![1], false)
            .unwrap();
        let txn = db.begin();
        db.insert(txn, t, row(1, "carol", 5.0), LockingPolicy::Bypass)
            .unwrap();
        db.insert(txn, t, row(2, "carol", 6.0), LockingPolicy::Bypass)
            .unwrap();
        db.insert(txn, t, row(3, "dave", 7.0), LockingPolicy::Bypass)
            .unwrap();
        let rows = db
            .index_lookup(
                txn,
                owner_idx,
                &[Value::Varchar("carol".into())],
                LockingPolicy::Bypass,
            )
            .unwrap();
        assert_eq!(rows.len(), 2);
        // Rename carol #2 -> eve and check both lookups.
        db.update(
            txn,
            t,
            &[Value::BigInt(2)],
            &[(1, Value::Varchar("eve".into()))],
            LockingPolicy::Bypass,
        )
        .unwrap();
        assert_eq!(
            db.index_lookup(
                txn,
                owner_idx,
                &[Value::Varchar("carol".into())],
                LockingPolicy::Bypass
            )
            .unwrap()
            .len(),
            1
        );
        assert_eq!(
            db.index_lookup(
                txn,
                owner_idx,
                &[Value::Varchar("eve".into())],
                LockingPolicy::Bypass
            )
            .unwrap()
            .len(),
            1
        );
        // Delete and check index cleanup.
        db.delete(txn, t, &[Value::BigInt(3)], LockingPolicy::Bypass)
            .unwrap();
        assert!(db
            .index_lookup(
                txn,
                owner_idx,
                &[Value::Varchar("dave".into())],
                LockingPolicy::Bypass
            )
            .unwrap()
            .is_empty());
        db.commit(txn).unwrap();
    }

    #[test]
    fn secondary_index_backfills_existing_rows() {
        let (db, t) = test_db();
        let txn = db.begin();
        for i in 0..50 {
            db.insert(
                txn,
                t,
                row(i, if i % 2 == 0 { "even" } else { "odd" }, i as f64),
                LockingPolicy::Bypass,
            )
            .unwrap();
        }
        db.commit(txn).unwrap();
        let idx = db
            .create_secondary_index(t, "idx_owner", vec![1], false)
            .unwrap();
        let txn = db.begin();
        let evens = db
            .index_lookup(
                txn,
                idx,
                &[Value::Varchar("even".into())],
                LockingPolicy::Bypass,
            )
            .unwrap();
        assert_eq!(evens.len(), 25);
        db.commit(txn).unwrap();
        assert_eq!(db.index_id(t, "idx_owner"), Some(idx));
        assert_eq!(db.index_id(t, "nope"), None);
    }

    #[test]
    fn unique_secondary_index_enforced() {
        let (db, t) = test_db();
        db.create_secondary_index(t, "uq_owner", vec![1], true)
            .unwrap();
        let txn = db.begin();
        db.insert(txn, t, row(1, "solo", 1.0), LockingPolicy::Bypass)
            .unwrap();
        assert!(matches!(
            db.insert(txn, t, row(2, "solo", 2.0), LockingPolicy::Bypass),
            Err(StorageError::DuplicateKey(_))
        ));
        db.commit(txn).unwrap();
    }

    #[test]
    fn primary_range_scan() {
        let (db, t) = test_db();
        let txn = db.begin();
        for i in 0..100 {
            db.insert(txn, t, row(i, "x", i as f64), LockingPolicy::Bypass)
                .unwrap();
        }
        let rows = db
            .primary_range(
                txn,
                t,
                &[Value::BigInt(10)],
                &[Value::BigInt(19)],
                LockingPolicy::Bypass,
            )
            .unwrap();
        assert_eq!(rows.len(), 10);
        db.commit(txn).unwrap();
    }

    #[test]
    fn conflicting_writers_serialize_under_centralized_locking() {
        use std::sync::Arc;
        let (db, t) = test_db();
        let db = Arc::new(db);
        let setup = db.begin();
        db.insert(setup, t, row(1, "shared", 0.0), LockingPolicy::Centralized)
            .unwrap();
        db.commit(setup).unwrap();

        let mut handles = Vec::new();
        for _ in 0..4 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                let mut done = 0;
                for _ in 0..25 {
                    loop {
                        let txn = db.begin();
                        let cur = db
                            .get(txn, t, &[Value::BigInt(1)], LockingPolicy::Centralized)
                            .and_then(|r| r.ok_or(StorageError::NotFound));
                        let result = cur.and_then(|r| {
                            let bal = r[2].as_f64().unwrap();
                            db.update(
                                txn,
                                t,
                                &[Value::BigInt(1)],
                                &[(2, Value::Double(bal + 1.0))],
                                LockingPolicy::Centralized,
                            )
                        });
                        match result {
                            Ok(_) => {
                                db.commit(txn).unwrap();
                                done += 1;
                                break;
                            }
                            Err(e) if e.is_retryable() => {
                                let _ = db.abort(txn);
                            }
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                }
                done
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
        let check = db.begin();
        let r = db
            .get(check, t, &[Value::BigInt(1)], LockingPolicy::Bypass)
            .unwrap()
            .unwrap();
        assert_eq!(r[2], Value::Double(100.0));
        db.commit(check).unwrap();
    }

    #[test]
    fn checkpoint_and_counters() {
        let (db, t) = test_db();
        let txn = db.begin();
        db.insert(txn, t, row(1, "x", 1.0), LockingPolicy::Bypass)
            .unwrap();
        db.checkpoint();
        db.commit(txn).unwrap();
        let stats = db.log_stats();
        assert!(stats.appended >= 3); // begin + insert + checkpoint + commit
        let counters = db.counters();
        assert_eq!(counters.inserts, 1);
        assert_eq!(db.scan(t).unwrap().len(), 1);
    }

    /// The record id and current version header of a row (test access to
    /// the versioned substrate beneath the facade).
    fn version_of(db: &Database, t: TableId, key: &[Value]) -> (RecordId, RecordVersion) {
        let rid = db.primary_tree(t).unwrap().get_first(key).unwrap();
        (rid, db.heap(t).unwrap().read_version(rid).unwrap())
    }

    #[test]
    fn validated_read_serves_committed_rows_and_rejects_uncommitted_writes() {
        let (db, t) = test_db();
        let setup = db.begin();
        db.insert(setup, t, row(1, "alice", 100.0), LockingPolicy::Bypass)
            .unwrap();
        db.commit(setup).unwrap();

        // Committed row: served, even without any lock.
        let reader = db.begin();
        let got = db
            .read_validated(reader, t, &[Value::BigInt(1)], LockingPolicy::Bypass)
            .unwrap()
            .unwrap();
        assert_eq!(got[2], Value::Double(100.0));
        // Missing key: None, not an error.
        assert!(db
            .read_validated(reader, t, &[Value::BigInt(9)], LockingPolicy::Bypass)
            .unwrap()
            .is_none());

        // An uncommitted update must never surface: the reader is told who
        // is in its way instead.
        let writer = db.begin();
        db.update(
            writer,
            t,
            &[Value::BigInt(1)],
            &[(2, Value::Double(0.0))],
            LockingPolicy::Bypass,
        )
        .unwrap();
        let err = db
            .read_validated(reader, t, &[Value::BigInt(1)], LockingPolicy::Bypass)
            .unwrap_err();
        assert_eq!(
            err,
            StorageError::ReadUncommitted {
                table: t,
                key: vec![Value::BigInt(1)],
                writer,
            }
        );
        assert!(err.is_retryable());
        assert!(db.counters().validated_retries > 0);

        // The writer itself sees its own write through the validated path.
        let own = db
            .read_validated(writer, t, &[Value::BigInt(1)], LockingPolicy::Bypass)
            .unwrap()
            .unwrap();
        assert_eq!(own[2], Value::Double(0.0));

        // Once committed, everyone does.
        db.commit(writer).unwrap();
        let got = db
            .read_validated(reader, t, &[Value::BigInt(1)], LockingPolicy::Bypass)
            .unwrap()
            .unwrap();
        assert_eq!(got[2], Value::Double(0.0));
        db.commit(reader).unwrap();
    }

    #[test]
    fn validated_read_rejects_aborted_writers_until_undo_restores() {
        let (db, t) = test_db();
        let setup = db.begin();
        db.insert(setup, t, row(1, "a", 50.0), LockingPolicy::Bypass)
            .unwrap();
        db.commit(setup).unwrap();

        let writer = db.begin();
        db.update(
            writer,
            t,
            &[Value::BigInt(1)],
            &[(2, Value::Double(-1.0))],
            LockingPolicy::Bypass,
        )
        .unwrap();
        db.abort(writer).unwrap();
        // Undo rewrote the record with a stable stamp-0 header: the
        // restored value is immediately readable, the dirty one never was.
        let reader = db.begin();
        let got = db
            .read_validated(reader, t, &[Value::BigInt(1)], LockingPolicy::Bypass)
            .unwrap()
            .unwrap();
        assert_eq!(got[2], Value::Double(50.0));
        let (_, ver) = version_of(&db, t, &[Value::BigInt(1)]);
        assert_eq!(ver.stamp, 0);
        assert!(!ver.is_write_in_progress());
        db.commit(reader).unwrap();
    }

    #[test]
    fn validated_read_retries_torn_words_then_reports_the_marked_writer() {
        let (db, t) = test_db();
        let setup = db.begin();
        db.insert(setup, t, row(1, "a", 1.0), LockingPolicy::Bypass)
            .unwrap();
        db.commit(setup).unwrap();
        // Force a write-in-progress marker as a wedged writer would leave
        // mid-rewrite: the validated read must spin, give up, and name the
        // stamped writer — never decode the in-progress image.
        let (rid, ver) = version_of(&db, t, &[Value::BigInt(1)]);
        let heap = db.heap(t).unwrap();
        heap.write_version(rid, ver.begin_write(777)).unwrap();
        let reader = db.begin();
        let before = db.counters().validated_retries;
        let err = db
            .read_validated(reader, t, &[Value::BigInt(1)], LockingPolicy::Bypass)
            .unwrap_err();
        assert!(
            matches!(err, StorageError::ReadUncommitted { writer: 777, .. }),
            "{err:?}"
        );
        assert!(db.counters().validated_retries >= before + VALIDATED_READ_SPINS as u64);
        // Restoring the stable header unblocks the reader.
        heap.write_version(rid, ver).unwrap();
        assert!(db
            .read_validated(reader, t, &[Value::BigInt(1)], LockingPolicy::Bypass)
            .unwrap()
            .is_some());
        db.commit(reader).unwrap();
    }

    #[test]
    fn read_many_and_scan_validated_return_consistent_snapshots() {
        let (db, t) = test_db();
        let setup = db.begin();
        for i in 0..10 {
            db.insert(setup, t, row(i, "x", i as f64), LockingPolicy::Bypass)
                .unwrap();
        }
        db.commit(setup).unwrap();

        let reader = db.begin();
        let keys: Vec<Key> = vec![
            vec![Value::BigInt(2)],
            vec![Value::BigInt(99)], // missing
            vec![Value::BigInt(7)],
        ];
        let rows = db
            .read_many_validated(reader, t, &keys, LockingPolicy::Bypass)
            .unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].as_ref().unwrap()[2], Value::Double(2.0));
        assert!(rows[1].is_none());
        assert_eq!(rows[2].as_ref().unwrap()[2], Value::Double(7.0));

        let scanned = db
            .scan_validated(
                reader,
                t,
                &[Value::BigInt(3)],
                &[Value::BigInt(6)],
                LockingPolicy::Bypass,
            )
            .unwrap();
        assert_eq!(scanned.len(), 4);
        let locked = db
            .primary_range(
                reader,
                t,
                &[Value::BigInt(3)],
                &[Value::BigInt(6)],
                LockingPolicy::Bypass,
            )
            .unwrap();
        assert_eq!(scanned, locked);
        assert!(db.counters().validated_reads >= 6);
        db.commit(reader).unwrap();
    }

    #[test]
    fn validated_read_under_centralized_policy_takes_shared_locks() {
        let (db, t) = test_db();
        let setup = db.begin();
        db.insert(setup, t, row(1, "a", 1.0), LockingPolicy::Bypass)
            .unwrap();
        db.commit(setup).unwrap();
        let reader = db.begin();
        db.read_validated(reader, t, &[Value::BigInt(1)], LockingPolicy::Centralized)
            .unwrap()
            .unwrap();
        assert!(db.lock_manager().held_count(reader) > 0);
        db.commit(reader).unwrap();
        assert_eq!(db.lock_manager().held_count(reader), 0);
    }

    #[test]
    fn failed_update_restores_the_stable_version_header() {
        let (db, t) = test_db();
        let setup = db.begin();
        db.insert(setup, t, row(1, "a", 1.0), LockingPolicy::Bypass)
            .unwrap();
        db.commit(setup).unwrap();
        let (_, before) = version_of(&db, t, &[Value::BigInt(1)]);

        // A rejected update (primary-key column) must not leave the record
        // marked write-in-progress.
        let txn = db.begin();
        assert!(db
            .update(
                txn,
                t,
                &[Value::BigInt(1)],
                &[(0, Value::BigInt(2))],
                LockingPolicy::Bypass,
            )
            .is_err());
        let (_, after) = version_of(&db, t, &[Value::BigInt(1)]);
        assert_eq!(after, before, "stable header restored on the error path");
        assert!(db
            .read_validated(txn, t, &[Value::BigInt(1)], LockingPolicy::Bypass)
            .unwrap()
            .is_some());
    }
}

#[cfg(test)]
mod version_proptests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::types::DataType;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    /// Loads `pair(id BIGINT, value BIGINT)` with two rows whose values sum
    /// to `total`, then forces both version words to the edge of
    /// wrap-around so every publish in the test crosses `u64::MAX`.
    fn wrapping_pair_db(total: i64) -> (Arc<Database>, TableId) {
        let db = Arc::new(Database::default());
        let t = db
            .create_table(TableSchema::new(
                "pair",
                vec![
                    ColumnDef::new("id", DataType::BigInt),
                    ColumnDef::new("value", DataType::BigInt),
                ],
                vec![0],
            ))
            .unwrap();
        let setup = db.begin();
        for (id, value) in [(0i64, total), (1i64, 0i64)] {
            db.insert(
                setup,
                t,
                vec![Value::BigInt(id), Value::BigInt(value)],
                LockingPolicy::Bypass,
            )
            .unwrap();
        }
        db.commit(setup).unwrap();
        for id in 0..2i64 {
            let rid = db
                .primary_tree(t)
                .unwrap()
                .get_first(&[Value::BigInt(id)])
                .unwrap();
            db.heap(t)
                .unwrap()
                .write_version(
                    rid,
                    RecordVersion {
                        word: u64::MAX - 5,
                        stamp: 0,
                    },
                )
                .unwrap();
        }
        (db, t)
    }

    proptest! {
        /// N writer threads × M validated readers over version words forced
        /// across wrap-around: no torn decode and no uncommitted value ever
        /// surfaces. Writers either move an (even) delta between the two
        /// rows and commit, or scribble odd "poison" values and abort — a
        /// validated reader must only ever observe even values summing to
        /// the conserved total.
        #[test]
        fn validated_readers_never_observe_uncommitted_or_torn_values(
            params in (1usize..3, 1usize..3, 3u64..10, 1u64..200)
        ) {
            let (writers, readers, rounds, seed) = params;
            const TOTAL: i64 = 1_000_000;
            let (db, t) = wrapping_pair_db(TOTAL);
            let writer_gate = Arc::new(parking_lot::Mutex::new(()));
            let done = Arc::new(AtomicBool::new(false));

            let writer_handles: Vec<_> = (0..writers)
                .map(|w| {
                    let db = db.clone();
                    let gate = writer_gate.clone();
                    let mut rng = seed.wrapping_mul(w as u64 + 1) | 1;
                    std::thread::spawn(move || {
                        for _ in 0..rounds {
                            // xorshift
                            rng ^= rng << 13;
                            rng ^= rng >> 7;
                            rng ^= rng << 17;
                            let delta = ((rng % 50) as i64) * 2; // even
                            let poison = rng % 2 == 0;
                            // Writers serialize among themselves (the
                            // engines' lock layers do this in production);
                            // readers stay fully concurrent and lock-free.
                            let _excl = gate.lock();
                            let txn = db.begin();
                            let read = |id: i64| {
                                db.get(txn, t, &[Value::BigInt(id)], LockingPolicy::Bypass)
                                    .unwrap()
                                    .unwrap()[1]
                                    .as_i64()
                                    .unwrap()
                            };
                            let (v0, v1) = (read(0), read(1));
                            if poison {
                                for id in 0..2 {
                                    db.update(
                                        txn,
                                        t,
                                        &[Value::BigInt(id)],
                                        &[(1, Value::BigInt(7_777_777))], // odd
                                        LockingPolicy::Bypass,
                                    )
                                    .unwrap();
                                }
                                db.abort(txn).unwrap();
                            } else {
                                for (id, value) in [(0, v0 - delta), (1, v1 + delta)] {
                                    db.update(
                                        txn,
                                        t,
                                        &[Value::BigInt(id)],
                                        &[(1, Value::BigInt(value))],
                                        LockingPolicy::Bypass,
                                    )
                                    .unwrap();
                                }
                                db.commit(txn).unwrap();
                            }
                        }
                    })
                })
                .collect();

            let reader_handles: Vec<_> = (0..readers)
                .map(|_| {
                    let db = db.clone();
                    let done = done.clone();
                    std::thread::spawn(move || {
                        let deadline = Instant::now() + Duration::from_secs(30);
                        let mut observed = 0u64;
                        let keys: Vec<Key> =
                            vec![vec![Value::BigInt(0)], vec![Value::BigInt(1)]];
                        while !done.load(AtomicOrdering::Acquire)
                            || observed == 0
                        {
                            assert!(Instant::now() < deadline, "reader starved");
                            let txn = db.begin();
                            match db.read_many_validated(txn, t, &keys, LockingPolicy::Bypass)
                            {
                                Ok(rows) => {
                                    let v0 = rows[0].as_ref().unwrap()[1].as_i64().unwrap();
                                    let v1 = rows[1].as_ref().unwrap()[1].as_i64().unwrap();
                                    assert_eq!(
                                        v0 % 2, 0,
                                        "odd poison value surfaced: {v0}"
                                    );
                                    assert_eq!(
                                        v1 % 2, 0,
                                        "odd poison value surfaced: {v1}"
                                    );
                                    assert_eq!(
                                        v0 + v1, TOTAL,
                                        "torn snapshot: {v0} + {v1} != {TOTAL}"
                                    );
                                    observed += 1;
                                }
                                // Blocked on an in-flight writer: retry.
                                Err(StorageError::ReadUncommitted { .. }) => {}
                                Err(e) => panic!("unexpected error: {e}"),
                            }
                            db.commit(txn).unwrap();
                        }
                        observed
                    })
                })
                .collect();

            for h in writer_handles {
                h.join().unwrap();
            }
            done.store(true, AtomicOrdering::Release);
            for h in reader_handles {
                prop_assert!(h.join().unwrap() > 0, "every reader saw a snapshot");
            }
            // The version words crossed u64::MAX and stayed even-stable.
            for id in 0..2i64 {
                let rid = db
                    .primary_tree(t)
                    .unwrap()
                    .get_first(&[Value::BigInt(id)])
                    .unwrap();
                let ver = db.heap(t).unwrap().read_version(rid).unwrap();
                prop_assert!(!ver.is_write_in_progress());
                prop_assert!(
                    ver.word < u64::MAX - 5,
                    "word {} never wrapped despite starting at MAX-5",
                    ver.word
                );
            }
        }
    }
}
