//! The database facade: catalog + heap files + indexes + lock manager +
//! write-ahead log + transaction manager behind one handle.
//!
//! Both execution engines operate on this type. The only difference between
//! them at this layer is the [`LockingPolicy`] they pass: the conventional
//! engine uses `Centralized` (hierarchical 2PL through the shared lock
//! manager), while DORA passes `Bypass` because isolation is already
//! guaranteed by the partition-local lock tables of its worker threads.
//!
//! Every heap record carries a [`crate::version`] header (seqlock-style
//! version word + committing-txn stamp), minted on insert and advanced by
//! update/delete. Lock-protected reads skip it; the **validated read**
//! API ([`Database::read_validated`], [`Database::read_many_validated`],
//! [`Database::scan_validated`]) uses it to serve lock-free readers a
//! consistent committed snapshot: in-progress or uncommitted *images* are
//! rejected, torn reads retry, and an unchanged set of version headers
//! after decoding proves the rows were not rewritten mid-read.
//!
//! The protocol versions **record images**, not key *presence*: index
//! entries are removed at delete time, so once a deleting transaction has
//! detached a key, a validated reader observes the absence even while
//! that delete is uncommitted (and the row may yet be undone back into
//! existence). Symmetrically, `scan_validated`'s range membership is as
//! of the index probe. Workloads that audit under concurrent
//! inserts/deletes of rows — not just value updates — need the key-range
//! versioning noted in the ROADMAP.
//!
//! # Zero global critical sections per operation
//!
//! The per-operation hot path acquires **no global lock** under
//! [`LockingPolicy::Bypass`]:
//!
//! * Catalog resolution rides an **Arc-swapped immutable snapshot**
//!   ([`TableHandle`]): one atomic pointer load replaces the seven
//!   `catalog.read()` / `heaps.read()` / `trees.read()` acquisitions an
//!   operation used to pay. DDL builds a fresh snapshot and publishes it;
//!   superseded snapshots are retained until the database drops, so a
//!   loaded handle stays valid without reference-count traffic.
//! * The WAL is a lock-free consolidation buffer ([`crate::wal`]); the
//!   only contended wait left on the commit path is group commit's.
//! * Transaction state is a striped atomic slot table ([`crate::txn`]);
//!   stamp checks on the validated-read path are plain atomic loads.
//! * **Read-only commits take the fast path**: `begin` logs nothing (the
//!   Begin record is written lazily by the transaction's first write), so
//!   a transaction with an empty undo list commits without appending
//!   Begin/Commit records and without forcing the log at all.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use crate::btree::BPlusTree;
use crate::buffer::{BufferPool, BufferStatsSnapshot, MemStore, PageStore};
use crate::error::{StorageError, StorageResult};
use crate::heap::{HeapFile, UpdateOutcome};
use crate::lock::{LockManager, LockMode, LockStatsSnapshot, LockTarget};
use crate::recovery::{self, CheckpointImage, RecoveryReport};
use crate::schema::{Catalog, TableSchema};
use crate::segment::WalConfig;
use crate::tuple;
use crate::txn::{TxnManager, TxnState, TxnStatsSnapshot, UndoEntry};
use crate::types::{IndexId, Key, Lsn, RecordId, TableId, TxnId, Value};
use crate::version::{self, RecordVersion};
use crate::wal::{LogManager, LogPayload, LogStatsSnapshot};

/// Attempts a validated read makes before giving up with
/// [`StorageError::ReadUncommitted`] when version words keep moving
/// underneath it (a torn read resolves within nanoseconds; a genuinely
/// write-hot record is better parked on than spun on).
const VALIDATED_READ_SPINS: usize = 32;

/// Attempts a validated read grants a record whose stamp names an
/// in-flight transaction. Commit latency dwarfs a spin loop, so the read
/// fails fast and lets the caller decide between retrying and parking.
const VALIDATED_UNCOMMITTED_SPINS: usize = 4;

/// How an operation should interact with the centralized lock manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockingPolicy {
    /// Acquire hierarchical locks through the centralized lock manager
    /// (conventional thread-to-transaction execution).
    Centralized,
    /// Skip the centralized lock manager entirely (DORA: isolation comes
    /// from partition-local lock tables).
    Bypass,
}

/// Construction parameters for a [`Database`].
#[derive(Debug, Clone)]
pub struct DatabaseConfig {
    /// Number of buffer-pool frames.
    pub buffer_frames: usize,
    /// Number of latch-protected buckets in the centralized lock manager.
    pub lock_buckets: usize,
    /// How long a lock request may wait before timing out.
    pub lock_timeout: Duration,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        DatabaseConfig {
            buffer_frames: 4096,
            lock_buckets: 64,
            lock_timeout: Duration::from_millis(500),
        }
    }
}

/// Simple operation counters for the monitoring panel.
#[derive(Debug, Default)]
pub struct DbCounters {
    /// Row reads served.
    pub reads: AtomicU64,
    /// Row inserts.
    pub inserts: AtomicU64,
    /// Row updates.
    pub updates: AtomicU64,
    /// Row deletes.
    pub deletes: AtomicU64,
    /// Transactions committed.
    pub commits: AtomicU64,
    /// Transactions aborted.
    pub aborts: AtomicU64,
    /// Record snapshots served by the validated (versioned) read path.
    pub validated_reads: AtomicU64,
    /// Validated-read attempts retried or rejected because of an
    /// in-progress, uncommitted, or moved record version.
    pub validated_retries: AtomicU64,
}

/// Point-in-time copy of [`DbCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DbCountersSnapshot {
    /// Row reads served.
    pub reads: u64,
    /// Row inserts.
    pub inserts: u64,
    /// Row updates.
    pub updates: u64,
    /// Row deletes.
    pub deletes: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Transactions aborted.
    pub aborts: u64,
    /// Record snapshots served by the validated (versioned) read path.
    pub validated_reads: u64,
    /// Validated-read attempts retried or rejected because of an
    /// in-progress, uncommitted, or moved record version.
    pub validated_retries: u64,
}

/// Everything an operation needs to touch one table, resolved once:
/// schema, heap file, primary tree, and secondary index handles. Borrowed
/// from the database's current catalog snapshot with **no lock** — see
/// [`Database::table_handle`].
pub struct TableHandle {
    /// The table's id.
    pub id: TableId,
    /// The table's schema (frozen at snapshot build time; DDL publishes a
    /// new snapshot rather than mutating this one).
    pub schema: TableSchema,
    /// The table's heap file.
    pub heap: Arc<HeapFile>,
    /// The primary-index tree.
    pub primary: Arc<BPlusTree>,
    /// Secondary indexes of the table, in catalog order.
    pub secondaries: Vec<SecondaryHandle>,
}

/// One secondary index of a [`TableHandle`].
pub struct SecondaryHandle {
    /// The index id.
    pub id: IndexId,
    /// Positions of the indexed columns within the row.
    pub key_columns: Vec<usize>,
    /// Whether the index enforces uniqueness.
    pub unique: bool,
    /// The index tree.
    pub tree: Arc<BPlusTree>,
}

impl SecondaryHandle {
    /// The index key of `values` under this index.
    fn key_of(&self, values: &[Value]) -> Key {
        self.key_columns
            .iter()
            .map(|&c| values[c].clone())
            .collect()
    }
}

/// Index-id resolution entry of a snapshot (secondary lookups arrive by
/// index id, not table id).
struct IndexEntry {
    table: TableId,
    tree: Arc<BPlusTree>,
}

/// One immutable published view of the catalog: table handles plus the
/// index-id resolution map.
struct CatalogSnapshot {
    tables: HashMap<TableId, TableHandle>,
    indexes: HashMap<IndexId, IndexEntry>,
}

/// The Arc-swap cell holding the current [`CatalogSnapshot`].
///
/// `load` is one `Acquire` pointer read — no lock, no reference-count
/// traffic. `publish` (DDL only) boxes the new snapshot, **retains** it in
/// `history` for the lifetime of the database, and swaps the pointer with
/// `Release`. Retention is what makes the lock-free borrow sound: an
/// operation that loaded the previous snapshot keeps using a box that is
/// never freed underneath it. Memory cost is one superseded snapshot per
/// DDL statement — tables are created once, not on the hot path.
struct SnapshotCell {
    current: AtomicPtr<CatalogSnapshot>,
    // The boxing is what keeps `current`'s pointee at a stable address
    // when the history vector reallocates — Vec<CatalogSnapshot> would
    // move the snapshots and dangle every loaded reference.
    #[allow(clippy::vec_box)]
    history: Mutex<Vec<Box<CatalogSnapshot>>>,
}

impl SnapshotCell {
    fn new(initial: CatalogSnapshot) -> Self {
        let cell = SnapshotCell {
            current: AtomicPtr::new(std::ptr::null_mut()),
            history: Mutex::new(Vec::new()),
        };
        cell.publish(initial);
        cell
    }

    fn load(&self) -> &CatalogSnapshot {
        // SAFETY: `current` always points at a box owned by `history`,
        // which only grows; the snapshot outlives any `&self` borrow.
        unsafe { &*self.current.load(Ordering::Acquire) }
    }

    fn publish(&self, snapshot: CatalogSnapshot) {
        let boxed = Box::new(snapshot);
        let ptr = &*boxed as *const CatalogSnapshot as *mut CatalogSnapshot;
        // Retain before the swap so no reader can ever observe a pointer
        // whose box is not yet (or no longer) owned.
        self.history.lock().push(boxed);
        self.current.store(ptr, Ordering::Release);
    }
}

/// The storage-manager facade.
pub struct Database {
    /// DDL master copy of the catalog. Cold path only: name lookups and
    /// snapshot rebuilds — no data operation takes this lock.
    catalog: RwLock<Catalog>,
    /// The hot-path view: tables and indexes resolved to handles.
    snapshot: SnapshotCell,
    buffer: Arc<BufferPool>,
    lock_mgr: Arc<LockManager>,
    log: Arc<LogManager>,
    txns: TxnManager,
    /// Durable-mode configuration, set once by
    /// [`Database::recover_and_attach_wal`]. The mutex doubles as the
    /// checkpoint serialization lock: at most one fuzzy checkpoint runs
    /// at a time.
    wal_cfg: Mutex<Option<WalConfig>>,
    /// Quiesce point for online DDL: writers pass through per-thread
    /// striped turnstiles; `create_secondary_index` closes the gate to
    /// drain in-flight mutations before its scan-then-publish back-fill.
    write_gate: WriteGate,
    counters: DbCounters,
    /// Mints the (even) version word of every freshly inserted record.
    /// A database-wide clock instead of a constant start value: a slotted
    /// page reuses deleted slots, so a record id can be recycled between
    /// a validated read and its revalidation — distinct insert words (and
    /// the full word+stamp comparison in `revalidate`) keep such an ABA
    /// from passing as an unchanged record.
    version_clock: AtomicU64,
}

impl Default for Database {
    fn default() -> Self {
        Self::new(DatabaseConfig::default())
    }
}

impl Database {
    /// Creates an empty database over an in-memory page store.
    pub fn new(config: DatabaseConfig) -> Self {
        Self::with_store(config, Arc::new(MemStore::new()))
    }

    /// Creates an empty database whose buffer pool runs over `store`
    /// (e.g. a [`crate::buffer::FilePageStore`] for larger-than-memory
    /// workloads). The pool is wired to the log's WAL-before-data gate:
    /// a dirty page is never written to the store before the log is
    /// durable past the page's last-mutation LSN.
    pub fn with_store(config: DatabaseConfig, store: Arc<dyn PageStore>) -> Self {
        let log = Arc::new(LogManager::new());
        let gate: Arc<dyn crate::buffer::WalGate> = log.clone();
        Database {
            catalog: RwLock::new(Catalog::new()),
            snapshot: SnapshotCell::new(CatalogSnapshot {
                tables: HashMap::new(),
                indexes: HashMap::new(),
            }),
            buffer: Arc::new(BufferPool::with_gate(
                store,
                config.buffer_frames,
                Some(gate),
            )),
            lock_mgr: Arc::new(LockManager::with_config(
                config.lock_buckets,
                config.lock_timeout,
            )),
            log,
            txns: TxnManager::new(),
            wal_cfg: Mutex::new(None),
            write_gate: WriteGate::new(),
            counters: DbCounters::default(),
            version_clock: AtomicU64::new(version::INITIAL_VERSION),
        }
    }

    /// The next fresh (even) version word for an inserted record.
    fn next_version_word(&self) -> u64 {
        self.version_clock.fetch_add(2, Ordering::Relaxed)
    }

    // --- schema management ------------------------------------------------

    /// Rebuilds and publishes the hot-path snapshot from the catalog.
    /// Called with the catalog write lock held (DDL is serialized), so
    /// two concurrent DDL statements cannot publish stale views over each
    /// other. Existing heap/tree handles are carried over from the
    /// superseded snapshot; brand-new ones arrive via `fresh_trees` /
    /// `fresh_heaps`.
    fn publish_snapshot(
        &self,
        catalog: &Catalog,
        fresh_heaps: &HashMap<TableId, Arc<HeapFile>>,
        fresh_trees: &HashMap<IndexId, Arc<BPlusTree>>,
    ) {
        let old = self.snapshot.load();
        let tree_of = |id: IndexId| -> Arc<BPlusTree> {
            fresh_trees
                .get(&id)
                .or_else(|| old.indexes.get(&id).map(|e| &e.tree))
                .expect("every catalog index has a tree")
                .clone()
        };
        let mut tables = HashMap::new();
        let mut indexes = HashMap::new();
        for def in catalog.tables() {
            let heap = fresh_heaps
                .get(&def.id)
                .cloned()
                .or_else(|| old.tables.get(&def.id).map(|h| h.heap.clone()))
                .expect("every catalog table has a heap");
            let primary = catalog
                .primary_index(def.id)
                .expect("every table has a primary index");
            let secondaries = catalog
                .secondary_indexes(def.id)
                .into_iter()
                .map(|idx| SecondaryHandle {
                    id: idx.id,
                    key_columns: idx.key_columns.clone(),
                    unique: idx.unique,
                    tree: tree_of(idx.id),
                })
                .collect();
            for idx in &def.indexes {
                indexes.insert(
                    *idx,
                    IndexEntry {
                        table: def.id,
                        tree: tree_of(*idx),
                    },
                );
            }
            tables.insert(
                def.id,
                TableHandle {
                    id: def.id,
                    schema: def.schema.clone(),
                    heap,
                    primary: tree_of(primary.id),
                    secondaries,
                },
            );
        }
        self.snapshot.publish(CatalogSnapshot { tables, indexes });
    }

    /// Creates a table together with its primary index.
    pub fn create_table(&self, schema: TableSchema) -> StorageResult<TableId> {
        let pk = schema.primary_key.clone();
        let name = schema.name.clone();
        let mut catalog = self.catalog.write();
        let table = catalog.add_table(schema)?;
        let index = catalog.add_index(format!("pk_{name}"), table, pk, true, true)?;
        let mut fresh_heaps = HashMap::new();
        fresh_heaps.insert(table, Arc::new(HeapFile::new(table, self.buffer.clone())));
        let mut fresh_trees = HashMap::new();
        fresh_trees.insert(index, Arc::new(BPlusTree::new()));
        self.publish_snapshot(&catalog, &fresh_heaps, &fresh_trees);
        Ok(table)
    }

    /// Creates a secondary index and back-fills it from existing rows.
    ///
    /// Safe to run concurrently with writers. With the catalog write lock
    /// held (serializing DDL), the internal write gate is closed: every
    /// in-flight mutation drains and new writers park at their turnstile
    /// *before* resolving a table handle. The back-fill scan therefore
    /// sees a frozen heap, and the snapshot carrying the new index is
    /// published before the gate reopens — a resuming writer re-resolves
    /// its handle under the gate and maintains the new index from its
    /// very first row. (The pre-gate implementation had a documented
    /// scan-then-publish race: a row inserted during the back-fill could
    /// be missing from the new index.
    /// `secondary_index_built_under_concurrent_writers` hammers exactly
    /// that interleaving.)
    pub fn create_secondary_index(
        &self,
        table: TableId,
        name: impl Into<String>,
        key_columns: Vec<usize>,
        unique: bool,
    ) -> StorageResult<IndexId> {
        let mut catalog = self.catalog.write();
        let index = catalog.add_index(name, table, key_columns.clone(), unique, false)?;
        // Quiesce writers for the scan-and-publish window. Reopened when
        // `_quiesced` drops — after the new snapshot is published.
        let _quiesced = self.write_gate.close();
        let tree = Arc::new(BPlusTree::new());
        // Back-fill from the heap.
        let heap = self.heap(table)?;
        for (rid, bytes) in heap.scan()? {
            let values = decode_record(&bytes)?;
            let key: Key = key_columns.iter().map(|&c| values[c].clone()).collect();
            tree.insert(key, rid);
        }
        let mut fresh_trees = HashMap::new();
        fresh_trees.insert(index, tree);
        self.publish_snapshot(&catalog, &HashMap::new(), &fresh_trees);
        Ok(index)
    }

    /// Resolves a table to its hot-path handle (schema, heap, primary and
    /// secondary trees) with **one atomic load and no lock**. Engines
    /// resolve once per action/transaction; every data operation resolves
    /// once internally.
    pub fn table_handle(&self, table: TableId) -> StorageResult<&TableHandle> {
        self.snapshot
            .load()
            .tables
            .get(&table)
            .ok_or(StorageError::UnknownTable(table))
    }

    /// Resolves a table name to its id.
    pub fn table_id(&self, name: &str) -> StorageResult<TableId> {
        Ok(self.catalog.read().table_by_name(name)?.id)
    }

    /// Returns a clone of a table's schema. Hot callers should prefer
    /// [`Database::table_handle`] and borrow `handle.schema` instead.
    pub fn schema(&self, table: TableId) -> StorageResult<TableSchema> {
        Ok(self.table_handle(table)?.schema.clone())
    }

    /// Runs `f` with read access to the catalog.
    pub fn with_catalog<R>(&self, f: impl FnOnce(&Catalog) -> R) -> R {
        f(&self.catalog.read())
    }

    /// Id of the secondary index with the given name, if any.
    pub fn index_id(&self, table: TableId, name: &str) -> Option<IndexId> {
        let catalog = self.catalog.read();
        catalog
            .table(table)
            .ok()?
            .indexes
            .iter()
            .filter_map(|i| catalog.index(*i).ok())
            .find(|d| d.name == name)
            .map(|d| d.id)
    }

    // --- transaction lifecycle ---------------------------------------------

    /// Starts a transaction. Logs **nothing**: the Begin record is
    /// written lazily by the transaction's first data modification,
    /// which is what lets a read-only transaction commit without
    /// touching the log at all.
    pub fn begin(&self) -> TxnId {
        self.txns.begin()
    }

    /// Writes the transaction's Begin record exactly once, before its
    /// first logged operation. Concurrent first writes (DORA actions of
    /// one transaction on different partitions) race on an atomic claim;
    /// recovery's analysis pass does not depend on Begin preceding the
    /// data record in LSN order — any record marks the transaction
    /// started — so the rare claim-winner-publishes-second interleaving
    /// is harmless.
    fn log_begin_if_first(&self, txn: TxnId) -> StorageResult<()> {
        if self.txns.claim_begin_log(txn)? {
            // Publish a lower bound on the transaction's first LSN
            // *before* appending Begin: a fuzzy checkpoint computing its
            // truncation floor ([`crate::txn::TxnManager::oldest_active_first_lsn`])
            // must never observe a begin-claimed transaction without a
            // floor, or it could truncate the Begin record out from under
            // an in-flight loser.
            self.txns.note_first_lsn(txn, self.log.next_lsn_hint())?;
            self.log.append(txn, LogPayload::Begin);
        }
        Ok(())
    }

    /// Commits a transaction: forces the log and releases its centralized
    /// locks. Equivalent to [`Database::commit_policy`] with
    /// [`LockingPolicy::Centralized`].
    pub fn commit(&self, txn: TxnId) -> StorageResult<()> {
        self.commit_policy(txn, LockingPolicy::Centralized)
    }

    /// Commits a transaction under an explicit locking policy. A `Bypass`
    /// commit never touches the centralized lock manager at all — the
    /// engine guarantees the transaction acquired no locks there, and the
    /// paper's point is precisely that DORA's commit path crosses zero
    /// lock-manager critical sections.
    pub fn commit_policy(&self, txn: TxnId, policy: LockingPolicy) -> StorageResult<()> {
        self.txns.check_active(txn)?;
        // Read-only fast path: a transaction that never logged anything
        // has nothing to make durable — no Begin/Commit records, no
        // force. Group commit is paid only by transactions that wrote.
        if self.txns.begin_logged(txn) {
            let lsn = self.log.append(txn, LogPayload::Commit);
            // Durability failure fails the commit *before* the
            // transaction is marked committed or acknowledged: the caller
            // sees [`StorageError::LogIo`] (retryable) or
            // [`StorageError::LogPoisoned`] (fatal) and must abort.
            self.log.force(lsn)?;
        }
        self.txns.mark_committed(txn)?;
        if policy == LockingPolicy::Centralized {
            self.lock_mgr.unlock_all(txn);
        }
        self.counters.commits.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Aborts a transaction: applies its undo log, then releases its
    /// centralized locks. Equivalent to [`Database::abort_policy`] with
    /// [`LockingPolicy::Centralized`].
    pub fn abort(&self, txn: TxnId) -> StorageResult<()> {
        self.abort_policy(txn, LockingPolicy::Centralized)
    }

    /// Aborts a transaction under an explicit locking policy (see
    /// [`Database::commit_policy`] for why `Bypass` skips the centralized
    /// lock manager).
    pub fn abort_policy(&self, txn: TxnId, policy: LockingPolicy) -> StorageResult<()> {
        self.txns.check_active(txn)?;
        let undo = self.txns.mark_aborted(txn)?;
        // In durable mode each undo step is preceded by a compensation
        // (CLR) record under the system transaction id 0, so a crash mid-
        // abort replays as: loser's records skipped, logged CLRs redone,
        // remaining rollback completed by recovery's undo pass — all
        // idempotent. CLRs are appended (not forced): the Abort path
        // never blocks on an fsync, and a poisoned log cannot strand a
        // rollback.
        let log_clrs = self.log.is_file_backed() && self.txns.begin_logged(txn);
        for entry in undo {
            if log_clrs {
                self.log.append(0, compensation_payload(&entry));
            }
            // A failed undo leaves the slot in its mid-rollback state
            // (never reclaimed, stamps stay unstable) — conservative by
            // construction.
            self.apply_undo(&entry)?;
        }
        // Read-only transactions logged nothing; an Abort record without
        // a Begin would be noise.
        if self.txns.begin_logged(txn) {
            self.log.append(txn, LogPayload::Abort);
        }
        self.txns.finish_aborted(txn)?;
        if policy == LockingPolicy::Centralized {
            self.lock_mgr.unlock_all(txn);
        }
        self.counters.aborts.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// State of a transaction, if known.
    pub fn txn_state(&self, txn: TxnId) -> Option<TxnState> {
        self.txns.state(txn)
    }

    // --- data operations ----------------------------------------------------

    /// Inserts a row.
    pub fn insert(
        &self,
        txn: TxnId,
        table: TableId,
        values: Vec<Value>,
        policy: LockingPolicy,
    ) -> StorageResult<RecordId> {
        self.txns.check_active(txn)?;
        let handle = self.table_handle(table)?;
        handle.schema.validate(&values)?;
        let key = handle.schema.primary_key_of(&values);
        if policy == LockingPolicy::Centralized {
            self.lock_mgr
                .lock(txn, LockTarget::Table(table), LockMode::IX)?;
            self.lock_mgr
                .lock(txn, LockTarget::Key(table, key.clone()), LockMode::X)?;
        }
        // Enter the DDL quiesce gate *after* lock acquisition (a gated
        // writer never waits on the lock manager) and re-resolve the
        // handle under it: a writer parked by `create_secondary_index`
        // resumes against the snapshot that already carries the new
        // index.
        let _gate = self.write_gate.enter();
        let handle = self.table_handle(table)?;
        if handle.primary.contains_key(&key) {
            return Err(StorageError::DuplicateKey(format!(
                "{}: {:?}",
                handle.schema.name, key
            )));
        }
        // Unique secondary indexes.
        for sec in &handle.secondaries {
            if sec.unique {
                let skey = sec.key_of(&values);
                if sec.tree.contains_key(&skey) {
                    return Err(StorageError::DuplicateKey(format!(
                        "unique secondary index {}: {skey:?}",
                        sec.id
                    )));
                }
            }
        }
        self.log_begin_if_first(txn)?;
        self.log.append(
            txn,
            LogPayload::Insert {
                table,
                key: key.clone(),
                tuple: values.clone(),
            },
        );
        let rid = handle.heap.insert(&version::encode_record(
            RecordVersion {
                word: self.next_version_word(),
                stamp: txn,
            },
            &tuple::encode(&values),
        ))?;
        handle.primary.insert(key.clone(), rid);
        for sec in &handle.secondaries {
            sec.tree.insert(sec.key_of(&values), rid);
        }
        self.txns.push_undo(txn, UndoEntry::Insert { table, key })?;
        self.counters.inserts.fetch_add(1, Ordering::Relaxed);
        Ok(rid)
    }

    /// Point lookup by primary key.
    pub fn get(
        &self,
        txn: TxnId,
        table: TableId,
        key: &[Value],
        policy: LockingPolicy,
    ) -> StorageResult<Option<Vec<Value>>> {
        self.txns.check_active(txn)?;
        if policy == LockingPolicy::Centralized {
            self.lock_mgr
                .lock(txn, LockTarget::Table(table), LockMode::IS)?;
            self.lock_mgr
                .lock(txn, LockTarget::Key(table, key.to_vec()), LockMode::S)?;
        }
        self.counters.reads.fetch_add(1, Ordering::Relaxed);
        let handle = self.table_handle(table)?;
        match handle.primary.get_first(key) {
            Some(rid) => {
                let bytes = handle.heap.get(rid)?;
                Ok(Some(decode_record(&bytes)?))
            }
            None => Ok(None),
        }
    }

    /// Lookup through a (secondary) index; returns full rows.
    pub fn index_lookup(
        &self,
        txn: TxnId,
        index: IndexId,
        key: &[Value],
        policy: LockingPolicy,
    ) -> StorageResult<Vec<Vec<Value>>> {
        self.txns.check_active(txn)?;
        let (table, tree) = self.index_entry(index)?;
        let handle = self.table_handle(table)?;
        if policy == LockingPolicy::Centralized {
            self.lock_mgr
                .lock(txn, LockTarget::Table(table), LockMode::IS)?;
        }
        let mut rows = Vec::new();
        for rid in tree.get(key) {
            let values = decode_record(&handle.heap.get(rid)?)?;
            if policy == LockingPolicy::Centralized {
                let pk = handle.schema.primary_key_of(&values);
                self.lock_mgr
                    .lock(txn, LockTarget::Key(table, pk), LockMode::S)?;
            }
            self.counters.reads.fetch_add(1, Ordering::Relaxed);
            rows.push(values);
        }
        Ok(rows)
    }

    /// Prefix scan through an index (composite keys); returns full rows.
    pub fn index_prefix_scan(
        &self,
        txn: TxnId,
        index: IndexId,
        prefix: &[Value],
        policy: LockingPolicy,
    ) -> StorageResult<Vec<Vec<Value>>> {
        self.txns.check_active(txn)?;
        let (table, tree) = self.index_entry(index)?;
        let handle = self.table_handle(table)?;
        if policy == LockingPolicy::Centralized {
            self.lock_mgr
                .lock(txn, LockTarget::Table(table), LockMode::IS)?;
        }
        let mut rows = Vec::new();
        for (_, rid) in tree.scan_prefix(prefix) {
            let values = decode_record(&handle.heap.get(rid)?)?;
            if policy == LockingPolicy::Centralized {
                let pk = handle.schema.primary_key_of(&values);
                self.lock_mgr
                    .lock(txn, LockTarget::Key(table, pk), LockMode::S)?;
            }
            self.counters.reads.fetch_add(1, Ordering::Relaxed);
            rows.push(values);
        }
        Ok(rows)
    }

    /// Range scan on the primary key (inclusive bounds); returns full rows.
    pub fn primary_range(
        &self,
        txn: TxnId,
        table: TableId,
        lo: &[Value],
        hi: &[Value],
        policy: LockingPolicy,
    ) -> StorageResult<Vec<Vec<Value>>> {
        self.txns.check_active(txn)?;
        if policy == LockingPolicy::Centralized {
            // Range predicates take a table-level shared lock (coarse but
            // deadlock-free; Shore-MT uses key-range locks).
            self.lock_mgr
                .lock(txn, LockTarget::Table(table), LockMode::S)?;
        }
        let handle = self.table_handle(table)?;
        let mut rows = Vec::new();
        for (_, rid) in handle.primary.range(lo, hi) {
            self.counters.reads.fetch_add(1, Ordering::Relaxed);
            rows.push(decode_record(&handle.heap.get(rid)?)?);
        }
        Ok(rows)
    }

    // --- validated (versioned) reads ----------------------------------------

    /// Validated point lookup by primary key: like [`Database::get`], but
    /// safe to run **without any lock** on the key. The record's version
    /// header is checked before and after decoding — an in-progress or
    /// uncommitted image is never returned; the read retries briefly and
    /// then reports the in-flight writer via
    /// [`StorageError::ReadUncommitted`] so the caller can park on it.
    ///
    /// Under [`LockingPolicy::Centralized`] the usual IS/S locks are taken
    /// first (validation then passes trivially); `Bypass` is the optimistic
    /// lock-free path the DORA executor and the conventional engine's
    /// audit transactions share.
    pub fn read_validated(
        &self,
        txn: TxnId,
        table: TableId,
        key: &[Value],
        policy: LockingPolicy,
    ) -> StorageResult<Option<Vec<Value>>> {
        let mut rows = self.read_many_validated(txn, table, &[key.to_vec()], policy)?;
        Ok(rows.pop().flatten())
    }

    /// Validated multi-key lookup: all `keys` are read and then revalidated
    /// as **one consistent snapshot** — either every returned row coexisted
    /// at a single point in time (none was rewritten between first read and
    /// revalidation, none carries an in-flight writer's stamp), or the call
    /// reports the conflicting record via [`StorageError::ReadUncommitted`].
    ///
    /// `None` entries report key **absence as of the index probe**: a key
    /// detached by a still-uncommitted delete already reads as missing
    /// (see the module docs — presence is not versioned, images are).
    pub fn read_many_validated(
        &self,
        txn: TxnId,
        table: TableId,
        keys: &[Key],
        policy: LockingPolicy,
    ) -> StorageResult<Vec<Option<Vec<Value>>>> {
        self.txns.check_active(txn)?;
        if policy == LockingPolicy::Centralized {
            self.lock_mgr
                .lock(txn, LockTarget::Table(table), LockMode::IS)?;
            for key in keys {
                self.lock_mgr
                    .lock(txn, LockTarget::Key(table, key.clone()), LockMode::S)?;
            }
        }
        let handle = self.table_handle(table)?;
        self.validated_attempt_loop(table, |db| {
            let mut rows = Vec::with_capacity(keys.len());
            let mut observed = Vec::with_capacity(keys.len());
            let mut observed_keys = Vec::with_capacity(keys.len());
            for key in keys {
                match handle.primary.get_first(key) {
                    None => rows.push(None),
                    Some(rid) => match db.snapshot_record(txn, handle, key, rid)? {
                        Ok((ver, values)) => {
                            rows.push(Some(values));
                            observed.push((rid, ver));
                            observed_keys.push(key);
                        }
                        Err(conflict) => return Ok(Err(conflict)),
                    },
                }
            }
            Ok(match revalidate(&handle.heap, &observed) {
                Ok(()) => Ok(rows),
                Err(idx) => Err(SnapshotConflict::torn(observed_keys[idx], 0)),
            })
        })
    }

    /// Validated primary-key range scan (inclusive bounds): the lock-free
    /// counterpart of [`Database::primary_range`]. Record-level consistency
    /// is validated exactly as in [`Database::read_many_validated`]; range
    /// membership itself is as of the index probe (a concurrent insert or
    /// delete of *other* keys is not re-checked — no key-range locks on
    /// this path).
    pub fn scan_validated(
        &self,
        txn: TxnId,
        table: TableId,
        lo: &[Value],
        hi: &[Value],
        policy: LockingPolicy,
    ) -> StorageResult<Vec<Vec<Value>>> {
        self.txns.check_active(txn)?;
        if policy == LockingPolicy::Centralized {
            self.lock_mgr
                .lock(txn, LockTarget::Table(table), LockMode::S)?;
        }
        let handle = self.table_handle(table)?;
        self.validated_attempt_loop(table, |db| {
            let entries = handle.primary.range(lo, hi);
            let mut rows = Vec::with_capacity(entries.len());
            let mut observed = Vec::with_capacity(entries.len());
            for (key, rid) in &entries {
                match db.snapshot_record(txn, handle, key, *rid)? {
                    Ok((ver, values)) => {
                        rows.push(values);
                        observed.push((*rid, ver));
                    }
                    Err(conflict) => return Ok(Err(conflict)),
                }
            }
            Ok(match revalidate(&handle.heap, &observed) {
                Ok(()) => Ok(rows),
                Err(idx) => Err(SnapshotConflict::torn(&entries[idx].0, 0)),
            })
        })
    }

    /// Runs `attempt` under the validated-read retry policy: torn reads
    /// (odd version words, words that moved between read and revalidation,
    /// records relocated mid-probe) spin up to [`VALIDATED_READ_SPINS`]
    /// times, uncommitted stamps give up after
    /// [`VALIDATED_UNCOMMITTED_SPINS`], and exhaustion surfaces the last
    /// conflict as [`StorageError::ReadUncommitted`].
    fn validated_attempt_loop<R>(
        &self,
        table: TableId,
        mut attempt: impl FnMut(&Self) -> StorageResult<Result<Vec<R>, SnapshotConflict>>,
    ) -> StorageResult<Vec<R>> {
        let mut uncommitted_hits = 0usize;
        let mut last_conflict = None;
        for _ in 0..VALIDATED_READ_SPINS {
            match attempt(self)? {
                Ok(rows) => {
                    self.counters
                        .validated_reads
                        .fetch_add(rows.len() as u64, Ordering::Relaxed);
                    return Ok(rows);
                }
                Err(conflict) => {
                    self.counters
                        .validated_retries
                        .fetch_add(1, Ordering::Relaxed);
                    if conflict.uncommitted {
                        uncommitted_hits += 1;
                    }
                    last_conflict = Some(conflict);
                    if uncommitted_hits >= VALIDATED_UNCOMMITTED_SPINS {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        }
        let conflict = last_conflict.expect("retry loop only exits with a conflict");
        Err(StorageError::ReadUncommitted {
            table,
            key: conflict.key,
            writer: conflict.writer,
        })
    }

    /// Reads one record under the snapshot protocol. Outer error: fatal
    /// storage failure. Inner error: a retryable conflict (torn word,
    /// uncommitted stamp, record relocated since the index probe, or a
    /// stale index entry resolving to a recycled slot).
    fn snapshot_record(
        &self,
        txn: TxnId,
        handle: &TableHandle,
        key: &[Value],
        rid: RecordId,
    ) -> StorageResult<Result<(RecordVersion, Vec<Value>), SnapshotConflict>> {
        let (ver, payload) = match handle.heap.get_versioned(rid) {
            Ok(read) => read,
            // Relocated or deleted between index probe and heap access:
            // retry the attempt, the index resolves to the new location.
            Err(StorageError::NotFound) => return Ok(Err(SnapshotConflict::torn(key, 0))),
            Err(e) => return Err(e),
        };
        if ver.is_write_in_progress() {
            return Ok(Err(SnapshotConflict::torn(key, ver.stamp)));
        }
        if !self.stamp_stable(txn, ver.stamp) {
            return Ok(Err(SnapshotConflict::uncommitted(key, ver.stamp)));
        }
        let values = tuple::decode(&payload)?;
        // Stale-entry guard: between the index probe and this read, the
        // probed entry's record may have been deleted and its heap slot
        // recycled for a *different key's* row. The recycled record is
        // committed and version-stable, so word/stamp checks (and the
        // later revalidation pass) cannot catch it — only the decoded
        // primary key can. Without this check a validated scan returns
        // the recycled row under the dead entry's range slot: a duplicate
        // of a key elsewhere in (or outside) the range. Retry; the next
        // attempt probes the index afresh.
        if handle.schema.primary_key_of(&values) != key {
            return Ok(Err(SnapshotConflict::torn(key, ver.stamp)));
        }
        Ok(Ok((ver, values)))
    }

    /// Whether a record stamped by `stamp` holds a committed image from
    /// `reader`'s point of view. Stamp 0 (loader/undo/recovery) and the
    /// reader's own writes are always stable; `Active` writers are not,
    /// and neither are `Aborted` ones — their undo may still be rewriting
    /// records (each rewrite publishes a fresh stamp-0 header, so aborted
    /// stamps are transient). A stamp the transaction manager no longer
    /// knows belongs to a long-finished, garbage-collected transaction.
    fn stamp_stable(&self, reader: TxnId, stamp: TxnId) -> bool {
        stamp == 0
            || stamp == reader
            || !matches!(
                self.txns.state(stamp),
                Some(TxnState::Active) | Some(TxnState::Aborted)
            )
    }

    /// Updates the row with primary key `key` by setting `(column, value)`
    /// pairs. Returns `false` when the row does not exist.
    pub fn update(
        &self,
        txn: TxnId,
        table: TableId,
        key: &[Value],
        updates: &[(usize, Value)],
        policy: LockingPolicy,
    ) -> StorageResult<bool> {
        self.txns.check_active(txn)?;
        if policy == LockingPolicy::Centralized {
            self.lock_mgr
                .lock(txn, LockTarget::Table(table), LockMode::IX)?;
            self.lock_mgr
                .lock(txn, LockTarget::Key(table, key.to_vec()), LockMode::X)?;
        }
        // DDL quiesce gate: entered after lock acquisition, handle
        // re-resolved under it (see `insert`).
        let _gate = self.write_gate.enter();
        let handle = self.table_handle(table)?;
        let schema = &handle.schema;
        let Some(rid) = handle.primary.get_first(key) else {
            return Ok(false);
        };
        let heap = &handle.heap;
        // One page latch reads the pre-image AND stamps the record
        // write-in-progress (odd version word): validated readers retry or
        // park instead of decoding a record about to be rewritten. Every
        // error path below must restore the stable header, or the record
        // would block validated readers until this transaction finishes.
        let (old_version, payload) = heap.get_for_update(rid, txn)?;
        let restore = |e: StorageError| {
            let _ = heap.write_version(rid, old_version);
            e
        };
        let before = tuple::decode(&payload).map_err(&restore)?;
        let mut after = before.clone();
        for (col, value) in updates {
            if *col >= after.len() {
                return Err(restore(StorageError::SchemaMismatch(format!(
                    "column {col} out of range for table {}",
                    schema.name
                ))));
            }
            if schema.primary_key.contains(col) {
                return Err(restore(StorageError::SchemaMismatch(
                    "updating primary-key columns is not supported; delete and re-insert".into(),
                )));
            }
            after[*col] = value.clone();
        }
        schema.validate(&after).map_err(&restore)?;
        self.log_begin_if_first(txn).map_err(&restore)?;
        self.log.append(
            txn,
            LogPayload::Update {
                table,
                key: key.to_vec(),
                before: before.clone(),
                after: after.clone(),
            },
        );
        let outcome = heap
            .update(
                rid,
                &version::encode_record(old_version.publish(txn), &tuple::encode(&after)),
            )
            .map_err(&restore)?;
        let new_rid = match outcome {
            UpdateOutcome::InPlace => rid,
            UpdateOutcome::Moved(new_rid) => {
                handle.primary.remove(key, rid);
                handle.primary.insert(key.to_vec(), new_rid);
                new_rid
            }
        };
        // Maintain secondary indexes for changed key columns (and for moved
        // records, whose record id changed).
        for sec in &handle.secondaries {
            let old_key = sec.key_of(&before);
            let new_key = sec.key_of(&after);
            if old_key != new_key || new_rid != rid {
                sec.tree.remove(&old_key, rid);
                sec.tree.insert(new_key, new_rid);
            }
        }
        self.txns.push_undo(
            txn,
            UndoEntry::Update {
                table,
                key: key.to_vec(),
                before,
            },
        )?;
        self.counters.updates.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Deletes the row with primary key `key`. Returns `false` when absent.
    pub fn delete(
        &self,
        txn: TxnId,
        table: TableId,
        key: &[Value],
        policy: LockingPolicy,
    ) -> StorageResult<bool> {
        self.txns.check_active(txn)?;
        if policy == LockingPolicy::Centralized {
            self.lock_mgr
                .lock(txn, LockTarget::Table(table), LockMode::IX)?;
            self.lock_mgr
                .lock(txn, LockTarget::Key(table, key.to_vec()), LockMode::X)?;
        }
        // DDL quiesce gate: entered after lock acquisition, handle
        // resolved under it (see `insert`).
        let _gate = self.write_gate.enter();
        let handle = self.table_handle(table)?;
        let Some(rid) = handle.primary.get_first(key) else {
            return Ok(false);
        };
        let heap = &handle.heap;
        // Stamp the record write-in-progress before it disappears: a
        // validated reader still holding its record id then sees an odd
        // version (retry/park) instead of a silently vanishing row whose
        // delete might yet be rolled back. Like `update`, every error path
        // below must restore the stable header — a record left odd would
        // wedge validated readers of this key forever.
        let (old_version, payload) = heap.get_for_update(rid, txn)?;
        let restore = |e: StorageError| {
            let _ = heap.write_version(rid, old_version);
            e
        };
        let before = tuple::decode(&payload).map_err(&restore)?;
        self.log_begin_if_first(txn).map_err(&restore)?;
        self.log.append(
            txn,
            LogPayload::Delete {
                table,
                key: key.to_vec(),
                before: before.clone(),
            },
        );
        heap.delete(rid).map_err(&restore)?;
        handle.primary.remove(key, rid);
        for sec in &handle.secondaries {
            sec.tree.remove(&sec.key_of(&before), rid);
        }
        self.txns.push_undo(
            txn,
            UndoEntry::Delete {
                table,
                key: key.to_vec(),
                before,
            },
        )?;
        self.counters.deletes.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Full table scan; returns every row. Intended for loaders and
    /// verification, not the hot path.
    pub fn scan(&self, table: TableId) -> StorageResult<Vec<Vec<Value>>> {
        let heap = self.heap(table)?;
        heap.scan()?
            .into_iter()
            .map(|(_, bytes)| decode_record(&bytes))
            .collect()
    }

    /// Number of rows in a table.
    pub fn row_count(&self, table: TableId) -> StorageResult<usize> {
        Ok(self.primary_tree(table)?.len())
    }

    /// Opens (or creates) a durable write-ahead log at `cfg.dir`,
    /// recovers whatever it holds into this database (schema already
    /// created, no data), and attaches the segment writer so every
    /// subsequent commit is fsynced before it is acknowledged. A torn
    /// tail in the log is cut at the last clean record boundary and noted
    /// in the report — never an error, never a panic.
    pub fn recover_and_attach_wal(&self, cfg: WalConfig) -> StorageResult<RecoveryReport> {
        cfg.fs
            .create_dir_all(&cfg.dir)
            .map_err(|e| StorageError::LogIo(format!("create wal dir: {e}")))?;
        let replay = crate::segment::read_log(&cfg)?;
        let image = recovery::load_latest_checkpoint_image(&cfg, &replay.records);
        let mut report = recovery::recover_with_snapshot(self, &replay.records, image.as_ref())?;
        report.torn_tail = replay.torn;
        // Seed the writer with the surviving segments: a checkpoint taken
        // by *this* incarnation must be able to truncate files written by
        // the previous one, or the directory accumulates an LSN gap that
        // the next replay would read as a torn log.
        let writer =
            crate::segment::SegmentWriter::recovered(cfg.clone(), replay.next_seq, replay.sealed);
        self.log.install_writer(writer, replay.last_lsn)?;
        *self.wal_cfg.lock() = Some(cfg);
        Ok(report)
    }

    /// Takes a **fuzzy checkpoint**; returns the checkpoint record's LSN.
    ///
    /// In-memory mode (no WAL attached) this appends and forces a
    /// checkpoint marker, as before durability. In durable mode (after
    /// [`Database::recover_and_attach_wal`]) the full protocol runs,
    /// concurrently with traffic:
    ///
    /// 1. fix the snapshot boundary `base_lsn` (highest reserved LSN at
    ///    scan start) and the truncation floor `keep_from =
    ///    min(base_lsn + 1, first LSN of the oldest active transaction)`;
    /// 2. scan every table through the validated-read protocol, capturing
    ///    **committed images only**. A record mid-write by an in-flight
    ///    transaction is skipped after a short retry: its writer was
    ///    active at scan start, so all of that writer's records sit at or
    ///    above `keep_from` and redo (if it commits) or the undo pass (if
    ///    it loses) reconstructs the row from the retained log;
    /// 3. write the image to `chk-<base_lsn>.ck` — CRC-protected, via
    ///    temp file + fsync + rename + directory fsync;
    /// 4. append and force the [`LogPayload::Checkpoint`] record;
    /// 5. drop sealed segments lying wholly below `keep_from` and any
    ///    superseded image files.
    pub fn checkpoint(&self) -> StorageResult<Lsn> {
        // The wal_cfg mutex serializes checkpoints.
        let cfg_guard = self.wal_cfg.lock();
        let base_lsn = self.log.last_reserved_lsn();
        let active = self.txns.active_txns();
        let keep_from = self
            .txns
            .oldest_active_first_lsn()
            .unwrap_or(base_lsn + 1)
            .min(base_lsn + 1)
            .max(1);
        let Some(cfg) = cfg_guard.as_ref() else {
            let lsn = self.log.append(
                0,
                LogPayload::Checkpoint {
                    base_lsn,
                    keep_from,
                    active,
                },
            );
            self.log.force(lsn)?;
            self.buffer.flush_all()?;
            return Ok(lsn);
        };
        let image = self.checkpoint_image(base_lsn, keep_from)?;
        write_checkpoint_image(cfg, &image)?;
        let lsn = self.log.append(
            0,
            LogPayload::Checkpoint {
                base_lsn,
                keep_from,
                active,
            },
        );
        self.log.force(lsn)?;
        // Only after the checkpoint record is durable may covered
        // segments and older images go away.
        self.log.truncate_below(keep_from);
        remove_superseded_images(cfg, base_lsn);
        self.buffer.flush_all()?;
        Ok(lsn)
    }

    /// Captures the committed rows of every table for a fuzzy checkpoint
    /// (see [`Database::checkpoint`], step 2).
    fn checkpoint_image(&self, base_lsn: Lsn, keep_from: Lsn) -> StorageResult<CheckpointImage> {
        /// Retries before a conflicted record is skipped and left to the
        /// log to reconstruct.
        const SCAN_SPINS: usize = 16;
        let snapshot = self.snapshot.load();
        let mut ids: Vec<TableId> = snapshot.tables.keys().copied().collect();
        ids.sort_unstable();
        let mut tables = Vec::with_capacity(ids.len());
        for id in ids {
            let handle = &snapshot.tables[&id];
            let mut rows = Vec::new();
            for (key, rid) in handle.primary.scan_all() {
                for _ in 0..SCAN_SPINS {
                    // Reader id 0: never matches an in-flight stamp, so
                    // exactly the committed-image rule applies.
                    match self.snapshot_record(0, handle, &key, rid)? {
                        Ok((_, values)) => {
                            rows.push(tuple::encode(&values));
                            break;
                        }
                        Err(_conflict) => std::thread::yield_now(),
                    }
                }
            }
            tables.push((handle.schema.name.clone(), rows));
        }
        Ok(CheckpointImage {
            base_lsn,
            keep_from,
            tables,
        })
    }

    // --- statistics ---------------------------------------------------------

    /// Centralized lock-manager statistics.
    pub fn lock_stats(&self) -> LockStatsSnapshot {
        self.lock_mgr.stats().snapshot()
    }

    /// Write-ahead-log statistics.
    pub fn log_stats(&self) -> LogStatsSnapshot {
        self.log.stats()
    }

    /// Transaction-table statistics (stripe acquisitions, begin waits).
    pub fn txn_stats(&self) -> TxnStatsSnapshot {
        self.txns.stats()
    }

    /// Buffer-pool statistics (hits, misses, evictions, latch waits).
    pub fn buffer_stats(&self) -> BufferStatsSnapshot {
        self.buffer.stats().snapshot()
    }

    /// Pages allocated in the pool's backing store.
    pub fn allocated_pages(&self) -> u64 {
        self.buffer.allocated_pages()
    }

    /// Flushes every dirty buffered page to the page store (WAL first)
    /// and syncs the store. Exposed for recovery and shutdown paths that
    /// want the page file caught up without a full checkpoint.
    pub fn flush_pages(&self) -> StorageResult<()> {
        self.buffer.flush_all()
    }

    /// Operation counters.
    pub fn counters(&self) -> DbCountersSnapshot {
        DbCountersSnapshot {
            reads: self.counters.reads.load(Ordering::Relaxed),
            inserts: self.counters.inserts.load(Ordering::Relaxed),
            updates: self.counters.updates.load(Ordering::Relaxed),
            deletes: self.counters.deletes.load(Ordering::Relaxed),
            commits: self.counters.commits.load(Ordering::Relaxed),
            aborts: self.counters.aborts.load(Ordering::Relaxed),
            validated_reads: self.counters.validated_reads.load(Ordering::Relaxed),
            validated_retries: self.counters.validated_retries.load(Ordering::Relaxed),
        }
    }

    /// The write-ahead log (exposed for recovery and tests).
    pub fn log(&self) -> &Arc<LogManager> {
        &self.log
    }

    /// The centralized lock manager (exposed for engine instrumentation).
    pub fn lock_manager(&self) -> &Arc<LockManager> {
        &self.lock_mgr
    }

    // --- raw (non-transactional) operations used by undo and recovery ------

    /// Inserts a row bypassing transactions, locks and logging. Used by
    /// abort (undo of a delete) and by recovery redo.
    pub fn insert_raw(&self, table: TableId, values: Vec<Value>) -> StorageResult<()> {
        // Undo runs against live tables, so even raw mutations pass the
        // DDL quiesce gate (they take no locks, so a gated raw op can
        // never deadlock with the gate closer).
        let _gate = self.write_gate.enter();
        let handle = self.table_handle(table)?;
        let key = handle.schema.primary_key_of(&values);
        if handle.primary.contains_key(&key) {
            return Err(StorageError::DuplicateKey(format!("{key:?}")));
        }
        // Stamp 0: loader/undo/recovery images are stable by construction.
        let rid = handle.heap.insert(&version::encode_record(
            RecordVersion {
                word: self.next_version_word(),
                stamp: 0,
            },
            &tuple::encode(&values),
        ))?;
        handle.primary.insert(key, rid);
        for sec in &handle.secondaries {
            sec.tree.insert(sec.key_of(&values), rid);
        }
        Ok(())
    }

    /// Deletes a row by primary key bypassing transactions, locks and
    /// logging.
    pub fn delete_raw(&self, table: TableId, key: &[Value]) -> StorageResult<bool> {
        let _gate = self.write_gate.enter();
        let handle = self.table_handle(table)?;
        let Some(rid) = handle.primary.get_first(key) else {
            return Ok(false);
        };
        let before = decode_record(&handle.heap.get(rid)?)?;
        handle.heap.delete(rid)?;
        handle.primary.remove(key, rid);
        for sec in &handle.secondaries {
            sec.tree.remove(&sec.key_of(&before), rid);
        }
        Ok(true)
    }

    /// Overwrites a row (identified by primary key) with a full image,
    /// bypassing transactions, locks and logging.
    pub fn update_raw(
        &self,
        table: TableId,
        key: &[Value],
        image: Vec<Value>,
    ) -> StorageResult<bool> {
        let _gate = self.write_gate.enter();
        let handle = self.table_handle(table)?;
        let Some(rid) = handle.primary.get_first(key) else {
            return Ok(false);
        };
        // Stamp 0 publishes a stable image: undo (which runs while its
        // transaction is already marked aborted) and recovery redo both
        // leave the record immediately readable by validated readers.
        let (old_version, payload) = handle.heap.get_for_update(rid, 0)?;
        let before = tuple::decode(&payload)?;
        let outcome = handle.heap.update(
            rid,
            &version::encode_record(old_version.publish(0), &tuple::encode(&image)),
        )?;
        let new_rid = match outcome {
            UpdateOutcome::InPlace => rid,
            UpdateOutcome::Moved(new_rid) => {
                handle.primary.remove(key, rid);
                handle.primary.insert(key.to_vec(), new_rid);
                new_rid
            }
        };
        for sec in &handle.secondaries {
            let old_key = sec.key_of(&before);
            let new_key = sec.key_of(&image);
            if old_key != new_key || new_rid != rid {
                sec.tree.remove(&old_key, rid);
                sec.tree.insert(new_key, new_rid);
            }
        }
        Ok(true)
    }

    // --- internals ----------------------------------------------------------

    fn apply_undo(&self, entry: &UndoEntry) -> StorageResult<()> {
        match entry {
            UndoEntry::Insert { table, key } => {
                self.delete_raw(*table, key)?;
            }
            UndoEntry::Update { table, key, before } => {
                self.update_raw(*table, key, before.clone())?;
            }
            UndoEntry::Delete { table, before, .. } => {
                self.insert_raw(*table, before.clone())?;
            }
        }
        Ok(())
    }

    fn heap(&self, table: TableId) -> StorageResult<Arc<HeapFile>> {
        Ok(self.table_handle(table)?.heap.clone())
    }

    /// Resolves an index id to `(owning table, tree)` through the
    /// snapshot — lock-free like [`Database::table_handle`].
    fn index_entry(&self, index: IndexId) -> StorageResult<(TableId, Arc<BPlusTree>)> {
        self.snapshot
            .load()
            .indexes
            .get(&index)
            .map(|e| (e.table, e.tree.clone()))
            .ok_or(StorageError::UnknownIndex(index))
    }

    /// Tree of the primary index of `table`.
    pub fn primary_tree(&self, table: TableId) -> StorageResult<Arc<BPlusTree>> {
        Ok(self.table_handle(table)?.primary.clone())
    }
}

/// The compensation (CLR) record logged before one undo step: the *redo*
/// image of the rollback itself, replayed by recovery under the system
/// transaction id (always a winner).
fn compensation_payload(entry: &UndoEntry) -> LogPayload {
    match entry {
        UndoEntry::Insert { table, key } => LogPayload::Delete {
            table: *table,
            key: key.clone(),
            before: Vec::new(),
        },
        UndoEntry::Update { table, key, before } => LogPayload::Update {
            table: *table,
            key: key.clone(),
            before: Vec::new(),
            after: before.clone(),
        },
        UndoEntry::Delete { table, key, before } => LogPayload::Insert {
            table: *table,
            key: key.clone(),
            tuple: before.clone(),
        },
    }
}

/// Writes a checkpoint image durably: CRC'd bytes into a temp file,
/// fsync, atomic rename to `chk-<base_lsn>.ck`, directory fsync. A crash
/// anywhere in the sequence leaves either no image or a complete one.
fn write_checkpoint_image(cfg: &WalConfig, image: &CheckpointImage) -> StorageResult<()> {
    let map = |e: std::io::Error| StorageError::LogIo(format!("checkpoint image: {e}"));
    let bytes = image.encode();
    let tmp = cfg.dir.join("chk.tmp");
    let fin = cfg.dir.join(CheckpointImage::file_name(image.base_lsn));
    let mut f = cfg.fs.create(&tmp).map_err(map)?;
    f.append(&bytes).map_err(map)?;
    f.sync().map_err(map)?;
    drop(f);
    cfg.fs.rename(&tmp, &fin).map_err(map)?;
    cfg.fs.sync_dir(&cfg.dir).map_err(map)?;
    Ok(())
}

/// Best-effort removal of checkpoint images older than `keep_base` (the
/// one just written). Failures are ignored — a stale image is dead disk
/// space, not a correctness problem, and recovery prefers the newest
/// anchored image anyway.
fn remove_superseded_images(cfg: &WalConfig, keep_base: Lsn) {
    let keep = CheckpointImage::file_name(keep_base);
    if let Ok(names) = cfg.fs.list_dir(&cfg.dir) {
        for n in names {
            if n.starts_with("chk-") && n.ends_with(".ck") && n != keep {
                let _ = cfg.fs.remove_file(&cfg.dir.join(&n));
            }
        }
    }
    let _ = cfg.fs.sync_dir(&cfg.dir);
}

/// Number of [`WriteGate`] turnstile stripes (power of two). Threads are
/// spread round-robin, so a writer's per-operation fetch-add lands on a
/// cache line it effectively owns.
const WRITE_GATE_STRIPES: usize = 64;

/// One cache-line-aligned turnstile counter.
#[repr(align(64))]
struct GateStripe(AtomicU64);

/// A striped quiesce gate for online DDL.
///
/// Writers `enter` before mutating heap or indexes — a single SeqCst
/// fetch-add on a thread-private stripe plus one flag load, nanoseconds
/// on the hot path. `close` (DDL only) raises the flag and waits for
/// every stripe to drain to zero: from then until the [`ClosedGate`]
/// guard drops, no mutation is in flight anywhere and new writers park
/// at their turnstile.
///
/// The enter protocol is Dekker-shaped, hence SeqCst on both sides:
/// increment-then-check-flag in `enter` against set-flag-then-read-
/// counters in `close` guarantees that either the closer observes the
/// writer's increment (and waits for it) or the writer observes the flag
/// (and backs out) — never neither.
///
/// Deadlock freedom: writers enter *after* lock-manager acquisition and
/// gated sections never wait on locks, the log force, or the catalog, so
/// a closed gate always drains.
struct WriteGate {
    stripes: Box<[GateStripe]>,
    closed: AtomicBool,
}

impl WriteGate {
    fn new() -> Self {
        WriteGate {
            stripes: (0..WRITE_GATE_STRIPES)
                .map(|_| GateStripe(AtomicU64::new(0)))
                .collect(),
            closed: AtomicBool::new(false),
        }
    }

    /// Passes the turnstile; the returned guard marks one in-flight
    /// mutation until dropped. Parks (yield-spinning) while the gate is
    /// closed.
    fn enter(&self) -> WriteGateGuard<'_> {
        let stripe = &self.stripes[gate_stripe_of_thread()];
        loop {
            stripe.0.fetch_add(1, Ordering::SeqCst);
            if !self.closed.load(Ordering::SeqCst) {
                return WriteGateGuard { stripe };
            }
            // Closed: undo the increment so the closer can drain, then
            // park until it reopens.
            stripe.0.fetch_sub(1, Ordering::SeqCst);
            while self.closed.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        }
    }

    /// Closes the gate and drains every in-flight writer. Reopens when
    /// the returned guard drops.
    fn close(&self) -> ClosedGate<'_> {
        self.closed.store(true, Ordering::SeqCst);
        for s in self.stripes.iter() {
            while s.0.load(Ordering::SeqCst) != 0 {
                std::thread::yield_now();
            }
        }
        ClosedGate { gate: self }
    }
}

/// One writer's passage through the [`WriteGate`].
struct WriteGateGuard<'a> {
    stripe: &'a GateStripe,
}

impl Drop for WriteGateGuard<'_> {
    fn drop(&mut self) {
        self.stripe.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Exclusive quiesced region handed out by [`WriteGate::close`].
struct ClosedGate<'a> {
    gate: &'a WriteGate,
}

impl Drop for ClosedGate<'_> {
    fn drop(&mut self) {
        self.gate.closed.store(false, Ordering::Release);
    }
}

/// This thread's stripe index, assigned round-robin on first use.
fn gate_stripe_of_thread() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize =
            NEXT.fetch_add(1, Ordering::Relaxed) & (WRITE_GATE_STRIPES - 1);
    }
    STRIPE.with(|s| *s)
}

/// Splits a heap record into its version header and tuple bytes and
/// decodes the tuple. The lock-protected read paths use this directly —
/// version checking is only the lock-free (validated) path's business.
fn decode_record(bytes: &[u8]) -> StorageResult<Vec<Value>> {
    let (_, payload) = version::split(bytes)?;
    tuple::decode(payload)
}

/// Revalidation pass of the snapshot protocol: every observed version
/// header must still be in place — the **full** header, word and stamp,
/// because slotted pages reuse deleted slots and a recycled record id
/// carrying a coincidentally equal word (ABA) must not pass as unchanged.
/// Returns the index of the first moved record.
fn revalidate(heap: &HeapFile, observed: &[(RecordId, RecordVersion)]) -> Result<(), usize> {
    for (idx, &(rid, ver)) in observed.iter().enumerate() {
        let stable = heap.read_version(rid).map(|v| v == ver).unwrap_or(false);
        if !stable {
            return Err(idx);
        }
    }
    Ok(())
}

/// A retryable conflict observed by one validated-read attempt.
struct SnapshotConflict {
    /// Primary key of the conflicting record.
    key: Key,
    /// The transaction stamped on it (0 when unknown — torn or moved).
    writer: TxnId,
    /// Whether the conflict was an uncommitted stamp (fail fast) rather
    /// than a transient torn/moved word (spin).
    uncommitted: bool,
}

impl SnapshotConflict {
    fn torn(key: &[Value], writer: TxnId) -> Self {
        SnapshotConflict {
            key: key.to_vec(),
            writer,
            uncommitted: false,
        }
    }

    fn uncommitted(key: &[Value], writer: TxnId) -> Self {
        SnapshotConflict {
            key: key.to_vec(),
            writer,
            uncommitted: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::types::DataType;

    fn test_db() -> (Database, TableId) {
        let db = Database::default();
        let schema = TableSchema::new(
            "accounts",
            vec![
                ColumnDef::new("id", DataType::BigInt),
                ColumnDef::new("owner", DataType::Varchar(32)),
                ColumnDef::new("balance", DataType::Double),
                ColumnDef::new("active", DataType::Bool),
            ],
            vec![0],
        );
        let tid = db.create_table(schema).unwrap();
        (db, tid)
    }

    fn row(id: i64, owner: &str, balance: f64) -> Vec<Value> {
        vec![
            Value::BigInt(id),
            Value::Varchar(owner.into()),
            Value::Double(balance),
            Value::Bool(true),
        ]
    }

    #[test]
    fn insert_get_commit() {
        let (db, t) = test_db();
        let txn = db.begin();
        db.insert(txn, t, row(1, "alice", 100.0), LockingPolicy::Centralized)
            .unwrap();
        let got = db
            .get(txn, t, &[Value::BigInt(1)], LockingPolicy::Centralized)
            .unwrap()
            .unwrap();
        assert_eq!(got[1], Value::Varchar("alice".into()));
        db.commit(txn).unwrap();
        assert_eq!(db.txn_state(txn), Some(TxnState::Committed));
        assert_eq!(db.counters().commits, 1);
        // Locks are released after commit.
        assert_eq!(db.lock_manager().held_count(txn), 0);
    }

    #[test]
    fn duplicate_primary_key_rejected() {
        let (db, t) = test_db();
        let txn = db.begin();
        db.insert(txn, t, row(1, "a", 1.0), LockingPolicy::Bypass)
            .unwrap();
        let err = db.insert(txn, t, row(1, "b", 2.0), LockingPolicy::Bypass);
        assert!(matches!(err, Err(StorageError::DuplicateKey(_))));
        db.commit(txn).unwrap();
    }

    #[test]
    fn update_and_delete() {
        let (db, t) = test_db();
        let txn = db.begin();
        db.insert(txn, t, row(7, "bob", 50.0), LockingPolicy::Centralized)
            .unwrap();
        assert!(db
            .update(
                txn,
                t,
                &[Value::BigInt(7)],
                &[(2, Value::Double(75.0))],
                LockingPolicy::Centralized
            )
            .unwrap());
        let got = db
            .get(txn, t, &[Value::BigInt(7)], LockingPolicy::Centralized)
            .unwrap()
            .unwrap();
        assert_eq!(got[2], Value::Double(75.0));
        assert!(db
            .delete(txn, t, &[Value::BigInt(7)], LockingPolicy::Centralized)
            .unwrap());
        assert!(db
            .get(txn, t, &[Value::BigInt(7)], LockingPolicy::Centralized)
            .unwrap()
            .is_none());
        // Updating / deleting a missing row reports false.
        assert!(!db
            .update(
                txn,
                t,
                &[Value::BigInt(99)],
                &[(2, Value::Double(1.0))],
                LockingPolicy::Bypass
            )
            .unwrap());
        assert!(!db
            .delete(txn, t, &[Value::BigInt(99)], LockingPolicy::Bypass)
            .unwrap());
        db.commit(txn).unwrap();
    }

    #[test]
    fn primary_key_update_rejected() {
        let (db, t) = test_db();
        let txn = db.begin();
        db.insert(txn, t, row(1, "a", 1.0), LockingPolicy::Bypass)
            .unwrap();
        let err = db.update(
            txn,
            t,
            &[Value::BigInt(1)],
            &[(0, Value::BigInt(2))],
            LockingPolicy::Bypass,
        );
        assert!(matches!(err, Err(StorageError::SchemaMismatch(_))));
    }

    #[test]
    fn abort_rolls_back_all_changes() {
        let (db, t) = test_db();
        // Committed baseline row.
        let setup = db.begin();
        db.insert(setup, t, row(1, "alice", 100.0), LockingPolicy::Bypass)
            .unwrap();
        db.commit(setup).unwrap();

        let txn = db.begin();
        db.insert(txn, t, row(2, "bob", 10.0), LockingPolicy::Bypass)
            .unwrap();
        db.update(
            txn,
            t,
            &[Value::BigInt(1)],
            &[(2, Value::Double(0.0))],
            LockingPolicy::Bypass,
        )
        .unwrap();
        db.delete(txn, t, &[Value::BigInt(1)], LockingPolicy::Bypass)
            .unwrap();
        db.abort(txn).unwrap();

        let check = db.begin();
        // Row 2 is gone, row 1 restored with its original balance.
        assert!(db
            .get(check, t, &[Value::BigInt(2)], LockingPolicy::Bypass)
            .unwrap()
            .is_none());
        let r1 = db
            .get(check, t, &[Value::BigInt(1)], LockingPolicy::Bypass)
            .unwrap()
            .unwrap();
        assert_eq!(r1[2], Value::Double(100.0));
        assert_eq!(db.row_count(t).unwrap(), 1);
        db.commit(check).unwrap();
        assert_eq!(db.counters().aborts, 1);
    }

    #[test]
    fn secondary_index_lookup_and_maintenance() {
        let (db, t) = test_db();
        let owner_idx = db
            .create_secondary_index(t, "idx_owner", vec![1], false)
            .unwrap();
        let txn = db.begin();
        db.insert(txn, t, row(1, "carol", 5.0), LockingPolicy::Bypass)
            .unwrap();
        db.insert(txn, t, row(2, "carol", 6.0), LockingPolicy::Bypass)
            .unwrap();
        db.insert(txn, t, row(3, "dave", 7.0), LockingPolicy::Bypass)
            .unwrap();
        let rows = db
            .index_lookup(
                txn,
                owner_idx,
                &[Value::Varchar("carol".into())],
                LockingPolicy::Bypass,
            )
            .unwrap();
        assert_eq!(rows.len(), 2);
        // Rename carol #2 -> eve and check both lookups.
        db.update(
            txn,
            t,
            &[Value::BigInt(2)],
            &[(1, Value::Varchar("eve".into()))],
            LockingPolicy::Bypass,
        )
        .unwrap();
        assert_eq!(
            db.index_lookup(
                txn,
                owner_idx,
                &[Value::Varchar("carol".into())],
                LockingPolicy::Bypass
            )
            .unwrap()
            .len(),
            1
        );
        assert_eq!(
            db.index_lookup(
                txn,
                owner_idx,
                &[Value::Varchar("eve".into())],
                LockingPolicy::Bypass
            )
            .unwrap()
            .len(),
            1
        );
        // Delete and check index cleanup.
        db.delete(txn, t, &[Value::BigInt(3)], LockingPolicy::Bypass)
            .unwrap();
        assert!(db
            .index_lookup(
                txn,
                owner_idx,
                &[Value::Varchar("dave".into())],
                LockingPolicy::Bypass
            )
            .unwrap()
            .is_empty());
        db.commit(txn).unwrap();
    }

    #[test]
    fn secondary_index_backfills_existing_rows() {
        let (db, t) = test_db();
        let txn = db.begin();
        for i in 0..50 {
            db.insert(
                txn,
                t,
                row(i, if i % 2 == 0 { "even" } else { "odd" }, i as f64),
                LockingPolicy::Bypass,
            )
            .unwrap();
        }
        db.commit(txn).unwrap();
        let idx = db
            .create_secondary_index(t, "idx_owner", vec![1], false)
            .unwrap();
        let txn = db.begin();
        let evens = db
            .index_lookup(
                txn,
                idx,
                &[Value::Varchar("even".into())],
                LockingPolicy::Bypass,
            )
            .unwrap();
        assert_eq!(evens.len(), 25);
        db.commit(txn).unwrap();
        assert_eq!(db.index_id(t, "idx_owner"), Some(idx));
        assert_eq!(db.index_id(t, "nope"), None);
    }

    #[test]
    fn unique_secondary_index_enforced() {
        let (db, t) = test_db();
        db.create_secondary_index(t, "uq_owner", vec![1], true)
            .unwrap();
        let txn = db.begin();
        db.insert(txn, t, row(1, "solo", 1.0), LockingPolicy::Bypass)
            .unwrap();
        assert!(matches!(
            db.insert(txn, t, row(2, "solo", 2.0), LockingPolicy::Bypass),
            Err(StorageError::DuplicateKey(_))
        ));
        db.commit(txn).unwrap();
    }

    /// The interleaving named in [`Database::create_secondary_index`]'s
    /// doc: writer threads commit rows while the index is being built.
    /// The write gate quiesces them across the scan-and-publish window,
    /// so afterwards EVERY committed row is reachable through the new
    /// index — none slipped between the back-fill scan and the publish.
    #[test]
    fn secondary_index_built_under_concurrent_writers() {
        use std::sync::Arc;
        use std::sync::Barrier;
        const WRITERS: usize = 4;
        const PER: i64 = 250;

        let (db, t) = test_db();
        let db = Arc::new(db);
        let barrier = Arc::new(Barrier::new(WRITERS + 1));
        let mut joins = Vec::new();
        for w in 0..WRITERS {
            let db = Arc::clone(&db);
            let barrier = Arc::clone(&barrier);
            joins.push(std::thread::spawn(move || {
                barrier.wait();
                for i in 0..PER {
                    let id = w as i64 * PER + i;
                    let txn = db.begin();
                    db.insert(txn, t, row(id, "bulk", id as f64), LockingPolicy::Bypass)
                        .unwrap();
                    db.commit_policy(txn, LockingPolicy::Bypass).unwrap();
                }
            }));
        }
        barrier.wait();
        // Land mid-stream: some rows exist (back-fill path), the rest
        // arrive while/after the gate closes (maintenance path).
        std::thread::sleep(Duration::from_millis(2));
        let idx = db
            .create_secondary_index(t, "idx_owner", vec![1], false)
            .unwrap();
        for j in joins {
            j.join().unwrap();
        }

        let txn = db.begin();
        let rows = db
            .index_lookup(
                txn,
                idx,
                &[Value::Varchar("bulk".into())],
                LockingPolicy::Bypass,
            )
            .unwrap();
        db.commit(txn).unwrap();
        assert_eq!(
            rows.len(),
            WRITERS * PER as usize,
            "every committed row must be visible through the new index"
        );
    }

    #[test]
    fn primary_range_scan() {
        let (db, t) = test_db();
        let txn = db.begin();
        for i in 0..100 {
            db.insert(txn, t, row(i, "x", i as f64), LockingPolicy::Bypass)
                .unwrap();
        }
        let rows = db
            .primary_range(
                txn,
                t,
                &[Value::BigInt(10)],
                &[Value::BigInt(19)],
                LockingPolicy::Bypass,
            )
            .unwrap();
        assert_eq!(rows.len(), 10);
        db.commit(txn).unwrap();
    }

    #[test]
    fn conflicting_writers_serialize_under_centralized_locking() {
        use std::sync::Arc;
        let (db, t) = test_db();
        let db = Arc::new(db);
        let setup = db.begin();
        db.insert(setup, t, row(1, "shared", 0.0), LockingPolicy::Centralized)
            .unwrap();
        db.commit(setup).unwrap();

        let mut handles = Vec::new();
        for _ in 0..4 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                let mut done = 0;
                for _ in 0..25 {
                    loop {
                        let txn = db.begin();
                        let cur = db
                            .get(txn, t, &[Value::BigInt(1)], LockingPolicy::Centralized)
                            .and_then(|r| r.ok_or(StorageError::NotFound));
                        let result = cur.and_then(|r| {
                            let bal = r[2].as_f64().unwrap();
                            db.update(
                                txn,
                                t,
                                &[Value::BigInt(1)],
                                &[(2, Value::Double(bal + 1.0))],
                                LockingPolicy::Centralized,
                            )
                        });
                        match result {
                            Ok(_) => {
                                db.commit(txn).unwrap();
                                done += 1;
                                break;
                            }
                            Err(e) if e.is_retryable() => {
                                let _ = db.abort(txn);
                            }
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                }
                done
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
        let check = db.begin();
        let r = db
            .get(check, t, &[Value::BigInt(1)], LockingPolicy::Bypass)
            .unwrap()
            .unwrap();
        assert_eq!(r[2], Value::Double(100.0));
        db.commit(check).unwrap();
    }

    #[test]
    fn checkpoint_and_counters() {
        let (db, t) = test_db();
        let txn = db.begin();
        db.insert(txn, t, row(1, "x", 1.0), LockingPolicy::Bypass)
            .unwrap();
        db.checkpoint().unwrap();
        db.commit(txn).unwrap();
        let stats = db.log_stats();
        assert!(stats.appended >= 3); // begin + insert + checkpoint + commit
        let counters = db.counters();
        assert_eq!(counters.inserts, 1);
        assert_eq!(db.scan(t).unwrap().len(), 1);
    }

    /// The record id and current version header of a row (test access to
    /// the versioned substrate beneath the facade).
    fn version_of(db: &Database, t: TableId, key: &[Value]) -> (RecordId, RecordVersion) {
        let rid = db.primary_tree(t).unwrap().get_first(key).unwrap();
        (rid, db.heap(t).unwrap().read_version(rid).unwrap())
    }

    #[test]
    fn validated_read_serves_committed_rows_and_rejects_uncommitted_writes() {
        let (db, t) = test_db();
        let setup = db.begin();
        db.insert(setup, t, row(1, "alice", 100.0), LockingPolicy::Bypass)
            .unwrap();
        db.commit(setup).unwrap();

        // Committed row: served, even without any lock.
        let reader = db.begin();
        let got = db
            .read_validated(reader, t, &[Value::BigInt(1)], LockingPolicy::Bypass)
            .unwrap()
            .unwrap();
        assert_eq!(got[2], Value::Double(100.0));
        // Missing key: None, not an error.
        assert!(db
            .read_validated(reader, t, &[Value::BigInt(9)], LockingPolicy::Bypass)
            .unwrap()
            .is_none());

        // An uncommitted update must never surface: the reader is told who
        // is in its way instead.
        let writer = db.begin();
        db.update(
            writer,
            t,
            &[Value::BigInt(1)],
            &[(2, Value::Double(0.0))],
            LockingPolicy::Bypass,
        )
        .unwrap();
        let err = db
            .read_validated(reader, t, &[Value::BigInt(1)], LockingPolicy::Bypass)
            .unwrap_err();
        assert_eq!(
            err,
            StorageError::ReadUncommitted {
                table: t,
                key: vec![Value::BigInt(1)],
                writer,
            }
        );
        assert!(err.is_retryable());
        assert!(db.counters().validated_retries > 0);

        // The writer itself sees its own write through the validated path.
        let own = db
            .read_validated(writer, t, &[Value::BigInt(1)], LockingPolicy::Bypass)
            .unwrap()
            .unwrap();
        assert_eq!(own[2], Value::Double(0.0));

        // Once committed, everyone does.
        db.commit(writer).unwrap();
        let got = db
            .read_validated(reader, t, &[Value::BigInt(1)], LockingPolicy::Bypass)
            .unwrap()
            .unwrap();
        assert_eq!(got[2], Value::Double(0.0));
        db.commit(reader).unwrap();
    }

    #[test]
    fn validated_read_rejects_aborted_writers_until_undo_restores() {
        let (db, t) = test_db();
        let setup = db.begin();
        db.insert(setup, t, row(1, "a", 50.0), LockingPolicy::Bypass)
            .unwrap();
        db.commit(setup).unwrap();

        let writer = db.begin();
        db.update(
            writer,
            t,
            &[Value::BigInt(1)],
            &[(2, Value::Double(-1.0))],
            LockingPolicy::Bypass,
        )
        .unwrap();
        db.abort(writer).unwrap();
        // Undo rewrote the record with a stable stamp-0 header: the
        // restored value is immediately readable, the dirty one never was.
        let reader = db.begin();
        let got = db
            .read_validated(reader, t, &[Value::BigInt(1)], LockingPolicy::Bypass)
            .unwrap()
            .unwrap();
        assert_eq!(got[2], Value::Double(50.0));
        let (_, ver) = version_of(&db, t, &[Value::BigInt(1)]);
        assert_eq!(ver.stamp, 0);
        assert!(!ver.is_write_in_progress());
        db.commit(reader).unwrap();
    }

    #[test]
    fn validated_read_retries_torn_words_then_reports_the_marked_writer() {
        let (db, t) = test_db();
        let setup = db.begin();
        db.insert(setup, t, row(1, "a", 1.0), LockingPolicy::Bypass)
            .unwrap();
        db.commit(setup).unwrap();
        // Force a write-in-progress marker as a wedged writer would leave
        // mid-rewrite: the validated read must spin, give up, and name the
        // stamped writer — never decode the in-progress image.
        let (rid, ver) = version_of(&db, t, &[Value::BigInt(1)]);
        let heap = db.heap(t).unwrap();
        heap.write_version(rid, ver.begin_write(777)).unwrap();
        let reader = db.begin();
        let before = db.counters().validated_retries;
        let err = db
            .read_validated(reader, t, &[Value::BigInt(1)], LockingPolicy::Bypass)
            .unwrap_err();
        assert!(
            matches!(err, StorageError::ReadUncommitted { writer: 777, .. }),
            "{err:?}"
        );
        assert!(db.counters().validated_retries >= before + VALIDATED_READ_SPINS as u64);
        // Restoring the stable header unblocks the reader.
        heap.write_version(rid, ver).unwrap();
        assert!(db
            .read_validated(reader, t, &[Value::BigInt(1)], LockingPolicy::Bypass)
            .unwrap()
            .is_some());
        db.commit(reader).unwrap();
    }

    #[test]
    fn read_many_and_scan_validated_return_consistent_snapshots() {
        let (db, t) = test_db();
        let setup = db.begin();
        for i in 0..10 {
            db.insert(setup, t, row(i, "x", i as f64), LockingPolicy::Bypass)
                .unwrap();
        }
        db.commit(setup).unwrap();

        let reader = db.begin();
        let keys: Vec<Key> = vec![
            vec![Value::BigInt(2)],
            vec![Value::BigInt(99)], // missing
            vec![Value::BigInt(7)],
        ];
        let rows = db
            .read_many_validated(reader, t, &keys, LockingPolicy::Bypass)
            .unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].as_ref().unwrap()[2], Value::Double(2.0));
        assert!(rows[1].is_none());
        assert_eq!(rows[2].as_ref().unwrap()[2], Value::Double(7.0));

        let scanned = db
            .scan_validated(
                reader,
                t,
                &[Value::BigInt(3)],
                &[Value::BigInt(6)],
                LockingPolicy::Bypass,
            )
            .unwrap();
        assert_eq!(scanned.len(), 4);
        let locked = db
            .primary_range(
                reader,
                t,
                &[Value::BigInt(3)],
                &[Value::BigInt(6)],
                LockingPolicy::Bypass,
            )
            .unwrap();
        assert_eq!(scanned, locked);
        assert!(db.counters().validated_reads >= 6);
        db.commit(reader).unwrap();
    }

    #[test]
    fn validated_read_under_centralized_policy_takes_shared_locks() {
        let (db, t) = test_db();
        let setup = db.begin();
        db.insert(setup, t, row(1, "a", 1.0), LockingPolicy::Bypass)
            .unwrap();
        db.commit(setup).unwrap();
        let reader = db.begin();
        db.read_validated(reader, t, &[Value::BigInt(1)], LockingPolicy::Centralized)
            .unwrap()
            .unwrap();
        assert!(db.lock_manager().held_count(reader) > 0);
        db.commit(reader).unwrap();
        assert_eq!(db.lock_manager().held_count(reader), 0);
    }

    #[test]
    fn read_only_commit_skips_log_records_and_force() {
        let (db, t) = test_db();
        let setup = db.begin();
        db.insert(setup, t, row(1, "a", 1.0), LockingPolicy::Bypass)
            .unwrap();
        db.commit(setup).unwrap();
        let before = db.log_stats();

        // A transaction that only reads must not touch the log: no Begin,
        // no Commit, no force — on either policy.
        for policy in [LockingPolicy::Bypass, LockingPolicy::Centralized] {
            let reader = db.begin();
            db.get(reader, t, &[Value::BigInt(1)], policy)
                .unwrap()
                .unwrap();
            db.read_validated(reader, t, &[Value::BigInt(1)], policy)
                .unwrap()
                .unwrap();
            db.commit_policy(reader, policy).unwrap();
        }
        let after = db.log_stats();
        assert_eq!(after.appended, before.appended, "no records for readers");
        assert_eq!(after.forces, before.forces, "no forces for readers");

        // A read-only abort is equally silent.
        let reader = db.begin();
        db.get(reader, t, &[Value::BigInt(1)], LockingPolicy::Bypass)
            .unwrap();
        db.abort(reader).unwrap();
        assert_eq!(db.log_stats().appended, before.appended);

        // A writer still logs lazily (Begin rides the first write) and
        // forces its commit.
        let writer = db.begin();
        assert_eq!(db.log_stats().appended, before.appended, "begin is lazy");
        db.update(
            writer,
            t,
            &[Value::BigInt(1)],
            &[(2, Value::Double(2.0))],
            LockingPolicy::Bypass,
        )
        .unwrap();
        db.commit(writer).unwrap();
        let wrote = db.log_stats();
        assert_eq!(wrote.appended, before.appended + 3, "Begin+Update+Commit");
        assert_eq!(wrote.forces, before.forces + 1);
        assert_eq!(wrote.flushed_lsn, wrote.appended, "commit forced");
    }

    #[test]
    fn validated_reads_take_zero_locks() {
        let (db, t) = test_db();
        let setup = db.begin();
        for i in 0..8 {
            db.insert(setup, t, row(i, "x", i as f64), LockingPolicy::Bypass)
                .unwrap();
        }
        db.commit(setup).unwrap();

        let reader = db.begin();
        let stripes_before = db.txn_stats().stripe_acquisitions;
        let keys: Vec<Key> = (0..8).map(|i| vec![Value::BigInt(i)]).collect();
        db.read_many_validated(reader, t, &keys, LockingPolicy::Bypass)
            .unwrap();
        db.scan_validated(
            reader,
            t,
            &[Value::BigInt(0)],
            &[Value::BigInt(7)],
            LockingPolicy::Bypass,
        )
        .unwrap();
        // Every stamp check was a lock-free state load: no transaction-
        // table stripe mutex, and no centralized lock, was touched.
        assert_eq!(db.txn_stats().stripe_acquisitions, stripes_before);
        assert_eq!(db.lock_manager().held_count(reader), 0);
        db.commit(reader).unwrap();
    }

    #[test]
    fn table_handles_resolve_lock_free_and_follow_ddl() {
        let (db, t) = test_db();
        let h = db.table_handle(t).unwrap();
        assert_eq!(h.id, t);
        assert_eq!(h.schema.name, "accounts");
        assert!(h.secondaries.is_empty());
        assert!(db.table_handle(999).is_err());

        // DDL publishes a new snapshot; the old handle stays usable (the
        // superseded snapshot is retained), the new one sees the index.
        let idx = db
            .create_secondary_index(t, "idx_owner", vec![1], false)
            .unwrap();
        assert!(h.secondaries.is_empty(), "old snapshot is immutable");
        let h2 = db.table_handle(t).unwrap();
        assert_eq!(h2.secondaries.len(), 1);
        assert_eq!(h2.secondaries[0].id, idx);
        assert!(!h2.secondaries[0].unique);
        // Old and new handle share the same heap and primary tree.
        assert!(Arc::ptr_eq(&h.heap, &h2.heap));
        assert!(Arc::ptr_eq(&h.primary, &h2.primary));
    }

    #[test]
    fn failed_update_restores_the_stable_version_header() {
        let (db, t) = test_db();
        let setup = db.begin();
        db.insert(setup, t, row(1, "a", 1.0), LockingPolicy::Bypass)
            .unwrap();
        db.commit(setup).unwrap();
        let (_, before) = version_of(&db, t, &[Value::BigInt(1)]);

        // A rejected update (primary-key column) must not leave the record
        // marked write-in-progress.
        let txn = db.begin();
        assert!(db
            .update(
                txn,
                t,
                &[Value::BigInt(1)],
                &[(0, Value::BigInt(2))],
                LockingPolicy::Bypass,
            )
            .is_err());
        let (_, after) = version_of(&db, t, &[Value::BigInt(1)]);
        assert_eq!(after, before, "stable header restored on the error path");
        assert!(db
            .read_validated(txn, t, &[Value::BigInt(1)], LockingPolicy::Bypass)
            .unwrap()
            .is_some());
    }
}

#[cfg(test)]
mod version_proptests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::types::DataType;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    /// Loads `pair(id BIGINT, value BIGINT)` with two rows whose values sum
    /// to `total`, then forces both version words to the edge of
    /// wrap-around so every publish in the test crosses `u64::MAX`.
    fn wrapping_pair_db(total: i64) -> (Arc<Database>, TableId) {
        let db = Arc::new(Database::default());
        let t = db
            .create_table(TableSchema::new(
                "pair",
                vec![
                    ColumnDef::new("id", DataType::BigInt),
                    ColumnDef::new("value", DataType::BigInt),
                ],
                vec![0],
            ))
            .unwrap();
        let setup = db.begin();
        for (id, value) in [(0i64, total), (1i64, 0i64)] {
            db.insert(
                setup,
                t,
                vec![Value::BigInt(id), Value::BigInt(value)],
                LockingPolicy::Bypass,
            )
            .unwrap();
        }
        db.commit(setup).unwrap();
        for id in 0..2i64 {
            let rid = db
                .primary_tree(t)
                .unwrap()
                .get_first(&[Value::BigInt(id)])
                .unwrap();
            db.heap(t)
                .unwrap()
                .write_version(
                    rid,
                    RecordVersion {
                        word: u64::MAX - 5,
                        stamp: 0,
                    },
                )
                .unwrap();
        }
        (db, t)
    }

    proptest! {
        /// N writer threads × M validated readers over version words forced
        /// across wrap-around: no torn decode and no uncommitted value ever
        /// surfaces. Writers either move an (even) delta between the two
        /// rows and commit, or scribble odd "poison" values and abort — a
        /// validated reader must only ever observe even values summing to
        /// the conserved total.
        #[test]
        fn validated_readers_never_observe_uncommitted_or_torn_values(
            params in (1usize..3, 1usize..3, 3u64..10, 1u64..200)
        ) {
            let (writers, readers, rounds, seed) = params;
            const TOTAL: i64 = 1_000_000;
            let (db, t) = wrapping_pair_db(TOTAL);
            let writer_gate = Arc::new(parking_lot::Mutex::new(()));
            let done = Arc::new(AtomicBool::new(false));

            let writer_handles: Vec<_> = (0..writers)
                .map(|w| {
                    let db = db.clone();
                    let gate = writer_gate.clone();
                    let mut rng = seed.wrapping_mul(w as u64 + 1) | 1;
                    std::thread::spawn(move || {
                        for _ in 0..rounds {
                            // xorshift
                            rng ^= rng << 13;
                            rng ^= rng >> 7;
                            rng ^= rng << 17;
                            let delta = ((rng % 50) as i64) * 2; // even
                            let poison = rng % 2 == 0;
                            // Writers serialize among themselves (the
                            // engines' lock layers do this in production);
                            // readers stay fully concurrent and lock-free.
                            let _excl = gate.lock();
                            let txn = db.begin();
                            let read = |id: i64| {
                                db.get(txn, t, &[Value::BigInt(id)], LockingPolicy::Bypass)
                                    .unwrap()
                                    .unwrap()[1]
                                    .as_i64()
                                    .unwrap()
                            };
                            let (v0, v1) = (read(0), read(1));
                            if poison {
                                for id in 0..2 {
                                    db.update(
                                        txn,
                                        t,
                                        &[Value::BigInt(id)],
                                        &[(1, Value::BigInt(7_777_777))], // odd
                                        LockingPolicy::Bypass,
                                    )
                                    .unwrap();
                                }
                                db.abort(txn).unwrap();
                            } else {
                                for (id, value) in [(0, v0 - delta), (1, v1 + delta)] {
                                    db.update(
                                        txn,
                                        t,
                                        &[Value::BigInt(id)],
                                        &[(1, Value::BigInt(value))],
                                        LockingPolicy::Bypass,
                                    )
                                    .unwrap();
                                }
                                db.commit(txn).unwrap();
                            }
                        }
                    })
                })
                .collect();

            let reader_handles: Vec<_> = (0..readers)
                .map(|_| {
                    let db = db.clone();
                    let done = done.clone();
                    std::thread::spawn(move || {
                        let deadline = Instant::now() + Duration::from_secs(30);
                        let mut observed = 0u64;
                        let keys: Vec<Key> =
                            vec![vec![Value::BigInt(0)], vec![Value::BigInt(1)]];
                        while !done.load(AtomicOrdering::Acquire)
                            || observed == 0
                        {
                            assert!(Instant::now() < deadline, "reader starved");
                            let txn = db.begin();
                            match db.read_many_validated(txn, t, &keys, LockingPolicy::Bypass)
                            {
                                Ok(rows) => {
                                    let v0 = rows[0].as_ref().unwrap()[1].as_i64().unwrap();
                                    let v1 = rows[1].as_ref().unwrap()[1].as_i64().unwrap();
                                    assert_eq!(
                                        v0 % 2, 0,
                                        "odd poison value surfaced: {v0}"
                                    );
                                    assert_eq!(
                                        v1 % 2, 0,
                                        "odd poison value surfaced: {v1}"
                                    );
                                    assert_eq!(
                                        v0 + v1, TOTAL,
                                        "torn snapshot: {v0} + {v1} != {TOTAL}"
                                    );
                                    observed += 1;
                                }
                                // Blocked on an in-flight writer: retry.
                                Err(StorageError::ReadUncommitted { .. }) => {}
                                Err(e) => panic!("unexpected error: {e}"),
                            }
                            db.commit(txn).unwrap();
                        }
                        observed
                    })
                })
                .collect();

            for h in writer_handles {
                h.join().unwrap();
            }
            done.store(true, AtomicOrdering::Release);
            for h in reader_handles {
                prop_assert!(h.join().unwrap() > 0, "every reader saw a snapshot");
            }
            // The version words crossed u64::MAX and stayed even-stable.
            for id in 0..2i64 {
                let rid = db
                    .primary_tree(t)
                    .unwrap()
                    .get_first(&[Value::BigInt(id)])
                    .unwrap();
                let ver = db.heap(t).unwrap().read_version(rid).unwrap();
                prop_assert!(!ver.is_write_in_progress());
                prop_assert!(
                    ver.word < u64::MAX - 5,
                    "word {} never wrapped despite starting at MAX-5",
                    ver.word
                );
            }
        }
    }
}

#[cfg(test)]
mod membership_churn_tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::types::DataType;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    const KEYS: i64 = 64;

    /// Loads `slot(k BIGINT, v BIGINT)` with every even key in `0..KEYS`,
    /// value `2 * k` — the invariant every committed row keeps for life.
    fn slot_db() -> (Arc<Database>, TableId) {
        let db = Arc::new(Database::default());
        let t = db
            .create_table(TableSchema::new(
                "slot",
                vec![
                    ColumnDef::new("k", DataType::BigInt),
                    ColumnDef::new("v", DataType::BigInt),
                ],
                vec![0],
            ))
            .unwrap();
        let setup = db.begin();
        for k in (0..KEYS).step_by(2) {
            db.insert(
                setup,
                t,
                vec![Value::BigInt(k), Value::BigInt(2 * k)],
                LockingPolicy::Bypass,
            )
            .unwrap();
        }
        db.commit(setup).unwrap();
        (db, t)
    }

    proptest! {
        /// Writer threads churn the key population — committed inserts and
        /// deletes, plus *aborted* poison inserts, aborted deletes, and
        /// aborted poison updates — while validated readers scan the full
        /// range lock-free. This is the access shape of TATP's
        /// `GetNewDestination` (a `scan_validated` range read racing
        /// `InsertCallForwarding` / `DeleteCallForwarding` churn), which
        /// previously had proptest coverage only for updates. A scan must
        /// only ever observe committed content: every row decodes to
        /// `v == 2 * k` (an aborted writer's poison value or a torn
        /// header must never surface), keys stay in range, and the result
        /// is strictly sorted — a duplicate would mean a stale index
        /// entry resolved to a recycled heap slot holding another key's
        /// row (the exact failure `snapshot_record`'s stale-entry guard
        /// exists to stop; this test found it).
        ///
        /// Two deliberate limits. Range *membership* is not asserted: the
        /// as-of index probe can miss a row whose uncommitted delete is
        /// in flight (see `scan_validated_membership_gap_uncommitted_
        /// delete_reads_as_absent` below, which pins that gap precisely).
        /// And every churn transaction performs a **single** write, like
        /// TATP's call-forwarding transactions: undo publishes stamp-0
        /// (immediately stable) images one operation at a time, so a
        /// multi-write abort exposes its intermediate states to lock-free
        /// readers — engines shield aligned readers with key locks, and
        /// single-write transactions have atomic undo, but an invariant
        /// spanning several writes of one aborting transaction is not
        /// scan-stable by design.
        #[test]
        fn scan_validated_consistent_under_insert_delete_churn(
            params in (1usize..3, 1usize..3, 8u64..24, 1u64..200)
        ) {
            let (writers, readers, rounds, seed) = params;
            let (db, t) = slot_db();
            let writer_gate = Arc::new(parking_lot::Mutex::new(()));
            let done = Arc::new(AtomicBool::new(false));

            let writer_handles: Vec<_> = (0..writers)
                .map(|w| {
                    let db = db.clone();
                    let gate = writer_gate.clone();
                    let mut rng = seed.wrapping_mul(w as u64 + 1) | 1;
                    std::thread::spawn(move || {
                        for _ in 0..rounds {
                            rng ^= rng << 13;
                            rng ^= rng >> 7;
                            rng ^= rng << 17;
                            let k = (rng % KEYS as u64) as i64;
                            let dice = rng % 8;
                            // Writers serialize among themselves (the
                            // engines' lock layers do this in production);
                            // readers stay fully concurrent and lock-free.
                            let _excl = gate.lock();
                            let txn = db.begin();
                            let key = [Value::BigInt(k)];
                            let exists = db
                                .get(txn, t, &key, LockingPolicy::Bypass)
                                .unwrap()
                                .is_some();
                            match (exists, dice) {
                                (true, 0) => {
                                    // Aborted poison update: invisible
                                    // while active, undone atomically.
                                    db.update(
                                        txn,
                                        t,
                                        &key,
                                        &[(1, Value::BigInt(7_777_777))],
                                        LockingPolicy::Bypass,
                                    )
                                    .unwrap();
                                    db.abort(txn).unwrap();
                                }
                                (true, 1) => {
                                    // Aborted delete: undo re-inserts the
                                    // good before-image.
                                    db.delete(txn, t, &key, LockingPolicy::Bypass).unwrap();
                                    db.abort(txn).unwrap();
                                }
                                (true, _) => {
                                    db.delete(txn, t, &key, LockingPolicy::Bypass).unwrap();
                                    db.commit(txn).unwrap();
                                }
                                (false, 0 | 1) => {
                                    // Aborted insert of a poison row.
                                    db.insert(
                                        txn,
                                        t,
                                        vec![Value::BigInt(k), Value::BigInt(9_999_999)],
                                        LockingPolicy::Bypass,
                                    )
                                    .unwrap();
                                    db.abort(txn).unwrap();
                                }
                                (false, _) => {
                                    db.insert(
                                        txn,
                                        t,
                                        vec![Value::BigInt(k), Value::BigInt(2 * k)],
                                        LockingPolicy::Bypass,
                                    )
                                    .unwrap();
                                    db.commit(txn).unwrap();
                                }
                            }
                        }
                    })
                })
                .collect();

            let reader_handles: Vec<_> = (0..readers)
                .map(|_| {
                    let db = db.clone();
                    let done = done.clone();
                    std::thread::spawn(move || {
                        let deadline = Instant::now() + Duration::from_secs(30);
                        let lo = [Value::BigInt(0)];
                        let hi = [Value::BigInt(KEYS - 1)];
                        let mut observed = 0u64;
                        while !done.load(AtomicOrdering::Acquire) || observed == 0 {
                            assert!(Instant::now() < deadline, "reader starved");
                            let txn = db.begin();
                            match db.scan_validated(txn, t, &lo, &hi, LockingPolicy::Bypass) {
                                Ok(rows) => {
                                    let mut prev = i64::MIN;
                                    for row in &rows {
                                        let k = row[0].as_i64().unwrap();
                                        let v = row[1].as_i64().unwrap();
                                        assert!(
                                            (0..KEYS).contains(&k),
                                            "key {k} outside scan bounds"
                                        );
                                        assert!(k > prev, "unsorted/duplicate key {k}");
                                        prev = k;
                                        assert_eq!(
                                            v,
                                            2 * k,
                                            "uncommitted or torn value surfaced at key {k}"
                                        );
                                    }
                                    observed += 1;
                                }
                                // Blocked on an in-flight writer: retry.
                                Err(StorageError::ReadUncommitted { .. }) => {}
                                Err(e) => panic!("unexpected error: {e}"),
                            }
                            db.commit(txn).unwrap();
                        }
                        observed
                    })
                })
                .collect();

            for h in writer_handles {
                h.join().unwrap();
            }
            done.store(true, AtomicOrdering::Release);
            for h in reader_handles {
                prop_assert!(h.join().unwrap() > 0, "every reader saw a snapshot");
            }
            // Quiescent state still satisfies the content invariant.
            for row in db.scan(t).unwrap() {
                prop_assert_eq!(
                    row[1].as_i64().unwrap(),
                    2 * row[0].as_i64().unwrap()
                );
            }
        }
    }

    /// Pins the validated-scan **membership gap** documented on
    /// [`Database::scan_validated`]: range membership is as of the index
    /// probe, and [`Database::delete`] unhooks the index entry *before*
    /// commit — so a concurrent validated scan observes the row as absent
    /// while the delete is still uncommitted (and could yet abort). A
    /// serializable implementation would either surface
    /// [`StorageError::ReadUncommitted`] or keep the row visible until
    /// commit. TATP dodges the gap structurally (DORA's local key intents
    /// serialize same-subscriber churn against `GetNewDestination`'s
    /// scan; see `crates/workloads/tests/tatp_differential.rs`), but the
    /// storage-level behavior is pinned here: if this test starts
    /// failing, membership validation was added and the workloads-side
    /// documentation must be updated.
    #[test]
    fn scan_validated_membership_gap_uncommitted_delete_reads_as_absent() {
        let (db, t) = slot_db();
        let scan_keys = |txn| {
            db.scan_validated(
                txn,
                t,
                &[Value::BigInt(0)],
                &[Value::BigInt(KEYS - 1)],
                LockingPolicy::Bypass,
            )
            .unwrap()
            .iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect::<Vec<_>>()
        };
        let reader = db.begin();
        let before = scan_keys(reader);
        assert!(before.contains(&2));

        // An uncommitted delete of key 2...
        let deleter = db.begin();
        assert!(db
            .delete(deleter, t, &[Value::BigInt(2)], LockingPolicy::Bypass)
            .unwrap());

        // ...reads as absent — the pinned phantom: no error, no row.
        let during = scan_keys(reader);
        assert!(
            !during.contains(&2),
            "membership gap closed? scan now validates range membership"
        );
        assert_eq!(during.len(), before.len() - 1);

        // The deleter aborts; the row is back for every later probe, so
        // the reader observed a row set no serial order ever produced.
        db.abort(deleter).unwrap();
        let after = scan_keys(reader);
        assert_eq!(after, before, "aborted delete must restore the row");
        db.commit(reader).unwrap();
    }
}
