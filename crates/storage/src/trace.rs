//! Record-access tracing.
//!
//! The demo's first scenario (Figure 1, "Access Patterns") visualizes which
//! worker thread touches which records of each table over time: random and
//! interleaved in the conventional engine, contiguous and ordered in DORA.
//! Both engines record their accesses through this shared tracer so the
//! benchmark harness can compute the same visualization (as an
//! ordered-access metric) for either system.

use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::types::TableId;

/// One record access performed by a worker thread.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessEvent {
    /// Worker thread that performed the access.
    pub worker: usize,
    /// Table accessed.
    pub table: TableId,
    /// Routing-key value of the record accessed (first primary-key column,
    /// as an integer; sufficient for TATP and TPC-C whose keys are integers).
    pub key: i64,
    /// Whether the access was a write.
    pub write: bool,
}

/// A shared, optionally-enabled access trace.
#[derive(Debug, Default)]
pub struct AccessTrace {
    enabled: AtomicBool,
    events: Mutex<Vec<AccessEvent>>,
}

impl AccessTrace {
    /// Creates a disabled trace (recording is a no-op until enabled).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an enabled trace.
    pub fn enabled() -> Self {
        let t = Self::default();
        t.set_enabled(true);
        t
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records an access (no-op when disabled).
    pub fn record(&self, worker: usize, table: TableId, key: i64, write: bool) {
        if self.is_enabled() {
            self.events.lock().push(AccessEvent {
                worker,
                table,
                key,
                write,
            });
        }
    }

    /// Copies out all recorded events in recording order.
    pub fn snapshot(&self) -> Vec<AccessEvent> {
        self.events.lock().clone()
    }

    /// Clears the recorded events.
    pub fn clear(&self) {
        self.events.lock().clear();
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-worker execution context handed to transaction logic so that record
/// accesses can be attributed to the worker thread that performs them.
#[derive(Debug, Clone)]
pub struct WorkerCtx {
    /// Index of the worker thread executing the logic.
    pub worker_id: usize,
    /// Shared access trace (may be disabled).
    pub trace: std::sync::Arc<AccessTrace>,
}

impl WorkerCtx {
    /// Creates a context for `worker_id` recording into `trace`.
    pub fn new(worker_id: usize, trace: std::sync::Arc<AccessTrace>) -> Self {
        WorkerCtx { worker_id, trace }
    }

    /// Convenience constructor with a fresh, disabled trace (tests, tools).
    pub fn untraced(worker_id: usize) -> Self {
        WorkerCtx {
            worker_id,
            trace: std::sync::Arc::new(AccessTrace::new()),
        }
    }

    /// Records an access by this worker.
    pub fn record(&self, table: TableId, key: i64, write: bool) {
        self.trace.record(self.worker_id, table, key, write);
    }
}

/// Measures how "predictable" (ordered) a trace is, per the demo's access
/// pattern scenario: the fraction of consecutive accesses to the same table
/// by the same worker whose keys are non-decreasing or within a small
/// window. A single-threaded ordered scan scores 1.0; random assignment of
/// requests to threads scores much lower.
pub fn orderliness(events: &[AccessEvent]) -> f64 {
    use std::collections::HashMap;
    let mut last: HashMap<(usize, TableId), i64> = HashMap::new();
    let mut pairs = 0usize;
    let mut ordered = 0usize;
    for e in events {
        if let Some(prev) = last.insert((e.worker, e.table), e.key) {
            pairs += 1;
            if e.key >= prev {
                ordered += 1;
            }
        }
    }
    if pairs == 0 {
        1.0
    } else {
        ordered as f64 / pairs as f64
    }
}

/// The spread of workers that touched each table key range, used to show
/// that in DORA each key range is served by exactly one worker while in the
/// conventional system every worker touches every range. Returns, for each
/// table, the average number of distinct workers per key bucket.
pub fn workers_per_key_bucket(events: &[AccessEvent], bucket_width: i64) -> Vec<(TableId, f64)> {
    use std::collections::{HashMap, HashSet};
    assert!(bucket_width > 0);
    let mut buckets: HashMap<(TableId, i64), HashSet<usize>> = HashMap::new();
    for e in events {
        buckets
            .entry((e.table, e.key.div_euclid(bucket_width)))
            .or_default()
            .insert(e.worker);
    }
    let mut per_table: HashMap<TableId, (usize, usize)> = HashMap::new();
    for ((table, _), workers) in &buckets {
        let entry = per_table.entry(*table).or_default();
        entry.0 += workers.len();
        entry.1 += 1;
    }
    let mut out: Vec<(TableId, f64)> = per_table
        .into_iter()
        .map(|(t, (sum, n))| (t, sum as f64 / n as f64))
        .collect();
    out.sort_by_key(|(t, _)| *t);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn disabled_trace_records_nothing() {
        let t = AccessTrace::new();
        t.record(0, 1, 5, false);
        assert!(t.is_empty());
        t.set_enabled(true);
        t.record(0, 1, 5, false);
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn worker_ctx_attributes_accesses() {
        let trace = Arc::new(AccessTrace::enabled());
        let ctx = WorkerCtx::new(3, trace.clone());
        ctx.record(7, 42, true);
        let events = trace.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].worker, 3);
        assert_eq!(events[0].table, 7);
        assert!(events[0].write);
        // untraced context does not panic and records nothing visible.
        let u = WorkerCtx::untraced(0);
        u.record(1, 1, false);
        assert_eq!(u.trace.len(), 0);
    }

    #[test]
    fn orderliness_distinguishes_sorted_from_random() {
        // One worker scanning keys in order: perfectly predictable.
        let sorted: Vec<AccessEvent> = (0..100)
            .map(|i| AccessEvent {
                worker: 0,
                table: 1,
                key: i,
                write: false,
            })
            .collect();
        assert!((orderliness(&sorted) - 1.0).abs() < 1e-9);
        // The same keys bounced around pseudo-randomly: far less ordered.
        let mut random = sorted.clone();
        for e in random.iter_mut() {
            e.key = (e.key * 7919) % 97;
        }
        assert!(orderliness(&random) < 0.8);
        // Empty trace is trivially ordered.
        assert_eq!(orderliness(&[]), 1.0);
    }

    #[test]
    fn workers_per_bucket_reflects_partitioning() {
        // DORA-like: worker = key / 25 (each bucket owned by one worker).
        let dora: Vec<AccessEvent> = (0..100)
            .map(|i| AccessEvent {
                worker: (i / 25) as usize,
                table: 1,
                key: i,
                write: false,
            })
            .collect();
        let d = workers_per_key_bucket(&dora, 25);
        assert_eq!(d.len(), 1);
        assert!((d[0].1 - 1.0).abs() < 1e-9);
        // Conventional-like: every worker touches every bucket.
        let conv: Vec<AccessEvent> = (0..100)
            .map(|i| AccessEvent {
                worker: (i % 4) as usize,
                table: 1,
                key: i,
                write: false,
            })
            .collect();
        let c = workers_per_key_bucket(&conv, 25);
        assert!(c[0].1 > 3.0);
    }
}
