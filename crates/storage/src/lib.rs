//! # dora-storage
//!
//! A Shore-MT-like storage manager substrate for the DORA reproduction:
//! slotted pages, a buffer pool, heap files, B+-tree access methods, a
//! centralized hierarchical lock manager, a write-ahead log with recovery,
//! and a transaction manager, all behind the [`db::Database`] facade.
//!
//! Both execution engines of the workspace share this substrate, exactly as
//! the paper's conventional baseline and the DORA prototype share Shore-MT:
//!
//! * `dora-engine-conv` — the conventional thread-to-transaction engine,
//!   which acquires hierarchical locks through [`lock::LockManager`]
//!   (`LockingPolicy::Centralized`).
//! * `dora-core` — the data-oriented engine, which bypasses the centralized
//!   lock manager (`LockingPolicy::Bypass`) because isolation is enforced by
//!   per-partition local lock tables.
//!
//! ```
//! use dora_storage::db::{Database, LockingPolicy};
//! use dora_storage::schema::{ColumnDef, TableSchema};
//! use dora_storage::types::{DataType, Value};
//!
//! let db = Database::default();
//! let table = db
//!     .create_table(TableSchema::new(
//!         "kv",
//!         vec![
//!             ColumnDef::new("k", DataType::BigInt),
//!             ColumnDef::new("v", DataType::Varchar(32)),
//!         ],
//!         vec![0],
//!     ))
//!     .unwrap();
//! let txn = db.begin();
//! db.insert(txn, table, vec![Value::BigInt(1), Value::Varchar("one".into())],
//!           LockingPolicy::Centralized).unwrap();
//! let row = db.get(txn, table, &[Value::BigInt(1)], LockingPolicy::Centralized)
//!     .unwrap()
//!     .unwrap();
//! assert_eq!(row[1], Value::Varchar("one".into()));
//! db.commit(txn).unwrap();
//! ```

#![warn(missing_docs)]

pub mod btree;
pub mod buffer;
pub mod db;
pub mod error;
pub mod heap;
pub mod io;
pub mod lock;
pub mod page;
pub mod recovery;
pub mod schema;
pub mod segment;
pub mod trace;
pub mod tuple;
pub mod txn;
pub mod types;
pub mod version;
pub mod wal;

pub use db::{Database, DatabaseConfig, LockingPolicy};
pub use error::{StorageError, StorageResult};
pub use schema::{Catalog, ColumnDef, TableSchema};
pub use types::{DataType, Key, RecordId, TableId, TxnId, Value};
