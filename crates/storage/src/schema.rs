//! Table schemas and the system catalog.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::{StorageError, StorageResult};
use crate::types::{DataType, IndexId, TableId, Value};

/// Definition of a single column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name (unique within the table).
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl ColumnDef {
    /// Creates a column definition.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            dtype,
        }
    }
}

/// Schema of a table: ordered columns plus the primary-key column positions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    /// Table name (unique within the catalog).
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
    /// Indices (into `columns`) of the primary-key columns, in key order.
    pub primary_key: Vec<usize>,
}

impl TableSchema {
    /// Creates a schema. Panics if a primary-key position is out of range.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>, primary_key: Vec<usize>) -> Self {
        let name = name.into();
        for &pk in &primary_key {
            assert!(pk < columns.len(), "primary key column out of range");
        }
        TableSchema {
            name,
            columns,
            primary_key,
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Position of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Validates a tuple against the schema (arity and per-column types).
    pub fn validate(&self, values: &[Value]) -> StorageResult<()> {
        if values.len() != self.columns.len() {
            return Err(StorageError::SchemaMismatch(format!(
                "table '{}' expects {} columns, got {}",
                self.name,
                self.columns.len(),
                values.len()
            )));
        }
        for (col, val) in self.columns.iter().zip(values.iter()) {
            if !col.dtype.admits(val) {
                return Err(StorageError::SchemaMismatch(format!(
                    "column '{}' of table '{}' does not admit value {}",
                    col.name, self.name, val
                )));
            }
        }
        Ok(())
    }

    /// Extracts the primary-key values from a full tuple.
    pub fn primary_key_of(&self, values: &[Value]) -> Vec<Value> {
        self.primary_key
            .iter()
            .map(|&i| values[i].clone())
            .collect()
    }

    /// Extracts the values at `positions` from a full tuple.
    pub fn project(&self, values: &[Value], positions: &[usize]) -> Vec<Value> {
        positions.iter().map(|&i| values[i].clone()).collect()
    }
}

/// Metadata describing an index registered in the catalog.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexDef {
    /// Index id.
    pub id: IndexId,
    /// Index name.
    pub name: String,
    /// Table the index belongs to.
    pub table: TableId,
    /// Column positions forming the index key, in key order.
    pub key_columns: Vec<usize>,
    /// Whether keys must be unique.
    pub unique: bool,
    /// Whether this is the table's primary index.
    pub primary: bool,
}

/// Metadata describing a table registered in the catalog.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableDef {
    /// Table id.
    pub id: TableId,
    /// Schema.
    pub schema: TableSchema,
    /// Indexes defined on the table (the first is the primary index).
    pub indexes: Vec<IndexId>,
}

/// The system catalog: table and index metadata.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Catalog {
    tables: HashMap<TableId, TableDef>,
    table_names: HashMap<String, TableId>,
    indexes: HashMap<IndexId, IndexDef>,
    next_table: TableId,
    next_index: IndexId,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a new table and returns its id.
    pub fn add_table(&mut self, schema: TableSchema) -> StorageResult<TableId> {
        if self.table_names.contains_key(&schema.name) {
            return Err(StorageError::Internal(format!(
                "table '{}' already exists",
                schema.name
            )));
        }
        let id = self.next_table;
        self.next_table += 1;
        self.table_names.insert(schema.name.clone(), id);
        self.tables.insert(
            id,
            TableDef {
                id,
                schema,
                indexes: Vec::new(),
            },
        );
        Ok(id)
    }

    /// Registers a new index and returns its id.
    pub fn add_index(
        &mut self,
        name: impl Into<String>,
        table: TableId,
        key_columns: Vec<usize>,
        unique: bool,
        primary: bool,
    ) -> StorageResult<IndexId> {
        let def_arity = self
            .tables
            .get(&table)
            .ok_or(StorageError::UnknownTable(table))?
            .schema
            .arity();
        for &c in &key_columns {
            if c >= def_arity {
                return Err(StorageError::Internal(format!(
                    "index key column {c} out of range for table {table}"
                )));
            }
        }
        let id = self.next_index;
        self.next_index += 1;
        let def = IndexDef {
            id,
            name: name.into(),
            table,
            key_columns,
            unique,
            primary,
        };
        self.indexes.insert(id, def);
        self.tables
            .get_mut(&table)
            .expect("checked above")
            .indexes
            .push(id);
        Ok(id)
    }

    /// Looks up a table by id.
    pub fn table(&self, id: TableId) -> StorageResult<&TableDef> {
        self.tables.get(&id).ok_or(StorageError::UnknownTable(id))
    }

    /// Looks up a table by name.
    pub fn table_by_name(&self, name: &str) -> StorageResult<&TableDef> {
        let id = self
            .table_names
            .get(name)
            .ok_or_else(|| StorageError::UnknownTableName(name.to_string()))?;
        self.table(*id)
    }

    /// Looks up an index by id.
    pub fn index(&self, id: IndexId) -> StorageResult<&IndexDef> {
        self.indexes.get(&id).ok_or(StorageError::UnknownIndex(id))
    }

    /// Returns the primary index of a table, if one has been created.
    pub fn primary_index(&self, table: TableId) -> StorageResult<&IndexDef> {
        let t = self.table(table)?;
        t.indexes
            .iter()
            .filter_map(|i| self.indexes.get(i))
            .find(|d| d.primary)
            .ok_or_else(|| StorageError::Internal(format!("table {table} has no primary index")))
    }

    /// All secondary (non-primary) indexes of a table.
    pub fn secondary_indexes(&self, table: TableId) -> Vec<&IndexDef> {
        self.tables
            .get(&table)
            .map(|t| {
                t.indexes
                    .iter()
                    .filter_map(|i| self.indexes.get(i))
                    .filter(|d| !d.primary)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Iterates over all tables.
    pub fn tables(&self) -> impl Iterator<Item = &TableDef> {
        self.tables.values()
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> TableSchema {
        TableSchema::new(
            "subscriber",
            vec![
                ColumnDef::new("s_id", DataType::BigInt),
                ColumnDef::new("sub_nbr", DataType::Varchar(15)),
                ColumnDef::new("bit_1", DataType::Bool),
                ColumnDef::new("vlr_location", DataType::Int),
            ],
            vec![0],
        )
    }

    #[test]
    fn schema_validation() {
        let s = sample_schema();
        assert!(s
            .validate(&[
                Value::BigInt(1),
                Value::Varchar("000001".into()),
                Value::Bool(true),
                Value::Int(7)
            ])
            .is_ok());
        // wrong arity
        assert!(s.validate(&[Value::BigInt(1)]).is_err());
        // wrong type
        assert!(s
            .validate(&[
                Value::Varchar("x".into()),
                Value::Varchar("y".into()),
                Value::Bool(true),
                Value::Int(7)
            ])
            .is_err());
    }

    #[test]
    fn primary_key_extraction_and_projection() {
        let s = sample_schema();
        let tuple = vec![
            Value::BigInt(42),
            Value::Varchar("sub".into()),
            Value::Bool(false),
            Value::Int(3),
        ];
        assert_eq!(s.primary_key_of(&tuple), vec![Value::BigInt(42)]);
        assert_eq!(
            s.project(&tuple, &[1, 3]),
            vec![Value::Varchar("sub".into()), Value::Int(3)]
        );
        assert_eq!(s.column_index("vlr_location"), Some(3));
        assert_eq!(s.column_index("missing"), None);
    }

    #[test]
    fn catalog_tables_and_indexes() {
        let mut cat = Catalog::new();
        let tid = cat.add_table(sample_schema()).unwrap();
        let pidx = cat
            .add_index("pk_subscriber", tid, vec![0], true, true)
            .unwrap();
        let sidx = cat
            .add_index("idx_sub_nbr", tid, vec![1], true, false)
            .unwrap();
        assert_eq!(cat.table(tid).unwrap().schema.name, "subscriber");
        assert_eq!(cat.table_by_name("subscriber").unwrap().id, tid);
        assert_eq!(cat.primary_index(tid).unwrap().id, pidx);
        let secondary = cat.secondary_indexes(tid);
        assert_eq!(secondary.len(), 1);
        assert_eq!(secondary[0].id, sidx);
        assert!(cat.table_by_name("nope").is_err());
        assert!(cat.index(99).is_err());
        assert_eq!(cat.table_count(), 1);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut cat = Catalog::new();
        cat.add_table(sample_schema()).unwrap();
        assert!(cat.add_table(sample_schema()).is_err());
    }

    #[test]
    fn index_key_column_bounds_checked() {
        let mut cat = Catalog::new();
        let tid = cat.add_table(sample_schema()).unwrap();
        assert!(cat.add_index("bad", tid, vec![9], false, false).is_err());
        assert!(cat.add_index("bad2", 999, vec![0], false, false).is_err());
    }
}
