//! Transaction contexts and the transaction manager.
//!
//! The transaction manager assigns transaction ids, tracks transaction
//! state, and keeps the per-transaction logical undo list used to roll back
//! aborted transactions. Locking policy (centralized 2PL vs. DORA's local
//! lock tables) is decided by the caller of the [`crate::db::Database`]
//! operations, not here.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::error::{StorageError, StorageResult};
use crate::types::{Key, TableId, TxnId, Value};

/// Lifecycle state of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// The transaction is running.
    Active,
    /// The transaction committed.
    Committed,
    /// The transaction aborted (by request, deadlock, or failure).
    Aborted,
}

/// A single logical undo entry. Undo is applied in reverse order of the
/// original operations.
#[derive(Debug, Clone, PartialEq)]
pub enum UndoEntry {
    /// Undo of an insert: delete the row again.
    Insert {
        /// Table of the inserted row.
        table: TableId,
        /// Primary key of the inserted row.
        key: Key,
    },
    /// Undo of an update: restore the before image.
    Update {
        /// Table of the updated row.
        table: TableId,
        /// Primary key of the updated row.
        key: Key,
        /// Full row image before the update.
        before: Vec<Value>,
    },
    /// Undo of a delete: re-insert the before image.
    Delete {
        /// Table of the deleted row.
        table: TableId,
        /// Primary key of the deleted row.
        key: Key,
        /// Full row image before the delete.
        before: Vec<Value>,
    },
}

#[derive(Debug)]
struct TxnMeta {
    state: TxnState,
    undo: Vec<UndoEntry>,
}

/// Assigns transaction ids and tracks per-transaction state and undo logs.
pub struct TxnManager {
    next: AtomicU64,
    txns: Mutex<HashMap<TxnId, TxnMeta>>,
}

impl Default for TxnManager {
    fn default() -> Self {
        Self::new()
    }
}

impl TxnManager {
    /// Creates an empty transaction manager.
    pub fn new() -> Self {
        TxnManager {
            next: AtomicU64::new(1),
            txns: Mutex::new(HashMap::new()),
        }
    }

    /// Starts a new transaction.
    pub fn begin(&self) -> TxnId {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        self.txns.lock().insert(
            id,
            TxnMeta {
                state: TxnState::Active,
                undo: Vec::new(),
            },
        );
        id
    }

    /// Current state of a transaction (`None` if unknown).
    pub fn state(&self, txn: TxnId) -> Option<TxnState> {
        self.txns.lock().get(&txn).map(|m| m.state)
    }

    /// Number of currently active transactions.
    pub fn active_count(&self) -> usize {
        self.txns
            .lock()
            .values()
            .filter(|m| m.state == TxnState::Active)
            .count()
    }

    /// Ids of currently active transactions (for checkpoints).
    pub fn active_txns(&self) -> Vec<TxnId> {
        self.txns
            .lock()
            .iter()
            .filter(|(_, m)| m.state == TxnState::Active)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Records an undo entry for an active transaction.
    pub fn push_undo(&self, txn: TxnId, entry: UndoEntry) -> StorageResult<()> {
        let mut txns = self.txns.lock();
        let meta = txns.get_mut(&txn).ok_or(StorageError::TxnNotActive(txn))?;
        if meta.state != TxnState::Active {
            return Err(StorageError::TxnNotActive(txn));
        }
        meta.undo.push(entry);
        Ok(())
    }

    /// Ensures the transaction exists and is active.
    pub fn check_active(&self, txn: TxnId) -> StorageResult<()> {
        match self.state(txn) {
            Some(TxnState::Active) => Ok(()),
            _ => Err(StorageError::TxnNotActive(txn)),
        }
    }

    /// Transitions an active transaction to `Committed`, returning its undo
    /// log length (for statistics).
    pub fn mark_committed(&self, txn: TxnId) -> StorageResult<usize> {
        let mut txns = self.txns.lock();
        let meta = txns.get_mut(&txn).ok_or(StorageError::TxnNotActive(txn))?;
        if meta.state != TxnState::Active {
            return Err(StorageError::TxnNotActive(txn));
        }
        meta.state = TxnState::Committed;
        let n = meta.undo.len();
        meta.undo.clear();
        Ok(n)
    }

    /// Transitions an active transaction to `Aborted` and returns its undo
    /// log in reverse (application) order.
    pub fn mark_aborted(&self, txn: TxnId) -> StorageResult<Vec<UndoEntry>> {
        let mut txns = self.txns.lock();
        let meta = txns.get_mut(&txn).ok_or(StorageError::TxnNotActive(txn))?;
        if meta.state != TxnState::Active {
            return Err(StorageError::TxnNotActive(txn));
        }
        meta.state = TxnState::Aborted;
        let mut undo = std::mem::take(&mut meta.undo);
        undo.reverse();
        Ok(undo)
    }

    /// Drops bookkeeping for finished transactions (garbage collection);
    /// returns how many entries were removed.
    pub fn gc_finished(&self) -> usize {
        let mut txns = self.txns.lock();
        let before = txns.len();
        txns.retain(|_, m| m.state == TxnState::Active);
        before - txns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_assigns_unique_increasing_ids() {
        let tm = TxnManager::new();
        let a = tm.begin();
        let b = tm.begin();
        assert!(b > a);
        assert_eq!(tm.state(a), Some(TxnState::Active));
        assert_eq!(tm.active_count(), 2);
        assert_eq!(tm.active_txns().len(), 2);
    }

    #[test]
    fn commit_and_abort_transitions() {
        let tm = TxnManager::new();
        let a = tm.begin();
        tm.push_undo(
            a,
            UndoEntry::Insert {
                table: 1,
                key: vec![Value::Int(1)],
            },
        )
        .unwrap();
        assert_eq!(tm.mark_committed(a).unwrap(), 1);
        assert_eq!(tm.state(a), Some(TxnState::Committed));
        // Double commit / commit-after-abort are rejected.
        assert!(tm.mark_committed(a).is_err());
        assert!(tm.mark_aborted(a).is_err());
        assert!(tm
            .push_undo(
                a,
                UndoEntry::Insert {
                    table: 1,
                    key: vec![]
                }
            )
            .is_err());

        let b = tm.begin();
        tm.push_undo(
            b,
            UndoEntry::Insert {
                table: 1,
                key: vec![Value::Int(1)],
            },
        )
        .unwrap();
        tm.push_undo(
            b,
            UndoEntry::Update {
                table: 1,
                key: vec![Value::Int(1)],
                before: vec![Value::Int(1), Value::Bool(false)],
            },
        )
        .unwrap();
        let undo = tm.mark_aborted(b).unwrap();
        assert_eq!(undo.len(), 2);
        // Reverse order: the update is undone before the insert.
        assert!(matches!(undo[0], UndoEntry::Update { .. }));
        assert!(matches!(undo[1], UndoEntry::Insert { .. }));
    }

    #[test]
    fn unknown_txn_errors() {
        let tm = TxnManager::new();
        assert!(tm.check_active(99).is_err());
        assert!(tm.mark_committed(99).is_err());
        assert_eq!(tm.state(99), None);
    }

    #[test]
    fn gc_removes_finished_only() {
        let tm = TxnManager::new();
        let a = tm.begin();
        let b = tm.begin();
        tm.mark_committed(a).unwrap();
        assert_eq!(tm.gc_finished(), 1);
        assert_eq!(tm.state(a), None);
        assert_eq!(tm.state(b), Some(TxnState::Active));
    }

    #[test]
    fn concurrent_begins_are_unique() {
        use std::sync::Arc;
        let tm = Arc::new(TxnManager::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let tm = tm.clone();
                std::thread::spawn(move || (0..100).map(|_| tm.begin()).collect::<Vec<_>>())
            })
            .collect();
        let mut ids: Vec<TxnId> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 800);
    }
}
